//! The [`Experiment`] builder: the one-stop entry point for running any
//! registered algorithm on any workload.
//!
//! ```
//! use actively_dynamic_networks::prelude::*;
//!
//! let outcome = Experiment::on(generators::line(64))
//!     .uids(UidAssignment::RandomPermutation { seed: 7 })
//!     .algorithm("graph_to_star")
//!     .trace(TraceLevel::PerRound)
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.final_diameter(), Some(2));
//! ```

use adn_core::algorithm::{self, CentralizedConfig, DstConfig, EngineMode, RunConfig, TraceLevel};
use adn_core::graph_to_wreath::WreathConfig;
use adn_core::{CoreError, TransformationOutcome};
use adn_graph::{Graph, GraphFamily, UidAssignment, UidMap};
use adn_sim::dst::Scenario;
use adn_sim::Network;

/// Builder for a single algorithm execution: workload × UID assignment ×
/// algorithm × [`RunConfig`].
///
/// Constructed with [`Experiment::on`] (an explicit initial network) or
/// [`Experiment::family`] (a named workload family). The algorithm is
/// selected by registry id (see [`adn_core::algorithm::registry`]); UIDs
/// default to [`UidAssignment::Sequential`].
#[derive(Debug, Clone)]
pub struct Experiment {
    graph: Graph,
    uids: UidSource,
    algorithm: String,
    config: RunConfig,
}

#[derive(Debug, Clone)]
enum UidSource {
    Assignment(UidAssignment),
    Explicit(UidMap),
}

impl Experiment {
    /// Starts an experiment on an explicit initial network.
    pub fn on(graph: Graph) -> Self {
        Experiment {
            graph,
            uids: UidSource::Assignment(UidAssignment::Sequential),
            algorithm: String::from("graph_to_star"),
            config: RunConfig::default(),
        }
    }

    /// Starts an experiment on an instance of a named workload family
    /// (sizes are rounded to the family's realisable sizes, exactly like
    /// [`GraphFamily::generate`]).
    pub fn family(family: GraphFamily, n: usize, seed: u64) -> Self {
        Experiment::on(family.generate(n, seed))
    }

    /// Selects the UID assignment (default: sequential).
    pub fn uids(mut self, assignment: UidAssignment) -> Self {
        self.uids = UidSource::Assignment(assignment);
        self
    }

    /// Provides an explicit UID map instead of an assignment rule.
    pub fn uid_map(mut self, uids: UidMap) -> Self {
        self.uids = UidSource::Explicit(uids);
        self
    }

    /// Selects the algorithm by registry id (e.g. `"graph_to_star"`) or
    /// human-readable name. Unknown names surface as
    /// [`CoreError::InvalidInput`] from [`Experiment::run`].
    pub fn algorithm(mut self, id: &str) -> Self {
        self.algorithm = id.to_string();
        self
    }

    /// Sets the trace level.
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.config.trace = level;
        self
    }

    /// Caps the execution at `rounds` simulated rounds.
    pub fn round_budget(mut self, rounds: usize) -> Self {
        self.config.round_budget = Some(rounds);
        self
    }

    /// Overrides the wreath-engine configuration (tree arity,
    /// communication charging) for the wreath-family algorithms.
    pub fn wreath_config(mut self, config: WreathConfig) -> Self {
        self.config.wreath = Some(config);
        self
    }

    /// Selects the centralized-strategy target shape.
    pub fn centralized(mut self, config: CentralizedConfig) -> Self {
        self.config.centralized = config;
        self
    }

    /// Selects the execution engine: the default synchronous round loop,
    /// the seeded single-threaded asynchronous scheduler (byte-identical
    /// replay from one `u64`), or the free multi-threaded scheduler.
    /// Algorithms without an asynchronous implementation reject
    /// non-synchronous modes with [`CoreError::InvalidInput`].
    pub fn engine(mut self, mode: EngineMode) -> Self {
        self.config.engine = mode;
        self
    }

    /// Runs the experiment under an adversarial [`Scenario`] with the
    /// given adversary seed: the deterministic-simulation-testing layer
    /// injects faults between rounds and checks round-level invariants;
    /// the harvested report lands in
    /// [`TransformationOutcome::dst`].
    pub fn scenario(mut self, scenario: Scenario, seed: u64) -> Self {
        self.config.dst = Some(DstConfig { scenario, seed });
        self
    }

    /// Replaces the whole [`RunConfig`] at once.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// The initial network this experiment will run on.
    pub fn initial_graph(&self) -> &Graph {
        &self.graph
    }

    /// Resolves the UID map this experiment will use.
    pub fn resolve_uids(&self) -> UidMap {
        match &self.uids {
            UidSource::Assignment(a) => UidMap::new(self.graph.node_count(), *a),
            UidSource::Explicit(m) => m.clone(),
        }
    }

    /// Runs the experiment on a fresh network built from the initial
    /// graph (moved, not cloned — the builder is consumed).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] for unknown algorithm ids or rejected
    /// inputs; otherwise whatever the algorithm's
    /// [`adn_core::algorithm::ReconfigurationAlgorithm::execute`] raises.
    pub fn run(self) -> Result<TransformationOutcome, CoreError> {
        let algorithm = Self::lookup(&self.algorithm)?;
        let uids = self.resolve_uids();
        let mut network = Network::new(self.graph);
        if let Some(dst) = &self.config.dst {
            algorithm::arm_network_for_dst(&mut network, &algorithm.spec(), &uids, dst);
        }
        algorithm.execute(&mut network, &uids, &self.config)
    }

    /// Runs the experiment on a caller-provided network (for composing
    /// with further metered work on the same network). The network's
    /// current snapshot must be exactly the experiment's initial graph —
    /// when composing after earlier work, build the experiment from that
    /// snapshot: `Experiment::on(network.graph().clone())`.
    ///
    /// # Errors
    ///
    /// As [`Experiment::run`]; additionally [`CoreError::InvalidInput`]
    /// when the network's snapshot differs from the configured graph.
    pub fn execute(self, network: &mut Network) -> Result<TransformationOutcome, CoreError> {
        if network.graph() != &self.graph {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "the network's current snapshot ({} nodes, {} edges) is not the experiment's \
                     initial graph ({} nodes, {} edges); build the experiment from the snapshot: \
                     Experiment::on(network.graph().clone())",
                    network.graph().node_count(),
                    network.graph().edge_count(),
                    self.graph.node_count(),
                    self.graph.edge_count(),
                ),
            });
        }
        let algorithm = Self::lookup(&self.algorithm)?;
        let uids = self.resolve_uids();
        if let Some(dst) = &self.config.dst {
            algorithm::arm_network_for_dst(network, &algorithm.spec(), &uids, dst);
        }
        algorithm.execute(network, &uids, &self.config)
    }

    fn lookup(id: &str) -> Result<&'static dyn algorithm::ReconfigurationAlgorithm, CoreError> {
        algorithm::find(id).ok_or_else(|| CoreError::InvalidInput {
            reason: format!(
                "unknown algorithm `{id}` (registered: {})",
                algorithm::registry()
                    .iter()
                    .map(|a| a.spec().id)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_core::tasks::verify_leader_election;
    use adn_graph::generators;

    #[test]
    fn builder_runs_end_to_end() {
        let outcome = Experiment::on(generators::line(64))
            .uids(UidAssignment::RandomPermutation { seed: 7 })
            .algorithm("graph_to_star")
            .trace(TraceLevel::PerRound)
            .run()
            .unwrap();
        let uids = UidMap::new(64, UidAssignment::RandomPermutation { seed: 7 });
        assert!(verify_leader_election(&outcome, &uids));
        assert_eq!(outcome.final_diameter(), Some(2));
        assert!(!outcome.trace.is_empty());
    }

    #[test]
    fn family_shorthand_and_defaults() {
        // Default algorithm (GraphToStar) and default UIDs (sequential).
        let outcome = Experiment::family(GraphFamily::Ring, 32, 3).run().unwrap();
        assert_eq!(outcome.leader, adn_graph::NodeId(31));
        assert!(outcome.trace.is_empty(), "tracing defaults to off");
    }

    #[test]
    fn unknown_algorithm_is_a_clean_error() {
        let err = Experiment::on(generators::line(8))
            .algorithm("definitely_not_registered")
            .run()
            .unwrap_err();
        match err {
            CoreError::InvalidInput { reason } => {
                assert!(reason.contains("definitely_not_registered"));
                assert!(reason.contains("graph_to_star"), "lists registered ids");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn explicit_uid_map_wins() {
        let uids = UidMap::from_values(vec![5, 99, 1, 2]);
        let outcome = Experiment::on(generators::line(4))
            .uid_map(uids)
            .algorithm("graph_to_star")
            .run()
            .unwrap();
        assert_eq!(outcome.leader, adn_graph::NodeId(1));
    }

    #[test]
    fn round_budget_flows_through() {
        let result = Experiment::on(generators::line(128))
            .algorithm("graph_to_wreath")
            .round_budget(1)
            .run();
        assert!(result.is_err());
    }

    #[test]
    fn execute_rejects_a_network_with_a_different_snapshot() {
        // Same node count, different topology: without the check this
        // would silently run on the ring while reporting the line.
        let mut network = Network::new(generators::ring(8));
        let err = Experiment::on(generators::line(8))
            .execute(&mut network)
            .unwrap_err();
        match err {
            CoreError::InvalidInput { reason } => {
                assert!(reason.contains("snapshot"), "{reason}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn execute_composes_on_an_existing_network() {
        let graph = generators::ring(24);
        let mut network = Network::new(graph.clone());
        let outcome = Experiment::on(graph)
            .algorithm("centralized_general")
            .execute(&mut network)
            .unwrap();
        // The same network object carries the metered history.
        assert_eq!(network.metrics().rounds, outcome.rounds);
        assert_eq!(network.graph(), &outcome.final_graph);
    }
}
