//! # actively-dynamic-networks
//!
//! Facade crate for the reproduction of *"Distributed Computation and
//! Reconfiguration in Actively Dynamic Networks"* (Michail, Skretas,
//! Spirakis — PODC 2020). It re-exports the workspace crates:
//!
//! * [`graph`] (adn-graph) — graph substrate: generators, metrics, rooted
//!   trees, UID assignments.
//! * [`sim`] (adn-sim) — the synchronous actively-dynamic-network
//!   simulator with the distance-2 activation rule and edge-complexity
//!   metering.
//! * [`core`] (adn-core) — the paper's algorithms behind the unified
//!   [`core::algorithm::ReconfigurationAlgorithm`] trait and
//!   [`core::algorithm::registry`]: GraphToStar, GraphToWreath,
//!   GraphToThinWreath, the baselines and the centralized strategies,
//!   plus subroutines, lower-bound machinery and the task layer.
//! * [`runtime`] (adn-runtime) — the asynchronous actor runtime with the
//!   pluggable deterministic (`SeededScheduler`) and multi-threaded
//!   (`FreeScheduler`) schedulers and Dijkstra–Scholten termination
//!   detection; selected per run via [`prelude::EngineMode`].
//! * [`analysis`] (adn-analysis) — the experiment harness.
//!
//! and adds the [`Experiment`] builder, the recommended entry point.
//!
//! # Quickstart
//!
//! ```
//! use actively_dynamic_networks::prelude::*;
//!
//! // Reconfigure a spanning line (the paper's worst case: diameter n-1)
//! // into a spanning star, electing a leader in O(log n) rounds with
//! // O(n log n) edge activations.
//! let outcome = Experiment::on(generators::line(64))
//!     .uids(UidAssignment::RandomPermutation { seed: 7 })
//!     .algorithm("graph_to_star")
//!     .trace(TraceLevel::PerRound)
//!     .run()
//!     .unwrap();
//!
//! assert_eq!(outcome.final_diameter(), Some(2));
//! assert!(!outcome.trace.is_empty());
//!
//! // Or sweep every registered algorithm generically:
//! let graph = generators::ring(32);
//! let uids = UidMap::new(32, UidAssignment::Sequential);
//! for algorithm in registry() {
//!     if algorithm.supports(&graph) {
//!         let outcome = algorithm.run(&graph, &uids, &RunConfig::default()).unwrap();
//!         println!("{:<20} {} rounds", algorithm.name(), outcome.rounds);
//!     }
//! }
//! ```
//!
//! The pre-0.2 free functions (`run_graph_to_star`, `run_flooding`, …)
//! remain available from the prelude but are deprecated in favour of the
//! trait and the builder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adn_analysis as analysis;
pub use adn_core as core;
pub use adn_graph as graph;
pub use adn_runtime as runtime;
pub use adn_sim as sim;

mod experiment;

pub use experiment::Experiment;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::Experiment;
    pub use adn_core::algorithm::{
        arm_network_for_dst, find as find_algorithm, registry, AlgorithmSpec, CentralizedConfig,
        CentralizedCutInHalf, CentralizedGeneral, CliqueFormation, DstConfig, EngineMode, Flooding,
        GraphToStar, GraphToThinWreath, GraphToWreath, ReconfigurationAlgorithm, RunConfig,
        TraceLevel,
    };
    pub use adn_core::committee::{CommitteeAdjacency, CommitteeForest, CommitteeId};
    pub use adn_core::graph_to_wreath::WreathConfig;
    pub use adn_core::tasks::{
        disseminate_after_transformation, disseminate_by_flooding_only, verify_leader_election,
    };
    pub use adn_core::{CoreError, TransformationOutcome};
    pub use adn_graph::{
        generators, properties, traversal, Graph, GraphFamily, NodeId, RootedTree, SortedEdgeSet,
        Uid, UidAssignment, UidMap,
    };
    pub use adn_runtime::{AsyncKnobs, FreeScheduler, RuntimeReport, SeededScheduler};
    pub use adn_sim::dst::{
        find_scenario, scenarios, DstReport, FaultEvent, FaultRecord, Scenario, TargetPolicy,
    };
    pub use adn_sim::{EdgeMetrics, Network, RoundEvent};

    // Deprecated pre-0.2 entry points, kept working for downstream code.
    #[allow(deprecated)]
    pub use adn_core::baselines::clique::run_clique_formation;
    pub use adn_core::baselines::clique::run_clique_then_prune;
    #[allow(deprecated)]
    pub use adn_core::baselines::flooding::run_flooding;
    #[allow(deprecated)]
    pub use adn_core::centralized::{run_centralized_general, run_cut_in_half_on_line};
    #[allow(deprecated)]
    pub use adn_core::graph_to_star::run_graph_to_star;
    #[allow(deprecated)]
    pub use adn_core::graph_to_thin_wreath::run_graph_to_thin_wreath;
    #[allow(deprecated)]
    pub use adn_core::graph_to_wreath::run_graph_to_wreath;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let outcome = Experiment::family(GraphFamily::Ring, 16, 1)
            .algorithm("graph_to_wreath")
            .run()
            .unwrap();
        let uids = UidMap::new(16, UidAssignment::Sequential);
        assert!(verify_leader_election(&outcome, &uids));
        assert!(properties::is_tree(&outcome.final_graph));
    }

    #[test]
    fn async_engine_flows_through_the_builder() {
        let outcome = Experiment::family(GraphFamily::Ring, 24, 5)
            .algorithm("flooding")
            .engine(EngineMode::Seeded { seed: 11 })
            .run()
            .unwrap();
        assert!(outcome.tokens_per_node.iter().all(|&t| t == 24));
        let report = outcome.runtime.expect("async runs carry a runtime report");
        assert_eq!(report.scheduler, "seeded");
        assert_eq!(report.in_flight_at_detection, 0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_prelude_entry_points_still_work() {
        let graph = generators::ring(16);
        let uids = UidMap::new(16, UidAssignment::Sequential);
        let outcome = run_graph_to_wreath(&graph, &uids).unwrap();
        assert!(verify_leader_election(&outcome, &uids));
        assert!(properties::is_tree(&outcome.final_graph));
    }
}
