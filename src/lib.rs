//! # actively-dynamic-networks
//!
//! Facade crate for the reproduction of *"Distributed Computation and
//! Reconfiguration in Actively Dynamic Networks"* (Michail, Skretas,
//! Spirakis — PODC 2020). It re-exports the workspace crates:
//!
//! * [`graph`] (adn-graph) — graph substrate: generators, metrics, rooted
//!   trees, UID assignments.
//! * [`sim`] (adn-sim) — the synchronous actively-dynamic-network
//!   simulator with the distance-2 activation rule and edge-complexity
//!   metering.
//! * [`core`] (adn-core) — the paper's algorithms: GraphToStar,
//!   GraphToWreath, GraphToThinWreath, the subroutines, baselines,
//!   centralized strategies, lower-bound machinery and task layer.
//! * [`analysis`] (adn-analysis) — the experiment harness.
//!
//! # Quickstart
//!
//! ```
//! use actively_dynamic_networks::prelude::*;
//!
//! // A spanning line on 64 nodes with random UIDs.
//! let graph = generators::line(64);
//! let uids = UidMap::new(64, UidAssignment::RandomPermutation { seed: 7 });
//!
//! // Reconfigure it into a spanning star and elect a leader in O(log n)
//! // rounds with O(n log n) edge activations.
//! let outcome = run_graph_to_star(&graph, &uids).unwrap();
//! assert_eq!(outcome.final_diameter(), Some(2));
//! assert_eq!(Some(outcome.leader), uids.max_uid_node());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adn_analysis as analysis;
pub use adn_core as core;
pub use adn_graph as graph;
pub use adn_sim as sim;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use adn_core::baselines::clique::run_clique_formation;
    pub use adn_core::baselines::flooding::run_flooding;
    pub use adn_core::centralized::{run_centralized_general, run_cut_in_half_on_line};
    pub use adn_core::graph_to_star::run_graph_to_star;
    pub use adn_core::graph_to_thin_wreath::run_graph_to_thin_wreath;
    pub use adn_core::graph_to_wreath::run_graph_to_wreath;
    pub use adn_core::tasks::{
        disseminate_after_transformation, disseminate_by_flooding_only, verify_leader_election,
    };
    pub use adn_core::{CoreError, TransformationOutcome};
    pub use adn_graph::{
        generators, properties, traversal, Graph, GraphFamily, NodeId, RootedTree, Uid,
        UidAssignment, UidMap,
    };
    pub use adn_sim::{EdgeMetrics, Network};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let graph = generators::ring(16);
        let uids = UidMap::new(16, UidAssignment::Sequential);
        let outcome = run_graph_to_wreath(&graph, &uids).unwrap();
        assert!(verify_leader_election(&outcome, &uids));
        assert!(properties::is_tree(&outcome.final_graph));
    }
}
