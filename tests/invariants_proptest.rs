//! Property-based tests over random connected networks and random UID
//! assignments: the paper's correctness and complexity invariants must
//! hold on every instance, not just the hand-picked ones.

use actively_dynamic_networks::prelude::*;
use adn_graph::properties::ceil_log2;
use proptest::prelude::*;

/// Strategy: a random connected graph on 4..=48 nodes plus a UID seed.
fn instance() -> impl Strategy<Value = (Graph, u64)> {
    (4usize..=48, 0u64..1000, 0usize..3).prop_map(|(n, seed, kind)| {
        let graph = match kind {
            0 => generators::random_tree(n, seed),
            1 => generators::random_connected(n, 0.1, seed),
            _ => generators::random_bounded_degree_connected(n, 4, n / 3, seed),
        };
        (graph, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn graph_to_star_invariants((graph, seed) in instance()) {
        let n = graph.node_count();
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed });
        let outcome = run_graph_to_star(&graph, &uids).unwrap();
        // Depth-1 tree centred at the max-UID leader.
        prop_assert!(properties::is_star(&outcome.final_graph));
        prop_assert_eq!(properties::star_center(&outcome.final_graph), Some(outcome.leader));
        prop_assert_eq!(Some(outcome.leader), uids.max_uid_node());
        // Edge-complexity bounds of Theorem 3.8 (generous constants).
        prop_assert!(outcome.rounds <= 12 * ceil_log2(n.max(2)) + 14);
        prop_assert!(outcome.metrics.total_activations <= 6 * n * ceil_log2(n.max(2)).max(1));
        prop_assert!(outcome.metrics.max_activated_edges <= 2 * n);
        prop_assert!(outcome.metrics.max_node_activations_in_round <= 1);
    }

    #[test]
    fn graph_to_wreath_invariants((graph, seed) in instance()) {
        let n = graph.node_count();
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed });
        let outcome = run_graph_to_wreath(&graph, &uids).unwrap();
        // Depth-log n tree rooted at the max-UID leader, arity <= 2.
        prop_assert!(properties::is_tree(&outcome.final_graph));
        prop_assert_eq!(Some(outcome.leader), uids.max_uid_node());
        let tree = RootedTree::from_tree_graph(&outcome.final_graph, outcome.leader).unwrap();
        prop_assert!(tree.depth() <= 2 * ceil_log2(n.max(2)) + 2);
        for u in graph.nodes() {
            prop_assert!(tree.child_count(u) <= 2);
        }
        // Constant activated degree regardless of the input degree.
        prop_assert!(outcome.metrics.max_activated_degree <= 10);
    }

    #[test]
    fn simulator_never_creates_multi_edges_or_breaks_vertex_set((graph, seed) in instance()) {
        let n = graph.node_count();
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed });
        let outcome = run_graph_to_star(&graph, &uids).unwrap();
        prop_assert!(outcome.final_graph.check_invariants());
        prop_assert_eq!(outcome.final_graph.node_count(), n);
    }

    #[test]
    fn centralized_strategy_is_linear_in_activations((graph, seed) in instance()) {
        let n = graph.node_count();
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed });
        let outcome = run_centralized_general(&graph, &uids, true).unwrap();
        prop_assert!(outcome.metrics.total_activations <= 2 * n);
        prop_assert!(properties::is_tree(&outcome.final_graph));
        prop_assert!(outcome.rounds <= ceil_log2(2 * n) + 3);
    }
}
