//! Differential model suite for the incremental invariant engine.
//!
//! Two layers are pinned here. At the structure level, [`DynConn`] is
//! compared against a from-scratch BFS component count under every fault
//! kind the DST adversary can produce — crash severs, churn joins, edge
//! rewires, partition cuts and their heals — including the post-batch
//! replay contract the harness uses (graph mutated fully first, deltas
//! replayed afterwards). At the harness level, a DST run with the
//! incremental engine is locked step-for-step against an identical run
//! with `set_from_scratch_checks(true)`: same fault schedule, same
//! per-round verdicts, byte-identical reports. In debug builds the
//! engine's internal BFS oracle asserts on every round of these runs as
//! well.

use adn_graph::rng::DetRng;
use adn_graph::{generators, DynConn, Edge, Graph, NodeId};
use adn_sim::{Adversary, DstState, InvariantPolicy, Network, Scenario};

/// From-scratch reference: number of connected components among nodes
/// with `alive[i]` set, by repeated BFS.
fn reference_components(graph: &Graph, alive: &[bool]) -> usize {
    let n = graph.node_count();
    let mut seen = vec![false; n];
    let mut components = 0usize;
    for s in 0..n {
        if !alive[s] || seen[s] {
            continue;
        }
        components += 1;
        seen[s] = true;
        let mut queue = std::collections::VecDeque::from([NodeId(s)]);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors_slice(u) {
                if alive[v.index()] && !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    components
}

fn assert_agrees(conn: &DynConn, graph: &Graph, alive: &[bool], context: &str) {
    assert_eq!(
        conn.live_components(),
        reference_components(graph, alive),
        "component count diverged after {context}"
    );
    assert_eq!(
        conn.live_count(),
        alive.iter().filter(|&&a| a).count(),
        "live count diverged after {context}"
    );
}

/// Crash `u`: sever every incident edge (graph first, then replay), then
/// the crash itself — the exact event order the network produces.
fn crash_via_events(g: &mut Graph, conn: &mut DynConn, alive: &mut [bool], u: NodeId) {
    let severed: Vec<NodeId> = g.neighbors_slice(u).to_vec();
    for v in &severed {
        g.remove_edge(u, *v).unwrap();
    }
    for v in &severed {
        conn.remove_edge(u, *v, g);
    }
    conn.crash(u, g);
    alive[u.index()] = false;
}

#[test]
fn structure_matches_bfs_under_every_fault_kind() {
    let mut rng = DetRng::seed_from_u64(0xDC_0901);
    for trial in 0..25 {
        let n = 8 + (trial % 7);
        let mut g = generators::random_line_with_chords(n, n / 2, trial as u64);
        let mut conn = DynConn::from_graph(&g);
        let mut alive = vec![true; g.node_count()];
        let mut open_cut: Option<Vec<Edge>> = None;
        for step in 0..80 {
            match rng.gen_range(0, 6) {
                // Edge rewire: insert a random absent live-live edge.
                0 | 1 => {
                    let u = rng.gen_range(0, g.node_count());
                    let v = rng.gen_range(0, g.node_count());
                    if u != v && alive[u] && alive[v] && !g.has_edge(NodeId(u), NodeId(v)) {
                        g.add_edge(NodeId(u), NodeId(v)).unwrap();
                        conn.insert_edge(NodeId(u), NodeId(v));
                    }
                }
                // Edge rewire: delete a random present live-live edge.
                2 => {
                    let edges = g.edge_vec();
                    if !edges.is_empty() {
                        let e = edges[rng.gen_range(0, edges.len())];
                        if alive[e.a.index()] && alive[e.b.index()] {
                            g.remove_edge(e.a, e.b).unwrap();
                            conn.remove_edge(e.a, e.b, &g);
                        }
                    }
                }
                // Crash sever (keep at least two nodes live).
                3 => {
                    if alive.iter().filter(|&&a| a).count() > 2 {
                        let u = rng.gen_range(0, g.node_count());
                        if alive[u] {
                            crash_via_events(&mut g, &mut conn, &mut alive, NodeId(u));
                        }
                    }
                }
                // Churn join, attached to a random live node.
                4 => {
                    let live: Vec<usize> = (0..g.node_count()).filter(|&i| alive[i]).collect();
                    let at = live[rng.gen_range(0, live.len())];
                    let node = g.add_node();
                    assert_eq!(conn.add_node(), node);
                    alive.push(true);
                    g.add_edge(node, NodeId(at)).unwrap();
                    conn.insert_edge(node, NodeId(at));
                }
                // Partition: sever a whole cut as one batch (graph fully
                // mutated first, deltas replayed against the final
                // snapshot), or heal the open cut the same way.
                _ => {
                    if let Some(cut) = open_cut.take() {
                        let healed: Vec<Edge> = cut
                            .into_iter()
                            .filter(|e| alive[e.a.index()] && alive[e.b.index()])
                            .filter(|e| g.add_edge(e.a, e.b).unwrap())
                            .collect();
                        for e in &healed {
                            conn.insert_edge(e.a, e.b);
                        }
                    } else {
                        let pivot = match (0..g.node_count()).find(|&i| alive[i]) {
                            Some(p) => NodeId(p),
                            None => continue,
                        };
                        let mut in_side = vec![false; g.node_count()];
                        in_side[pivot.index()] = true;
                        let mut queue = std::collections::VecDeque::from([pivot]);
                        let target = alive.iter().filter(|&&a| a).count().div_ceil(2);
                        let mut size = 1usize;
                        while let Some(u) = queue.pop_front() {
                            if size >= target {
                                break;
                            }
                            for &v in g.neighbors_slice(u) {
                                if size < target && alive[v.index()] && !in_side[v.index()] {
                                    in_side[v.index()] = true;
                                    size += 1;
                                    queue.push_back(v);
                                }
                            }
                        }
                        let cut: Vec<Edge> = g
                            .edges()
                            .filter(|e| in_side[e.a.index()] != in_side[e.b.index()])
                            .collect();
                        for e in &cut {
                            g.remove_edge(e.a, e.b).unwrap();
                        }
                        for e in &cut {
                            conn.remove_edge(e.a, e.b, &g);
                        }
                        if !cut.is_empty() {
                            open_cut = Some(cut);
                        }
                    }
                }
            }
            assert_agrees(&conn, &g, &alive, &format!("trial {trial} step {step}"));
        }
    }
}

#[test]
fn dead_tree_edge_without_replacement_splits_and_recovers() {
    // Two triangles joined by one bridge: every triangle edge has a
    // replacement (the way around), the bridge has none. Removing the
    // bridge must take the scoped-rebuild path and split; re-inserting
    // must union back to one component.
    let mut g = Graph::new(6);
    for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
        g.add_edge(NodeId(a), NodeId(b)).unwrap();
    }
    g.add_edge(NodeId(2), NodeId(3)).unwrap(); // the bridge
    let mut conn = DynConn::from_graph(&g);
    assert!(conn.is_connected());

    // A triangle edge dies: replacement found, still one component.
    g.remove_edge(NodeId(0), NodeId(1)).unwrap();
    conn.remove_edge(NodeId(0), NodeId(1), &g);
    assert!(conn.is_connected(), "triangle edge has a replacement");

    // The bridge dies: no replacement anywhere — the component splits.
    g.remove_edge(NodeId(2), NodeId(3)).unwrap();
    conn.remove_edge(NodeId(2), NodeId(3), &g);
    assert!(!conn.is_connected(), "bridge has no replacement");
    assert_eq!(conn.live_components(), 2);
    let alive = vec![true; 6];
    assert_agrees(&conn, &g, &alive, "bridge removal");

    // Healing the bridge merges the halves again.
    g.add_edge(NodeId(2), NodeId(3)).unwrap();
    conn.insert_edge(NodeId(2), NodeId(3));
    assert!(conn.is_connected());
    assert_agrees(&conn, &g, &alive, "bridge heal");
}

/// The invariant policy the harness-level differential runs use:
/// everything armed, bounds tight enough that adversarial perturbation
/// can actually trip them.
fn differential_policy() -> InvariantPolicy {
    InvariantPolicy {
        check_connectivity: true,
        max_activated_degree: Some(3),
        max_active_edges: Some(64),
        check_uid_uniqueness: true,
    }
}

/// Builds the lockstep pair: two identical armed networks, one on the
/// incremental engine, one forced from-scratch.
fn armed_pair(scenario: &Scenario, seed: u64, n: usize) -> (Network, Network) {
    let graph = generators::random_line_with_chords(n, n / 4, seed);
    let uids: Vec<u64> = (1..=n as u64).collect();
    let mut incremental = Network::new(graph.clone());
    incremental.install_dst(DstState::new(
        Adversary::new(scenario.clone(), seed),
        differential_policy(),
        uids.clone(),
    ));
    let mut scratch = Network::new(graph);
    let mut state = DstState::new(
        Adversary::new(scenario.clone(), seed),
        differential_policy(),
        uids,
    );
    state.set_from_scratch_checks(true);
    scratch.install_dst(state);
    (incremental, scratch)
}

/// Drives both networks through the identical workload: alternating
/// staged toggle batches (activate / deactivate line chords, committed
/// as real `commit_round` batches) interleaved with idle rounds.
fn drive_lockstep(net: &mut Network, rounds: usize) {
    for r in 0..rounds {
        match r % 4 {
            0 | 1 => {
                // The backbone of `random_line_with_chords` is the line
                // 0-1-2-…, so (i, i+2) is always at distance 2.
                for i in (0..6).map(|k| 2 * k) {
                    let (u, v) = (NodeId(i), NodeId(i + 2));
                    if r % 4 == 0 {
                        let _ = net.stage_activation(u, v);
                    } else {
                        let _ = net.stage_deactivation(u, v);
                    }
                }
                net.commit_round();
            }
            2 => {
                net.commit_round(); // an empty batch is still a round
            }
            _ => net.advance_idle_rounds(1),
        }
    }
}

#[test]
fn incremental_and_from_scratch_reports_agree_across_scenarios() {
    let scenarios = [
        Scenario::failure_free(),
        Scenario::crash_stop(),
        Scenario::adversarial_edges(),
        Scenario::churn(),
        Scenario::round_skew(),
        Scenario::mixed(),
        Scenario::partition_heal(),
    ];
    for scenario in &scenarios {
        for seed in [1u64, 7, 42] {
            let (mut incremental, mut scratch) = armed_pair(scenario, seed, 24);
            drive_lockstep(&mut incremental, 40);
            drive_lockstep(&mut scratch, 40);
            let a = incremental.take_dst_report().expect("armed");
            let b = scratch.take_dst_report().expect("armed");
            assert!(a.rounds_checked > 0);
            assert_eq!(
                a.render(),
                b.render(),
                "incremental vs from-scratch diverged: scenario {} seed {seed}",
                scenario.name
            );
        }
    }
}

#[test]
fn per_round_verdicts_agree_under_interleaved_batches() {
    // Probability-1 mixed faulting, and the from-scratch twin commits on
    // the sharded path — one lockstep run differentiates the incremental
    // engine against the from-scratch checker *and* the serial against
    // the sharded commit, round for round rather than report for report.
    let scenario = Scenario {
        fault_budget: 24,
        per_round_probability: 1.0,
        ..Scenario::mixed()
    };
    for seed in [3u64, 11] {
        let (mut incremental, mut scratch) = armed_pair(&scenario, seed, 20);
        scratch.set_commit_threads(4);
        for r in 0..48 {
            match r % 3 {
                0 => {
                    for i in (0..8).map(|k| 2 * k) {
                        let _ = incremental.stage_activation(NodeId(i), NodeId(i + 2));
                        let _ = scratch.stage_activation(NodeId(i), NodeId(i + 2));
                    }
                    incremental.commit_round();
                    scratch.commit_round();
                }
                1 => {
                    for i in (0..8).map(|k| 2 * k) {
                        let _ = incremental.stage_deactivation(NodeId(i), NodeId(i + 2));
                        let _ = scratch.stage_deactivation(NodeId(i), NodeId(i + 2));
                    }
                    incremental.commit_round();
                    scratch.commit_round();
                }
                _ => {
                    incremental.advance_idle_rounds(1);
                    scratch.advance_idle_rounds(1);
                }
            }
            let via_events = incremental.dst_state().expect("armed");
            let via_scan = scratch.dst_state().expect("armed");
            assert_eq!(
                via_events.violations(),
                via_scan.violations(),
                "per-round verdicts diverged at round {r} (seed {seed})"
            );
            assert_eq!(via_events.crashed(), via_scan.crashed());
        }
        let a = incremental.take_dst_report().expect("armed");
        let b = scratch.take_dst_report().expect("armed");
        assert_eq!(a.render(), b.render());
        assert!(
            !a.faults.is_empty(),
            "probability-1 mixed run injected faults"
        );
    }
}

#[test]
fn crash_heavy_run_records_identical_connectivity_violations() {
    // Hub-targeted crashes on a star: the centre dies early, every leaf
    // is stranded, and the connectivity invariant must fire identically
    // through the event-fed forest and the full BFS.
    let scenario = Scenario {
        fault_budget: 4,
        per_round_probability: 1.0,
        ..Scenario::crash_stop().with_target(adn_sim::dst::TargetPolicy::MaxDegree)
    };
    let n = 12;
    let graph = generators::star(n);
    let uids: Vec<u64> = (1..=n as u64).collect();
    let mut incremental = Network::new(graph.clone());
    incremental.install_dst(DstState::new(
        Adversary::new(scenario.clone(), 5),
        differential_policy(),
        uids.clone(),
    ));
    let mut scratch = Network::new(graph);
    let mut state = DstState::new(Adversary::new(scenario, 5), differential_policy(), uids);
    state.set_from_scratch_checks(true);
    scratch.install_dst(state);
    for _ in 0..12 {
        incremental.advance_idle_rounds(1);
        scratch.advance_idle_rounds(1);
    }
    let a = incremental.take_dst_report().expect("armed");
    let b = scratch.take_dst_report().expect("armed");
    assert_eq!(a.render(), b.render());
    assert!(
        a.violations.iter().any(|v| v.invariant == "connectivity"),
        "hub crash must strand the leaves: {:?}",
        a.violations
    );
}
