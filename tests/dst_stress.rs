//! Deterministic simulation-testing acceptance suite: every registered
//! algorithm runs under (at least) the four canonical scenarios —
//! failure-free, crash-stop, adversarial-edges, churn — with round-level
//! invariant checking armed, and every run (clean or failing) reproduces
//! byte-identically from its seeds.

use actively_dynamic_networks::prelude::*;
use adn_analysis::stress::{self, StressCase, StressOutcome};

const MATRIX_SEEDS: [u64; 2] = [1, 2];

fn matrix_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::failure_free(),
        Scenario::crash_stop(),
        Scenario::adversarial_edges(),
        Scenario::churn(),
    ]
}

fn family_for(algorithm_id: &str) -> GraphFamily {
    if algorithm_id == "centralized_cut_in_half" {
        GraphFamily::Line
    } else {
        GraphFamily::Ring
    }
}

#[test]
fn every_algorithm_under_every_canonical_scenario_is_deterministic() {
    for algorithm in registry() {
        let id = algorithm.spec().id;
        for scenario in matrix_scenarios() {
            for seed in MATRIX_SEEDS {
                let case = StressCase::explicit(
                    id,
                    family_for(id),
                    24,
                    seed,
                    scenario.clone(),
                    seed.wrapping_mul(0x9E37_79B9),
                );
                let first = stress::run_case(&case);
                let second = stress::run_case(&case);
                assert_eq!(
                    first.render(),
                    second.render(),
                    "{id} under {} (seed {seed}) is not deterministic",
                    scenario.name
                );
                // Invariant checking really ran: every round boundary was
                // evaluated.
                assert!(
                    first.dst.rounds_checked > 0,
                    "{id} under {}: checker never ran\n{}",
                    scenario.name,
                    first.render()
                );
                if scenario.name == "failure_free" {
                    assert!(
                        first.is_clean(),
                        "{id} must be clean without faults:\n{}",
                        first.render()
                    );
                } else {
                    assert!(
                        first.dst.faults.len() <= scenario.fault_budget,
                        "{id} under {}: fault budget overrun\n{}",
                        scenario.name,
                        first.render()
                    );
                }
                // Nothing in the matrix may fail the suite (panics, or
                // failures with no fault to blame).
                assert!(
                    !first.is_suite_failure(),
                    "{id} under {} (seed {seed}) is a suite failure:\n{}",
                    scenario.name,
                    first.render()
                );
            }
        }
    }
}

#[test]
fn faults_do_get_injected_across_the_matrix() {
    // The matrix above tolerates quiet runs (short executions leave the
    // adversary little time); here we confirm each fault class actually
    // fires when given a certain shot.
    let mut kinds_seen = std::collections::BTreeSet::new();
    for scenario in [
        Scenario::crash_stop(),
        Scenario::adversarial_edges(),
        Scenario::churn(),
        Scenario::round_skew(),
        Scenario::partition_heal(),
    ] {
        let scenario = Scenario {
            per_round_probability: 1.0,
            ..scenario
        };
        let case = StressCase::explicit("flooding", GraphFamily::Line, 20, 3, scenario, 77);
        let report = stress::run_case(&case);
        for f in &report.dst.faults {
            let kind = match f.event {
                FaultEvent::CrashNode { .. } => "crash",
                FaultEvent::DeleteEdge { .. } => "delete",
                FaultEvent::InsertEdge { .. } => "insert",
                FaultEvent::Join { .. } => "join",
                FaultEvent::Skew { .. } => "skew",
                FaultEvent::Partition { .. } => "partition",
                FaultEvent::Heal { .. } => "heal",
            };
            kinds_seen.insert(kind);
        }
    }
    assert!(
        kinds_seen.len() >= 5,
        "expected crash, edge ops, churn, skew and partition/heal to all fire, saw {} kinds: {kinds_seen:?}",
        kinds_seen.len()
    );
    assert!(
        kinds_seen.contains("partition") && kinds_seen.contains("heal"),
        "partition/heal cycle must fire: {kinds_seen:?}"
    );
}

#[test]
fn seed_derived_failures_replay_from_one_u64() {
    // Scan seed-derived cases until a few have injected faults, then
    // check each reproduces byte-identically from its single u64 seed —
    // the property the `--replay` CLI entry point exposes.
    let mut replayed = 0;
    for seed in 0..200u64 {
        let report = stress::replay(seed);
        if report.dst.faults.is_empty() {
            continue;
        }
        let (again, identical) = stress::verify_replay(seed);
        assert!(identical, "seed {seed} diverged");
        assert_eq!(report.render(), again.render(), "seed {seed} diverged");
        replayed += 1;
        if replayed >= 5 {
            break;
        }
    }
    assert!(
        replayed >= 5,
        "fewer than 5 of 200 seeds injected faults — adversary too quiet"
    );
}

#[test]
fn experiment_builder_carries_the_dst_report() {
    let outcome = Experiment::on(generators::ring(24))
        .algorithm("graph_to_star")
        .scenario(Scenario::failure_free(), 9)
        .run()
        .unwrap();
    let report = outcome.dst.expect("scenario() must arm the DST layer");
    assert_eq!(report.scenario, "failure_free");
    assert!(report.is_clean());
    assert!(report.rounds_checked > 0);

    // A plain run carries no report.
    let plain = Experiment::on(generators::ring(24))
        .algorithm("graph_to_star")
        .run()
        .unwrap();
    assert!(plain.dst.is_none());
}

#[test]
fn run_config_dst_flows_through_the_trait_entry_point() {
    let graph = generators::line(16);
    let uids = UidMap::new(16, UidAssignment::Sequential);
    let config = RunConfig::default().with_dst(Scenario::failure_free(), 4);
    let outcome = GraphToStar.run(&graph, &uids, &config).unwrap();
    assert!(outcome.dst.is_some());
}

#[test]
fn crashed_algorithm_failures_are_attributed_to_faults() {
    // A certain crash on a line will stall flooding (it waits for n
    // tokens): the run fails, but the failure is attributed to the
    // injected fault, so it is not a suite failure — and it minimizes.
    let scenario = Scenario {
        per_round_probability: 1.0,
        ..Scenario::crash_stop().with_fault_budget(2)
    };
    let case = StressCase::explicit("flooding", GraphFamily::Line, 16, 1, scenario, 5);
    let report = stress::run_case(&case);
    assert!(
        matches!(report.outcome, StressOutcome::Failed(_)),
        "{}",
        report.render()
    );
    assert!(!report.dst.faults.is_empty());
    assert!(!report.is_suite_failure());
    let minimized = stress::minimize(&case).expect("non-clean case must minimize");
    assert!(minimized.minimal_budget >= 1);
}
