//! Differential suite for the network's round-event bus.
//!
//! Every observable of [`Network`] — engine changed-nodes, committee
//! edge-deltas, DST replay, metrics, the per-round trace — is now a
//! projection of one recorded [`RoundEvent`] stream. These tests drive
//! DST-armed networks through mixed / partition / churn / crash fault
//! schedules with *every* consumer armed at once and pin the stream
//! against from-scratch reference computations:
//!
//! * replaying the recorded events over a snapshot of the initial graph
//!   reproduces the live snapshot edge for edge;
//! * the drained changed-node and edge-delta projections equal what the
//!   raw stream implies;
//! * each traced round's `max_degree` (served by the incremental degree
//!   histogram) equals a from-scratch scan of the replayed mirror at
//!   that round boundary — in release builds too, where the histogram's
//!   `debug_assert` oracle is compiled out;
//! * the elapsed-round accounting (`EdgeMetrics::rounds`,
//!   `activations_per_round`) matches the boundary events;
//! * the serial and sharded commit paths emit byte-identical streams
//!   across worker-thread counts.

use actively_dynamic_networks::graph::rng::DetRng;
use actively_dynamic_networks::graph::{generators, Edge, Graph, NodeId};
use actively_dynamic_networks::sim::dst::{Adversary, InvariantPolicy, Scenario};
use actively_dynamic_networks::sim::{DstState, Network, RoundEvent, WaveActivation};

/// Replays one event into the from-scratch mirror graph.
fn apply_to_mirror(mirror: &mut Graph, event: &RoundEvent) {
    match *event {
        RoundEvent::Edge { edge, added, .. } => {
            let changed = if added {
                mirror.add_edge(edge.a, edge.b)
            } else {
                mirror.remove_edge(edge.a, edge.b)
            };
            assert_eq!(
                changed,
                Ok(true),
                "recorded {event:?} must mutate the mirror"
            );
        }
        RoundEvent::NodeJoined(node) => {
            assert_eq!(mirror.add_node(), node, "joins arrive in id order");
        }
        RoundEvent::NodeCrashed(_) | RoundEvent::RoundCommitted { .. } | RoundEvent::IdleRound => {}
    }
}

/// The changed-node projection of an event window: endpoints of every
/// edge mutation, sorted and deduplicated — the reference
/// `take_changed_nodes` must match.
fn changed_nodes_of(events: &[RoundEvent]) -> Vec<NodeId> {
    let mut changed: Vec<NodeId> = events
        .iter()
        .filter_map(|e| match e {
            RoundEvent::Edge { edge, .. } => Some([edge.a, edge.b]),
            _ => None,
        })
        .flatten()
        .collect();
    changed.sort_unstable();
    changed.dedup();
    changed
}

#[test]
fn recorded_stream_replays_to_snapshot_under_faults() {
    let scenarios = [
        Scenario::mixed().with_fault_budget(10),
        Scenario {
            per_round_probability: 0.6,
            ..Scenario::partition_heal().with_fault_budget(4)
        },
        Scenario {
            per_round_probability: 0.8,
            ..Scenario::churn().with_fault_budget(6)
        },
        Scenario {
            per_round_probability: 0.5,
            ..Scenario::crash_stop().with_fault_budget(5)
        },
    ];
    for (which, scenario) in scenarios.into_iter().enumerate() {
        for seed in 0u64..6 {
            let mut rng = DetRng::seed_from_u64(0xB5_0B5 ^ seed.wrapping_mul(173) ^ (which as u64));
            let n = 8 + rng.gen_range(0, 17);
            let initial = generators::random_line_with_chords(n, n / 2, seed);
            let mut net = Network::new(initial.clone());
            net.install_dst(DstState::new(
                Adversary::new(scenario.clone(), seed.wrapping_mul(11) + 5),
                InvariantPolicy::default(),
                (1..=n as u64).collect(),
            ));
            // Every consumer at once: raw recorder, engine tap, committee
            // tap, DST tap (armed by install_dst) and the traced ledger.
            net.set_event_recording(true);
            net.set_change_tracking(true);
            net.set_edge_delta_tracking(true);
            net.set_trace_enabled(true);

            let mut mirror = initial;
            let mut boundaries = 0usize;
            let mut idles = 0usize;
            let mut traced_max_degrees = Vec::new();
            let mut per_round_activations = Vec::new();
            for round in 0..50 {
                for _ in 0..rng.gen_range(0, 6) {
                    let n_now = net.node_count();
                    let u = NodeId(rng.gen_range(0, n_now));
                    let v = NodeId(rng.gen_range(0, n_now));
                    if u == v {
                        continue;
                    }
                    if rng.gen_bool(0.7) {
                        let _ = net.stage_activation(u, v);
                    } else {
                        let _ = net.stage_deactivation(u, v);
                    }
                }
                net.commit_round();
                if rng.gen_bool(0.2) {
                    net.advance_idle_rounds(1 + rng.gen_range(0, 2));
                }

                let events = net.take_events();
                let deltas = net.take_edge_deltas();
                let changed = net.take_changed_nodes();

                // The per-consumer drains are projections of the stream.
                let edge_events: Vec<(Edge, bool)> = events
                    .iter()
                    .filter_map(|e| match e {
                        RoundEvent::Edge { edge, added, .. } => Some((*edge, *added)),
                        _ => None,
                    })
                    .collect();
                let delta_pairs: Vec<(Edge, bool)> =
                    deltas.iter().map(|d| (d.edge, d.added)).collect();
                assert_eq!(
                    delta_pairs, edge_events,
                    "scenario {} seed {seed} round {round}: edge-delta projection diverged",
                    scenario.name
                );
                assert_eq!(
                    changed,
                    changed_nodes_of(&events),
                    "scenario {} seed {seed} round {round}: changed-node projection diverged",
                    scenario.name
                );

                // Replay into the mirror; sample it at every boundary for
                // the traced max_degree cross-check.
                let mut window_activations = Vec::new();
                for event in &events {
                    apply_to_mirror(&mut mirror, event);
                    match *event {
                        RoundEvent::RoundCommitted {
                            activations,
                            deactivations,
                            ..
                        } => {
                            boundaries += 1;
                            window_activations.push(activations);
                            traced_max_degrees.push(mirror.max_degree());
                            let adds = events
                                .iter()
                                .filter(|e| matches!(e, RoundEvent::Edge { added: true, .. }))
                                .count();
                            let removes = events
                                .iter()
                                .filter(|e| matches!(e, RoundEvent::Edge { added: false, .. }))
                                .count();
                            // One commit per drain window: the committed
                            // counts are bounded by the window's edge
                            // events (faults add more, stages never lost).
                            assert!(activations <= adds && deactivations <= removes);
                        }
                        RoundEvent::IdleRound => idles += 1,
                        _ => {}
                    }
                }
                per_round_activations.extend(window_activations);
                assert_eq!(
                    &mirror,
                    net.graph(),
                    "scenario {} seed {seed} round {round}: replayed mirror diverged",
                    scenario.name
                );
            }

            // Trace: one entry per committed round, max_degree equal to
            // the from-scratch scan of the mirror at that boundary.
            let trace = net.trace();
            assert_eq!(trace.len(), boundaries);
            for (stats, &expected) in trace.iter().zip(&traced_max_degrees) {
                assert_eq!(
                    stats.max_degree, expected,
                    "scenario {} seed {seed} round {}: traced max_degree diverged",
                    scenario.name, stats.round
                );
            }

            // Elapsed-round accounting: every boundary and every idle
            // charge (including adversarial skew) is one metered round
            // contributing its activation count (0 for idles).
            let metrics = net.metrics();
            assert_eq!(metrics.rounds, boundaries + idles);
            assert_eq!(metrics.recorded_rounds(), boundaries + idles);
            let committed_total: usize = per_round_activations.iter().sum();
            assert_eq!(metrics.total_activations, committed_total);
        }
    }
}

#[test]
fn stream_is_identical_across_commit_paths_and_thread_counts() {
    // Large star waves so `apply_batches_sharded` actually shards; the
    // serial network is the reference. Trace and recorder are both armed
    // to pin the whole observable surface, not just the snapshot.
    let n = 2048usize;
    let wave: Vec<WaveActivation> = (1..n - 1)
        .map(|i| WaveActivation {
            initiator: NodeId(i),
            target: NodeId(i + 1),
            witness: NodeId(0),
        })
        .collect();
    let deacts: Vec<Edge> = (1..n / 2)
        .map(|i| Edge::new(NodeId(i), NodeId(i + 1)))
        .collect();
    let run = |threads: usize| {
        let mut net = Network::new(generators::star(n));
        net.set_commit_threads(threads);
        net.set_event_recording(true);
        net.set_trace_enabled(true);
        net.stage_jump_wave(&wave, &[]).unwrap();
        net.commit_round();
        net.stage_jump_wave(&[], &deacts).unwrap();
        net.commit_round();
        net.advance_idle_rounds(1);
        (
            net.take_events(),
            net.take_trace(),
            net.metrics().clone(),
            net.graph().clone(),
        )
    };
    let reference = run(1);
    for threads in [2usize, 4, 8] {
        let sharded = run(threads);
        assert_eq!(
            reference.0, sharded.0,
            "threads={threads}: event stream diverged from serial"
        );
        assert_eq!(reference.1, sharded.1, "threads={threads}: trace diverged");
        assert_eq!(
            reference.2, sharded.2,
            "threads={threads}: metrics diverged"
        );
        assert_eq!(
            reference.3, sharded.3,
            "threads={threads}: snapshot diverged"
        );
    }
    // The serial reference saw real events: a full wave of adds, then the
    // removals, each closed by its boundary, then the idle charge.
    assert!(matches!(reference.0.last(), Some(RoundEvent::IdleRound)));
    assert_eq!(
        reference
            .0
            .iter()
            .filter(|e| matches!(e, RoundEvent::RoundCommitted { .. }))
            .count(),
        2
    );
}

#[test]
fn trace_from_scratch_knob_matches_incremental_histogram() {
    // The benchmark comparison knob must be observationally inert: the
    // from-scratch scan and the histogram serve identical traces under a
    // faulty schedule (this is the release-build cross-check; debug
    // builds also assert it inside every traced commit).
    let scenario = Scenario::mixed().with_fault_budget(8);
    for seed in 0u64..4 {
        let run = |from_scratch: bool| {
            let mut rng = DetRng::seed_from_u64(0x7AC3 ^ seed);
            let n = 24;
            let mut net = Network::new(generators::random_line_with_chords(n, n / 2, seed));
            net.install_dst(DstState::new(
                Adversary::new(scenario.clone(), seed + 2),
                InvariantPolicy::default(),
                (1..=n as u64).collect(),
            ));
            net.set_trace_from_scratch(from_scratch);
            net.set_trace_enabled(true);
            for _ in 0..40 {
                for _ in 0..rng.gen_range(0, 5) {
                    let n_now = net.node_count();
                    let u = NodeId(rng.gen_range(0, n_now));
                    let v = NodeId(rng.gen_range(0, n_now));
                    if u != v {
                        let _ = net.stage_activation(u, v);
                    }
                }
                net.commit_round();
            }
            (net.take_trace(), net.metrics().clone())
        };
        let incremental = run(false);
        let scratch = run(true);
        assert_eq!(incremental, scratch, "seed {seed}: knob changed the trace");
    }
}
