//! Differential property suite for the committee-forest layer and the
//! incremental engine views.
//!
//! The committee algorithms used to build their scaffolding out of
//! `BTreeMap<NodeId, Committee>` membership maps, nested-`BTreeMap`
//! committee adjacency and per-round full `NodeView` rebuilds. These tests
//! keep the old representations alive as executable specifications and pin
//! the arena-backed [`CommitteeForest`] / flat [`CommitteeAdjacency`] /
//! incremental [`ViewCache`] against them under seeded random operation
//! sequences — membership, iteration order, bridge selection, selection
//! roots and view contents all included — so any divergence is caught with
//! the seed that reproduces it (the `tests/flat_structures_model.rs`
//! pattern, one layer up).

use actively_dynamic_networks::core::committee::{
    CommitteeForest, CommitteeId, IncrementalAdjacency, SelectionForest,
};
use actively_dynamic_networks::graph::rng::DetRng;
use actively_dynamic_networks::graph::{generators, Graph, NodeId, UidAssignment, UidMap};
use actively_dynamic_networks::sim::dst::{Adversary, InvariantPolicy, Scenario};
use actively_dynamic_networks::sim::engine::ViewCache;
use actively_dynamic_networks::sim::{DstState, Network};
use std::collections::BTreeMap;

/// The old committee bookkeeping: committees keyed by leader, membership
/// extended on merge, `committee_of` holding leaders.
struct ModelPartition {
    committees: BTreeMap<NodeId, Vec<NodeId>>,
    committee_of: Vec<NodeId>,
}

impl ModelPartition {
    fn new(n: usize) -> Self {
        ModelPartition {
            committees: (0..n).map(|i| (NodeId(i), vec![NodeId(i)])).collect(),
            committee_of: (0..n).map(NodeId).collect(),
        }
    }

    fn absorb(&mut self, dying: NodeId, absorbing: NodeId) {
        let dead = self.committees.remove(&dying).expect("dying exists");
        for &m in &dead {
            self.committee_of[m.index()] = absorbing;
        }
        self.committees
            .get_mut(&absorbing)
            .expect("absorbing exists")
            .extend(dead);
    }

    /// The adjacency builder copy-pasted between `graph_to_star.rs` and
    /// `graph_to_wreath.rs` before the committee module, verbatim.
    fn committee_adjacency(
        &self,
        graph: &Graph,
    ) -> BTreeMap<NodeId, BTreeMap<NodeId, (NodeId, NodeId)>> {
        let mut adj: BTreeMap<NodeId, BTreeMap<NodeId, (NodeId, NodeId)>> = BTreeMap::new();
        for e in graph.edges() {
            if e.b.index() >= self.committee_of.len() {
                continue;
            }
            let ca = self.committee_of[e.a.index()];
            let cb = self.committee_of[e.b.index()];
            if ca == cb {
                continue;
            }
            let entry = adj.entry(ca).or_default().entry(cb).or_insert((e.a, e.b));
            if (e.a, e.b) < *entry {
                *entry = (e.a, e.b);
            }
            let entry = adj.entry(cb).or_default().entry(ca).or_insert((e.b, e.a));
            if (e.b, e.a) < *entry {
                *entry = (e.b, e.a);
            }
        }
        adj
    }
}

/// Leaders never migrate between slots, so slot id == initial leader index
/// in both algorithms; the model's leader keys translate directly.
fn assert_same_partition(forest: &CommitteeForest, model: &ModelPartition, ctx: &str) {
    let live_leaders: Vec<NodeId> = forest
        .live_ids()
        .iter()
        .map(|&c| forest.leader(c))
        .collect();
    let model_leaders: Vec<NodeId> = model.committees.keys().copied().collect();
    assert_eq!(
        live_leaders, model_leaders,
        "{ctx}: live committees (order included)"
    );
    for (&leader, members) in &model.committees {
        let cid = forest.committee_of(leader).expect("leader is tracked");
        assert_eq!(forest.leader(cid), leader, "{ctx}: leader of {leader}");
        assert!(forest.is_alive(cid));
        assert_eq!(
            forest.members(cid),
            &members[..],
            "{ctx}: members of {leader} (order included)"
        );
    }
    for u in 0..model.committee_of.len() {
        assert_eq!(
            forest.leader_of(NodeId(u)),
            model.committee_of[u],
            "{ctx}: committee of node {u}"
        );
    }
}

fn assert_same_adjacency(
    forest: &CommitteeForest,
    model: &ModelPartition,
    graph: &Graph,
    ctx: &str,
) {
    let flat = forest.committee_adjacency(graph);
    let reference = model.committee_adjacency(graph);
    let mut rows_seen = 0usize;
    for &cid in forest.live_ids() {
        let leader = forest.leader(cid);
        let rows = flat.neighbors(cid);
        rows_seen += rows.len();
        let expect = reference.get(&leader);
        assert_eq!(
            rows.len(),
            expect.map_or(0, |m| m.len()),
            "{ctx}: neighbour count of {leader}"
        );
        if let Some(expect) = expect {
            // Same neighbours in the same (ascending) order, same bridges.
            for (row, (&other_leader, &(x, y))) in rows.iter().zip(expect.iter()) {
                assert_eq!(forest.leader(row.other), other_leader, "{ctx}: order");
                assert_eq!(
                    (row.bridge_local, row.bridge_remote),
                    (x, y),
                    "{ctx}: bridge {leader} -> {other_leader}"
                );
            }
        }
    }
    assert_eq!(rows_seen, flat.row_count(), "{ctx}: no orphan rows");
}

#[test]
fn forest_matches_btreemap_model_under_seeded_merge_sequences() {
    for seed in 0u64..10 {
        let mut rng = DetRng::seed_from_u64(0xC0FF ^ seed.wrapping_mul(0x9E37_79B9));
        let n = 8 + rng.gen_range(0, 25);
        let mut graph = generators::random_line_with_chords(n, n / 2, seed);
        let mut forest = CommitteeForest::singletons(n);
        let mut model = ModelPartition::new(n);
        // Churned-in nodes beyond the tracked set must stay invisible.
        let joined = graph.add_node();
        graph.add_edge(NodeId(0), joined).unwrap();

        for step in 0..60 {
            match rng.gen_range(0, 10) {
                0..=5 => {
                    // Merge two distinct live committees.
                    if forest.live_count() < 2 {
                        continue;
                    }
                    let live = forest.live_ids();
                    let a = live[rng.gen_range(0, live.len())];
                    let b = live[rng.gen_range(0, live.len())];
                    if a == b {
                        continue;
                    }
                    forest.absorb(a, b);
                    model.absorb(NodeId(a.index()), NodeId(b.index()));
                }
                6..=7 => {
                    // Mutate the graph: the adjacency must track it.
                    let u = NodeId(rng.gen_range(0, n));
                    let v = NodeId(rng.gen_range(0, n));
                    if u == v {
                        continue;
                    }
                    if rng.gen_bool(0.5) {
                        let _ = graph.add_edge(u, v);
                    } else {
                        let _ = graph.remove_edge(u, v);
                    }
                }
                _ => {
                    let ctx = format!("seed {seed} step {step}");
                    assert_same_partition(&forest, &model, &ctx);
                    assert_same_adjacency(&forest, &model, &graph, &ctx);
                }
            }
        }
        let ctx = format!("seed {seed} final");
        assert_same_partition(&forest, &model, &ctx);
        assert_same_adjacency(&forest, &model, &graph, &ctx);
    }
}

#[test]
fn replace_members_and_retire_match_wholesale_rebuild_semantics() {
    // The wreath engine's merge: roots take over the spliced ring
    // (arbitrary order), children retire. The model rebuilds its map the
    // way the old code built `next_committees`.
    for seed in 0u64..6 {
        let mut rng = DetRng::seed_from_u64(0x11EA7 ^ seed.wrapping_mul(131));
        let n = 6 + rng.gen_range(0, 19);
        let mut forest = CommitteeForest::singletons(n);
        let mut model = ModelPartition::new(n);
        while forest.live_count() > 1 {
            // Pick a root and a few children, splice their members in an
            // interleaved (ring-like, unsorted) order.
            let live = forest.live_ids().to_vec();
            let root = live[rng.gen_range(0, live.len())];
            let mut children: Vec<CommitteeId> = Vec::new();
            for _ in 0..(1 + rng.gen_range(0, 3)) {
                let c = live[rng.gen_range(0, live.len())];
                if c != root && !children.contains(&c) {
                    children.push(c);
                }
            }
            if children.is_empty() {
                continue;
            }
            let mut ring: Vec<NodeId> = forest.members(root).to_vec();
            for &c in &children {
                let members = forest.members(c);
                // Insert child members at a pseudo-random cut point.
                let cut = rng.gen_range(0, ring.len());
                let mut spliced = ring[..=cut].to_vec();
                spliced.extend_from_slice(members);
                spliced.extend_from_slice(&ring[cut + 1..]);
                ring = spliced;
            }
            forest.replace_members(root, ring.clone());
            for &c in &children {
                forest.retire(c);
            }
            let root_leader = NodeId(root.index());
            for &c in &children {
                model.committees.remove(&NodeId(c.index()));
            }
            model.committees.insert(root_leader, ring.clone());
            for &u in &ring {
                model.committee_of[u.index()] = root_leader;
            }
            assert_same_partition(&forest, &model, &format!("seed {seed}"));
        }
    }
}

#[test]
fn selection_forest_matches_pointer_chasing_reference() {
    for seed in 0u64..10 {
        let mut rng = DetRng::seed_from_u64(0x5E1EC7 ^ seed.wrapping_mul(0xABCD));
        let n = 6 + rng.gen_range(0, 30);
        let mut forest = CommitteeForest::singletons(n);
        for _ in 0..rng.gen_range(0, n / 2) {
            let live = forest.live_ids();
            if live.len() < 2 {
                break;
            }
            let a = live[rng.gen_range(0, live.len())];
            let b = live[rng.gen_range(0, live.len())];
            if a != b {
                forest.absorb(a, b);
            }
        }
        // Build an acyclic selection: each committee may select a
        // strictly larger live slot (mirrors the strictly-larger-UID rule).
        let live = forest.live_ids().to_vec();
        let mut edges: Vec<(CommitteeId, CommitteeId)> = Vec::new();
        let mut selected: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        for (i, &c) in live.iter().enumerate() {
            if i + 1 < live.len() && rng.gen_bool(0.7) {
                let parent = live[i + 1 + rng.gen_range(0, live.len() - i - 1)];
                edges.push((c, parent));
                selected.insert(NodeId(c.index()), NodeId(parent.index()));
            }
        }
        let sel = SelectionForest::new(&forest, &edges);

        // Reference: the old per-query chaser and BTreeMap scaffolding.
        let root_of = |mut c: NodeId| {
            let mut guard = 0usize;
            while let Some(&parent) = selected.get(&c) {
                c = parent;
                guard += 1;
                if guard > live.len() {
                    break;
                }
            }
            c
        };
        let mut children_of: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for (&child, &parent) in &selected {
            children_of.entry(parent).or_default().push(child);
        }
        let roots: Vec<NodeId> = live
            .iter()
            .map(|&c| NodeId(c.index()))
            .filter(|c| !selected.contains_key(c))
            .collect();

        assert_eq!(
            sel.roots()
                .iter()
                .map(|&c| NodeId(c.index()))
                .collect::<Vec<_>>(),
            roots,
            "seed {seed}: roots (order included)"
        );
        for &c in &live {
            let leader = NodeId(c.index());
            assert_eq!(
                NodeId(sel.root_of(c).index()),
                root_of(leader),
                "seed {seed}: root of {leader}"
            );
            let expect_children = children_of.get(&leader).cloned().unwrap_or_default();
            assert_eq!(
                sel.children(c)
                    .iter()
                    .map(|&x| NodeId(x.index()))
                    .collect::<Vec<_>>(),
                expect_children,
                "seed {seed}: children of {leader} (order included)"
            );
            assert_eq!(sel.has_children(c), !expect_children.is_empty());
            assert_eq!(
                sel.parent(c).map(|p| NodeId(p.index())),
                selected.get(&leader).copied(),
                "seed {seed}: parent of {leader}"
            );
        }
    }
}

/// Drives a DST-armed network with random staged operations, adversarial
/// faults and random forest merges (both the absorb and the ring-style
/// replace/retire discipline), syncing one [`IncrementalAdjacency`] from
/// the network's edge deltas across rounds and comparing its
/// materialization against the from-scratch builder every round — the
/// differential the committee algorithms debug-assert per phase, pinned
/// here under the full fault mix (including release builds, where the
/// debug assert is compiled out).
#[test]
fn incremental_adjacency_matches_rebuild_under_fault_sequences() {
    let scenarios = [
        Scenario::failure_free(),
        Scenario::mixed().with_fault_budget(10),
        Scenario {
            per_round_probability: 0.6,
            ..Scenario::partition_heal().with_fault_budget(3)
        },
        Scenario {
            per_round_probability: 0.8,
            ..Scenario::churn().with_fault_budget(6)
        },
    ];
    for (which, scenario) in scenarios.into_iter().enumerate() {
        for seed in 0u64..6 {
            let mut rng = DetRng::seed_from_u64(0xAD1 ^ seed.wrapping_mul(131) ^ (which as u64));
            let n = 8 + rng.gen_range(0, 17);
            let initial = generators::random_line_with_chords(n, n / 2, seed);
            let mut net = Network::new(initial);
            net.install_dst(DstState::new(
                Adversary::new(scenario.clone(), seed.wrapping_mul(13) + 3),
                InvariantPolicy::default(),
                (1..=n as u64).collect(),
            ));
            net.set_edge_delta_tracking(true);
            let mut forest = CommitteeForest::singletons(n);
            let mut tracker = IncrementalAdjacency::new(&forest, net.graph());
            for round in 0..50 {
                // Node-driven edge operations (validated staging).
                for _ in 0..rng.gen_range(0, 6) {
                    let n_now = net.node_count();
                    let u = NodeId(rng.gen_range(0, n_now));
                    let v = NodeId(rng.gen_range(0, n_now));
                    if u == v {
                        continue;
                    }
                    if rng.gen_bool(0.7) {
                        let _ = net.stage_activation(u, v);
                    } else {
                        let _ = net.stage_deactivation(u, v);
                    }
                }
                net.commit_round();
                // Forest merges, interleaved with the edge traffic the way
                // the algorithms interleave them: absorb (GraphToStar) or
                // ring-style replace/retire (the wreath engine).
                match rng.gen_range(0, 4) {
                    0 if forest.live_count() >= 2 => {
                        let live = forest.live_ids();
                        let a = live[rng.gen_range(0, live.len())];
                        let b = live[rng.gen_range(0, live.len())];
                        if a != b {
                            forest.absorb(a, b);
                        }
                    }
                    1 if forest.live_count() >= 2 => {
                        let live = forest.live_ids().to_vec();
                        let root = live[rng.gen_range(0, live.len())];
                        let child = live[rng.gen_range(0, live.len())];
                        if root != child {
                            let mut ring = forest.members(root).to_vec();
                            let cut = rng.gen_range(0, ring.len());
                            let members = forest.members(child).to_vec();
                            let mut spliced = ring[..=cut].to_vec();
                            spliced.extend_from_slice(&members);
                            spliced.extend_from_slice(&ring[cut + 1..]);
                            ring = spliced;
                            forest.replace_members(root, ring);
                            forest.retire(child);
                        }
                    }
                    _ => {}
                }
                let deltas = net.take_edge_deltas();
                let got = tracker.refresh(&forest, net.graph(), &deltas);
                let want = forest.committee_adjacency(net.graph());
                assert_eq!(
                    got, want,
                    "scenario {} seed {seed} round {round}: incremental adjacency diverged",
                    scenario.name
                );
            }
        }
    }
}

/// Drives a DST-armed network with random staged operations and
/// adversarial faults, maintaining one incremental [`ViewCache`] across
/// rounds and comparing it, field for field, against a from-scratch
/// rebuild every round — the engine's old behaviour.
#[test]
fn incremental_views_match_full_rebuild_under_faults() {
    let scenarios = [
        Scenario::failure_free(),
        Scenario::mixed().with_fault_budget(10),
        Scenario {
            per_round_probability: 0.6,
            ..Scenario::partition_heal().with_fault_budget(3)
        },
        Scenario {
            per_round_probability: 0.8,
            ..Scenario::churn().with_fault_budget(6)
        },
    ];
    for (which, scenario) in scenarios.into_iter().enumerate() {
        for seed in 0u64..6 {
            let mut rng = DetRng::seed_from_u64(0x71E3 ^ seed.wrapping_mul(97) ^ (which as u64));
            let n = 8 + rng.gen_range(0, 17);
            let initial = generators::random_line_with_chords(n, n / 2, seed);
            let uids = UidMap::new(n, UidAssignment::Sequential);
            let mut net = Network::new(initial);
            net.install_dst(DstState::new(
                Adversary::new(scenario.clone(), seed.wrapping_mul(7) + 1),
                InvariantPolicy::default(),
                (1..=n as u64).collect(),
            ));
            net.set_change_tracking(true);
            let mut cache = ViewCache::new(&net, &uids, n);
            for round in 0..50 {
                for _ in 0..rng.gen_range(0, 6) {
                    let n_now = net.node_count();
                    let u = NodeId(rng.gen_range(0, n_now));
                    let v = NodeId(rng.gen_range(0, n_now));
                    if u == v {
                        continue;
                    }
                    if rng.gen_bool(0.7) {
                        let _ = net.stage_activation(u, v);
                    } else {
                        let _ = net.stage_deactivation(u, v);
                    }
                }
                net.commit_round();
                let changed = net.take_changed_nodes();
                cache.refresh_changed(&net, &uids, &changed);
                cache.begin_round(&net);
                let mut fresh = ViewCache::new(&net, &uids, n);
                fresh.begin_round(&net);
                assert_eq!(
                    cache.views(),
                    fresh.views(),
                    "scenario {} seed {seed} round {round}: incremental views diverged",
                    scenario.name
                );
            }
        }
    }
}
