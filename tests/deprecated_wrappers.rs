//! Drift guard for the `#[deprecated]` pre-0.2 entry points: every
//! wrapper must delegate to the registry path and produce exactly the
//! outcome the `Experiment` builder produces — until the wrappers are
//! removed, they may not silently diverge.

#![allow(deprecated)]

use actively_dynamic_networks::prelude::*;

const N: usize = 32;
const SEED: u64 = 6;

fn uids() -> UidMap {
    UidMap::new(N, UidAssignment::RandomPermutation { seed: SEED })
}

fn via_experiment(algorithm: &str) -> TransformationOutcome {
    Experiment::on(generators::line(N))
        .uid_map(uids())
        .algorithm(algorithm)
        .run()
        .unwrap()
}

fn assert_same(label: &str, wrapper: &TransformationOutcome, builder: &TransformationOutcome) {
    assert_eq!(wrapper.leader, builder.leader, "{label}: leader");
    assert_eq!(wrapper.rounds, builder.rounds, "{label}: rounds");
    assert_eq!(wrapper.phases, builder.phases, "{label}: phases");
    assert_eq!(wrapper.metrics, builder.metrics, "{label}: metrics");
    assert_eq!(
        wrapper.final_graph, builder.final_graph,
        "{label}: final graph"
    );
    assert_eq!(
        wrapper.tokens_per_node, builder.tokens_per_node,
        "{label}: tokens"
    );
}

#[test]
fn run_graph_to_star_matches_builder() {
    let wrapper = run_graph_to_star(&generators::line(N), &uids()).unwrap();
    assert_same("graph_to_star", &wrapper, &via_experiment("graph_to_star"));
}

#[test]
fn run_graph_to_wreath_matches_builder() {
    let wrapper = run_graph_to_wreath(&generators::line(N), &uids()).unwrap();
    assert_same(
        "graph_to_wreath",
        &wrapper,
        &via_experiment("graph_to_wreath"),
    );
}

#[test]
fn run_graph_to_thin_wreath_matches_builder() {
    let wrapper = run_graph_to_thin_wreath(&generators::line(N), &uids()).unwrap();
    assert_same(
        "graph_to_thin_wreath",
        &wrapper,
        &via_experiment("graph_to_thin_wreath"),
    );
}

#[test]
fn run_flooding_matches_builder() {
    let wrapper = run_flooding(&generators::line(N), &uids()).unwrap();
    let builder = via_experiment("flooding");
    assert_same("flooding", &wrapper, &builder);
    // Dissemination accounting must agree too, not just the metering.
    assert_eq!(wrapper.tokens_per_node, vec![N; N]);
}

#[test]
fn run_clique_formation_matches_builder() {
    // The wrapper historically runs traced; compare against the traced
    // builder path so the traces line up as well.
    let wrapper = run_clique_formation(&generators::line(N), &uids()).unwrap();
    let builder = Experiment::on(generators::line(N))
        .uid_map(uids())
        .algorithm("clique_formation")
        .trace(TraceLevel::PerRound)
        .run()
        .unwrap();
    assert_same("clique_formation", &wrapper, &builder);
    assert_eq!(wrapper.trace, builder.trace, "clique trace drift");
}

#[test]
fn run_centralized_general_matches_builder_for_both_targets() {
    for (prune, target) in [
        (true, CentralizedConfig::PruneToTree),
        (false, CentralizedConfig::LowDiameter),
    ] {
        let wrapper = run_centralized_general(&generators::line(N), &uids(), prune).unwrap();
        let builder = Experiment::on(generators::line(N))
            .uid_map(uids())
            .algorithm("centralized_general")
            .centralized(target)
            .run()
            .unwrap();
        assert_same(
            &format!("centralized_general(prune={prune})"),
            &wrapper,
            &builder,
        );
    }
}

#[test]
fn run_cut_in_half_on_line_matches_builder() {
    // The trait entry point recovers the path order starting from the
    // smallest-index endpoint — on `generators::line` that is the natural
    // order, so the explicit-order wrapper must agree exactly.
    let order: Vec<NodeId> = (0..N).map(NodeId).collect();
    let wrapper = run_cut_in_half_on_line(&generators::line(N), &order).unwrap();
    let builder = via_experiment("centralized_cut_in_half");
    assert_same("centralized_cut_in_half", &wrapper, &builder);
}

#[test]
fn wrappers_error_like_the_registry_path() {
    // Rejections must flow through the same validation: a disconnected
    // input fails both paths with InvalidInput.
    let mut g = generators::line(6);
    g.remove_edge(NodeId(2), NodeId(3)).unwrap();
    let uids = UidMap::new(6, UidAssignment::Sequential);
    assert!(matches!(
        run_flooding(&g, &uids),
        Err(CoreError::InvalidInput { .. })
    ));
    let builder = Experiment::on(g).uid_map(uids).algorithm("flooding").run();
    assert!(matches!(builder, Err(CoreError::InvalidInput { .. })));
}
