//! Seeded property sweep over `lower_bounds.rs` and `outcome.rs`: on
//! generated instances, no measured execution may ever beat the paper's
//! proven lower bounds, and the dissemination accounting in the shared
//! outcome type must balance exactly.

use actively_dynamic_networks::prelude::*;
use adn_core::lower_bounds;
use adn_graph::rng::DetRng;

#[test]
fn no_algorithm_beats_the_line_time_lower_bound() {
    // Lemma 6.1 / D.2: any strategy solving Depth-log n Tree from a
    // spanning line needs at least `line_time_lower_bound(n)` rounds. A
    // measured round count below it would mean either the simulator
    // under-meters rounds or the bound is computed wrong.
    let mut rng = DetRng::seed_from_u64(0x10_BB);
    for _ in 0..10 {
        let n = rng.gen_range(8, 100);
        let seed = rng.next_u64() % 1000;
        let graph = generators::line(n);
        let bound = lower_bounds::line_time_lower_bound(n);
        for algorithm in registry() {
            if !algorithm.supports(&graph) {
                continue;
            }
            let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed });
            let outcome = algorithm
                .run(&graph, &uids, &RunConfig::default())
                .unwrap_or_else(|e| panic!("{} on line n={n}: {e}", algorithm.name()));
            assert!(
                outcome.rounds >= bound,
                "{} on line n={n} (seed {seed}): measured {} rounds < lower bound {bound}",
                algorithm.name(),
                outcome.rounds
            );
        }
    }
}

#[test]
fn no_reconfiguring_algorithm_beats_the_activation_lower_bound() {
    // Lemma D.3: solving Depth-log n Tree from a spanning line requires
    // at least n - 1 - 2 log n activations (flooding is exempt: it never
    // reconfigures and does not solve the problem).
    let mut rng = DetRng::seed_from_u64(0xAC7);
    for _ in 0..8 {
        let n = rng.gen_range(12, 100);
        let seed = rng.next_u64() % 1000;
        let graph = generators::line(n);
        let bound = lower_bounds::centralized_total_activation_lower_bound(n);
        for algorithm in registry() {
            if algorithm.spec().id == "flooding" || !algorithm.supports(&graph) {
                continue;
            }
            let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed });
            let outcome = algorithm
                .run(&graph, &uids, &RunConfig::default())
                .unwrap_or_else(|e| panic!("{} on line n={n}: {e}", algorithm.name()));
            assert!(
                outcome.metrics.total_activations >= bound,
                "{} on line n={n} (seed {seed}): {} activations < lower bound {bound}",
                algorithm.name(),
                outcome.metrics.total_activations
            );
        }
    }
}

#[test]
fn distributed_bound_is_respected_on_increasing_order_rings() {
    // Theorem 6.4 applies to comparison-based distributed algorithms on
    // the increasing-order ring; GraphToStar is the paper's witness.
    for n in [64usize, 128] {
        let outcome = Experiment::on(generators::ring(n))
            .uids(UidAssignment::IncreasingRing)
            .algorithm("graph_to_star")
            .run()
            .unwrap();
        let bound = lower_bounds::distributed_total_activation_lower_bound(n);
        assert!(
            outcome.metrics.total_activations >= bound,
            "n={n}: {} activations < distributed lower bound {bound}",
            outcome.metrics.total_activations
        );
    }
}

#[test]
fn flooding_token_accounting_balances_exactly() {
    // Flooding injects exactly one token per node; full dissemination
    // replicates each to all n nodes, so tokens_per_node must be the
    // constant n and sum to n² — on every generated family.
    let mut rng = DetRng::seed_from_u64(0x70_4E);
    for _ in 0..10 {
        let family = GraphFamily::ALL[rng.gen_range(0, GraphFamily::ALL.len())];
        let size = rng.gen_range(6, 48);
        let seed = rng.next_u64() % 1000;
        let graph = family.generate(size, seed);
        let n = graph.node_count();
        let outcome = Experiment::on(graph)
            .uids(UidAssignment::RandomPermutation { seed })
            .algorithm("flooding")
            .run()
            .unwrap_or_else(|e| panic!("flooding on {family} n={n}: {e}"));
        let label = format!("flooding on {family} (n={n}, seed={seed})");
        assert_eq!(outcome.tokens_per_node.len(), n, "{label}");
        assert!(
            outcome.tokens_per_node.iter().all(|&t| t == n),
            "{label}: {:?}",
            outcome.tokens_per_node
        );
        let injected = n; // one token per node
        assert_eq!(
            outcome.tokens_per_node.iter().sum::<usize>(),
            injected * n,
            "{label}: token sum does not balance"
        );
        // Flooding never touches edges; the outcome must reflect that.
        assert_eq!(outcome.metrics.total_activations, 0, "{label}");
        assert_eq!(
            outcome.final_graph.edge_count(),
            outcome.metrics.max_active_edges_total,
            "{label}"
        );
    }
}

#[test]
fn recorded_stream_accounting_matches_every_algorithms_outcome() {
    // The outcome's meters are folds of the network's round-event bus.
    // Running any registered algorithm on a recorder-armed network must
    // yield a stream whose boundary events reproduce `rounds` and
    // `total_activations` exactly, and whose edge events replayed over
    // the initial graph land on the final graph edge for edge.
    let mut rng = DetRng::seed_from_u64(0xEB_05);
    for _ in 0..4 {
        let n = rng.gen_range(8, 48);
        let seed = rng.next_u64() % 1000;
        let graph = generators::line(n);
        for algorithm in registry() {
            if !algorithm.supports(&graph) {
                continue;
            }
            let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed });
            let mut net = Network::new(graph.clone());
            net.set_event_recording(true);
            let outcome = algorithm
                .execute(&mut net, &uids, &RunConfig::default())
                .unwrap_or_else(|e| panic!("{} on line n={n}: {e}", algorithm.name()));
            let label = format!("{} on line n={n} (seed {seed})", algorithm.name());
            let mut mirror = graph.clone();
            let mut boundaries = 0usize;
            let mut idles = 0usize;
            let mut activation_sum = 0usize;
            for event in net.take_events() {
                match event {
                    RoundEvent::Edge { edge, added, .. } => {
                        let changed = if added {
                            mirror.add_edge(edge.a, edge.b)
                        } else {
                            mirror.remove_edge(edge.a, edge.b)
                        };
                        assert_eq!(changed, Ok(true), "{label}: {event:?} must mutate");
                    }
                    RoundEvent::RoundCommitted { activations, .. } => {
                        boundaries += 1;
                        activation_sum += activations;
                    }
                    RoundEvent::IdleRound => idles += 1,
                    RoundEvent::NodeJoined(_) | RoundEvent::NodeCrashed(_) => {
                        panic!("{label}: churn event {event:?} without faults")
                    }
                }
            }
            assert_eq!(outcome.rounds, boundaries + idles, "{label}: round fold");
            assert_eq!(
                outcome.metrics.total_activations, activation_sum,
                "{label}: activation fold"
            );
            assert_eq!(mirror, outcome.final_graph, "{label}: replayed mirror");
        }
    }
}

#[test]
fn flooding_recorded_stream_contains_no_edge_events() {
    // Flooding is the no-reconfiguration baseline: its recorded stream
    // must be pure round boundaries — not a single edge mutation — on
    // every generated family, matching its zero activation meter.
    let mut rng = DetRng::seed_from_u64(0xF_100D);
    for _ in 0..6 {
        let family = GraphFamily::ALL[rng.gen_range(0, GraphFamily::ALL.len())];
        let size = rng.gen_range(6, 40);
        let seed = rng.next_u64() % 1000;
        let graph = family.generate(size, seed);
        let n = graph.node_count();
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed });
        let flooding = find_algorithm("flooding").expect("flooding is registered");
        let mut net = Network::new(graph.clone());
        net.set_event_recording(true);
        let outcome = flooding
            .execute(&mut net, &uids, &RunConfig::default())
            .unwrap_or_else(|e| panic!("flooding on {family} n={n}: {e}"));
        let events = net.take_events();
        let label = format!("flooding on {family} (n={n}, seed={seed})");
        assert!(!events.is_empty(), "{label}: flooding meters rounds");
        assert!(
            events
                .iter()
                .all(|e| matches!(e, RoundEvent::RoundCommitted { .. } | RoundEvent::IdleRound)),
            "{label}: non-boundary event in {events:?}"
        );
        assert_eq!(events.len(), outcome.rounds, "{label}: one event per round");
        assert_eq!(net.graph(), &graph, "{label}: flooding never touches edges");
    }
}

#[test]
fn non_disseminating_outcomes_report_no_tokens() {
    // The shared outcome type must not leak dissemination fields into
    // transformation-only runs.
    let mut rng = DetRng::seed_from_u64(0x0E);
    for _ in 0..6 {
        let n = rng.gen_range(8, 40);
        let seed = rng.next_u64() % 1000;
        let outcome = Experiment::on(generators::random_tree(n, seed))
            .uids(UidAssignment::RandomPermutation { seed })
            .algorithm("graph_to_star")
            .run()
            .unwrap();
        assert!(outcome.tokens_per_node.is_empty());
        assert_eq!(outcome.rounds, outcome.metrics.rounds);
        assert!(outcome.dst.is_none());
    }
}
