//! Differential model tests for the asynchronous runtime.
//!
//! Three obligations of the `adn-runtime` subsystem, checked from the
//! facade so the whole public path (builder → engine dispatch → scheduler
//! → outcome) is exercised:
//!
//! 1. the seeded scheduler replays **byte-identically** from one `u64`;
//! 2. on delay-free schedules the asynchronous engine reaches the same
//!    outcome as the synchronous engine (and the tree actors the same
//!    tree as the synchronous subroutine under *any* knobs);
//! 3. Dijkstra–Scholten never declares termination with a message still
//!    in flight, across a seed sweep of adversarial delivery schedules.

use actively_dynamic_networks::core::subroutines::{
    run_line_to_tree, run_runtime_line_to_tree_seeded, LineToTreeConfig,
};
use actively_dynamic_networks::prelude::*;
use actively_dynamic_networks::runtime::flood::flood_actors;

/// The nastiest delivery schedule the seeded scheduler offers: wide
/// reorder window, per-message delays and persistently asymmetric links.
const ADVERSARIAL: AsyncKnobs = AsyncKnobs {
    reorder_window: 6,
    max_link_delay: 3,
    asymmetric_delay: true,
};

fn flood_outcome(
    family: GraphFamily,
    n: usize,
    seed: u64,
    engine: EngineMode,
) -> TransformationOutcome {
    Experiment::family(family, n, seed)
        .algorithm("flooding")
        .engine(engine)
        .run()
        .expect("flooding run")
}

#[test]
fn seeded_scheduler_replays_byte_identically() {
    for (family, n) in [
        (GraphFamily::Ring, 24),
        (GraphFamily::Grid, 25),
        (GraphFamily::RandomTree, 40),
    ] {
        for sched_seed in [0u64, 7, 0xDEAD_BEEF] {
            let a = flood_outcome(family, n, 3, EngineMode::Seeded { seed: sched_seed });
            let b = flood_outcome(family, n, 3, EngineMode::Seeded { seed: sched_seed });
            let ra = a.runtime.expect("async run carries a report");
            let rb = b.runtime.expect("async run carries a report");
            assert_eq!(
                ra.render(),
                rb.render(),
                "replay diverged: {family:?} n={n} sched_seed={sched_seed}"
            );
            assert_eq!(a.tokens_per_node, b.tokens_per_node);
            assert_eq!(a.leader, b.leader);
        }
    }
}

#[test]
fn delay_free_async_flooding_matches_the_sync_engine() {
    // With all knobs zero the seeded scheduler delivers earliest-first,
    // and flooding's token-merge is order-independent anyway — so the
    // asynchronous engine must land on exactly the synchronous outcome
    // (modulo round/step accounting, which async runs do not have).
    for (family, n) in [
        (GraphFamily::Line, 32),
        (GraphFamily::Ring, 24),
        (GraphFamily::Star, 17),
        (GraphFamily::SparseRandom, 30),
    ] {
        for graph_seed in [1u64, 12] {
            let sync = flood_outcome(family, n, graph_seed, EngineMode::Synchronous);
            let seeded = flood_outcome(family, n, graph_seed, EngineMode::Seeded { seed: 0 });
            assert_eq!(sync.leader, seeded.leader, "{family:?} n={n}");
            assert_eq!(
                sync.tokens_per_node, seeded.tokens_per_node,
                "{family:?} n={n}"
            );
            assert!(seeded.tokens_per_node.iter().all(|&t| t == n));
            assert_eq!(
                sync.final_graph.edge_count(),
                seeded.final_graph.edge_count(),
                "flooding must not reconfigure under either engine"
            );
        }
    }
}

#[test]
fn tree_actors_match_the_synchronous_subroutine_under_any_knobs() {
    // Unlike flooding, line-to-tree *does* reconfigure, and its handshake
    // is delivery-order sensitive — equality with the synchronous
    // subroutine under adversarial knobs is the real differential test.
    for (n, arity) in [(16usize, 2usize), (33, 2), (48, 3)] {
        let line: Vec<NodeId> = (0..n).map(NodeId).collect();
        let config = LineToTreeConfig {
            arity,
            protected_edges: SortedEdgeSet::new(),
        };
        let mut sync_net = Network::new(generators::line(n));
        let (sync_tree, _) = run_line_to_tree(&mut sync_net, &line, &config).unwrap();
        for sched_seed in [2u64, 41, 9999] {
            let mut net = Network::new(generators::line(n));
            let (tree, report) =
                run_runtime_line_to_tree_seeded(&mut net, &line, &config, sched_seed, ADVERSARIAL)
                    .unwrap();
            assert_eq!(
                tree, sync_tree,
                "n={n} arity={arity} sched_seed={sched_seed}"
            );
            assert_eq!(report.in_flight_at_detection, 0);
        }
    }
}

#[test]
fn termination_detection_never_fires_with_messages_in_flight() {
    // Property sweep: across many scheduler seeds and adversarial knobs,
    // Dijkstra–Scholten must only declare global quiescence when the
    // in-flight message count is exactly zero — and the computation must
    // actually be finished (every node knows every token), i.e. the
    // detector is neither unsound nor trivially late.
    let n = 20;
    let graph = generators::ring(n);
    let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 13 });
    for sched_seed in 0..64u64 {
        let mut network = Network::new(graph.clone());
        let mut actors = flood_actors(&graph, &uids);
        let report = SeededScheduler::new(sched_seed)
            .with_knobs(ADVERSARIAL)
            .run(&mut network, &mut actors)
            .expect("seeded flood run");
        assert_eq!(
            report.in_flight_at_detection, 0,
            "detector fired with messages in flight (sched_seed={sched_seed})"
        );
        assert!(
            actors.iter().all(|a| a.known().len() == n),
            "detector fired before dissemination finished (sched_seed={sched_seed})"
        );
    }
}
