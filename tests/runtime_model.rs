//! Differential model tests for the asynchronous runtime.
//!
//! Three obligations of the `adn-runtime` subsystem, checked from the
//! facade so the whole public path (builder → engine dispatch → scheduler
//! → outcome) is exercised:
//!
//! 1. the seeded scheduler replays **byte-identically** from one `u64`;
//! 2. on delay-free schedules the asynchronous engine reaches the same
//!    outcome as the synchronous engine (and the tree actors the same
//!    tree as the synchronous subroutine under *any* knobs);
//! 3. Dijkstra–Scholten never declares termination with a message still
//!    in flight, across a seed sweep of adversarial delivery schedules —
//!    including schedules where actors **crash mid-phase** with unacked
//!    sends outstanding;
//! 4. the committee algorithms (`GraphToStar`, `GraphToWreath`) reach the
//!    synchronous engine's committee structures under both asynchronous
//!    engines, on delay-free and adversarial schedules, across sizes.

use actively_dynamic_networks::core::subroutines::{
    run_line_to_tree, run_runtime_line_to_tree_seeded, run_runtime_star_faulted,
    run_runtime_wreath_faulted, LineToTreeConfig,
};
use actively_dynamic_networks::prelude::*;
use actively_dynamic_networks::runtime::flood::flood_actors;
use actively_dynamic_networks::runtime::{FaultPlan, RuntimeError};

/// The nastiest delivery schedule the seeded scheduler offers: wide
/// reorder window, per-message delays and persistently asymmetric links.
const ADVERSARIAL: AsyncKnobs = AsyncKnobs {
    reorder_window: 6,
    max_link_delay: 3,
    asymmetric_delay: true,
};

fn flood_outcome(
    family: GraphFamily,
    n: usize,
    seed: u64,
    engine: EngineMode,
) -> TransformationOutcome {
    Experiment::family(family, n, seed)
        .algorithm("flooding")
        .engine(engine)
        .run()
        .expect("flooding run")
}

#[test]
fn seeded_scheduler_replays_byte_identically() {
    for (family, n) in [
        (GraphFamily::Ring, 24),
        (GraphFamily::Grid, 25),
        (GraphFamily::RandomTree, 40),
    ] {
        for sched_seed in [0u64, 7, 0xDEAD_BEEF] {
            let a = flood_outcome(family, n, 3, EngineMode::Seeded { seed: sched_seed });
            let b = flood_outcome(family, n, 3, EngineMode::Seeded { seed: sched_seed });
            let ra = a.runtime.expect("async run carries a report");
            let rb = b.runtime.expect("async run carries a report");
            assert_eq!(
                ra.render(),
                rb.render(),
                "replay diverged: {family:?} n={n} sched_seed={sched_seed}"
            );
            assert_eq!(a.tokens_per_node, b.tokens_per_node);
            assert_eq!(a.leader, b.leader);
        }
    }
}

#[test]
fn delay_free_async_flooding_matches_the_sync_engine() {
    // With all knobs zero the seeded scheduler delivers earliest-first,
    // and flooding's token-merge is order-independent anyway — so the
    // asynchronous engine must land on exactly the synchronous outcome
    // (modulo round/step accounting, which async runs do not have).
    for (family, n) in [
        (GraphFamily::Line, 32),
        (GraphFamily::Ring, 24),
        (GraphFamily::Star, 17),
        (GraphFamily::SparseRandom, 30),
    ] {
        for graph_seed in [1u64, 12] {
            let sync = flood_outcome(family, n, graph_seed, EngineMode::Synchronous);
            let seeded = flood_outcome(family, n, graph_seed, EngineMode::Seeded { seed: 0 });
            assert_eq!(sync.leader, seeded.leader, "{family:?} n={n}");
            assert_eq!(
                sync.tokens_per_node, seeded.tokens_per_node,
                "{family:?} n={n}"
            );
            assert!(seeded.tokens_per_node.iter().all(|&t| t == n));
            assert_eq!(
                sync.final_graph.edge_count(),
                seeded.final_graph.edge_count(),
                "flooding must not reconfigure under either engine"
            );
        }
    }
}

#[test]
fn tree_actors_match_the_synchronous_subroutine_under_any_knobs() {
    // Unlike flooding, line-to-tree *does* reconfigure, and its handshake
    // is delivery-order sensitive — equality with the synchronous
    // subroutine under adversarial knobs is the real differential test.
    for (n, arity) in [(16usize, 2usize), (33, 2), (48, 3)] {
        let line: Vec<NodeId> = (0..n).map(NodeId).collect();
        let config = LineToTreeConfig {
            arity,
            protected_edges: SortedEdgeSet::new(),
        };
        let mut sync_net = Network::new(generators::line(n));
        let (sync_tree, _) = run_line_to_tree(&mut sync_net, &line, &config).unwrap();
        for sched_seed in [2u64, 41, 9999] {
            let mut net = Network::new(generators::line(n));
            let (tree, report) =
                run_runtime_line_to_tree_seeded(&mut net, &line, &config, sched_seed, ADVERSARIAL)
                    .unwrap();
            assert_eq!(
                tree, sync_tree,
                "n={n} arity={arity} sched_seed={sched_seed}"
            );
            assert_eq!(report.in_flight_at_detection, 0);
        }
    }
}

/// The committee sizes the differential gate runs at, with a cheap
/// family per size so the adversarial sweeps stay fast.
const COMMITTEE_CASES: [(GraphFamily, usize); 3] = [
    (GraphFamily::SparseRandom, 8),
    (GraphFamily::SparseRandom, 64),
    (GraphFamily::Ring, 256),
];

fn committee_outcome(
    algorithm: &str,
    family: GraphFamily,
    n: usize,
    seed: u64,
    engine: EngineMode,
) -> TransformationOutcome {
    Experiment::family(family, n, seed)
        .algorithm(algorithm)
        .engine(engine)
        .run()
        .unwrap_or_else(|e| panic!("{algorithm} on {family:?} n={n} under {engine:?}: {e}"))
}

#[test]
fn delay_free_async_committees_match_the_sync_engine() {
    // The real tentpole gate: GraphToStar and GraphToWreath reconfigure
    // heavily, and their committee bookkeeping (selection, merging,
    // ring splicing) now runs message-driven. On delay-free schedules
    // the asynchronous engines must land on exactly the synchronous
    // committee structures — final graph, leader, phase count and the
    // per-phase committee census.
    for algorithm in ["graph_to_star", "graph_to_wreath"] {
        for (family, n) in COMMITTEE_CASES {
            let sync = committee_outcome(algorithm, family, n, 5, EngineMode::Synchronous);
            let seeded = committee_outcome(algorithm, family, n, 5, EngineMode::Seeded { seed: 0 });
            let label = format!("{algorithm} on {family:?} n={n}");
            assert_eq!(seeded.leader, sync.leader, "{label}");
            assert_eq!(seeded.final_graph, sync.final_graph, "{label}");
            assert_eq!(seeded.phases, sync.phases, "{label}");
            assert_eq!(
                seeded.committees_per_phase, sync.committees_per_phase,
                "{label}"
            );
            assert_eq!(
                seeded
                    .runtime
                    .as_ref()
                    .expect("async runs carry a report")
                    .in_flight_at_detection,
                0,
                "{label}"
            );
            // The free engine is timing-nondeterministic but must still
            // produce the same committee structures (the decision rules
            // are order-independent). One size per algorithm keeps the
            // thread churn modest.
            if n == 64 {
                let free =
                    committee_outcome(algorithm, family, n, 5, EngineMode::Free { threads: 4 });
                assert_eq!(free.final_graph, sync.final_graph, "{label} (free)");
                assert_eq!(
                    free.committees_per_phase, sync.committees_per_phase,
                    "{label} (free)"
                );
            }
        }
    }
}

#[test]
fn adversarial_schedules_do_not_change_committee_outcomes() {
    // Reordered, delayed and asymmetric delivery must not change what the
    // committee algorithms build: every mini-phase decision is made on a
    // complete (quiesced) message set or by an order-independent rule.
    for (family, n) in COMMITTEE_CASES {
        let graph = family.generate(n, 9);
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 9 });
        let star_sync = GraphToStar
            .run(&graph, &uids, &RunConfig::default())
            .expect("sync star");
        let wreath_sync = GraphToWreath
            .run(&graph, &uids, &RunConfig::default())
            .expect("sync wreath");
        for sched_seed in [1u64, 58] {
            let label = format!("{family:?} n={n} sched_seed={sched_seed}");
            let mut network = Network::new(graph.clone());
            let star = run_runtime_star_faulted(
                &mut network,
                &uids,
                &RunConfig::default().with_engine(EngineMode::Seeded { seed: sched_seed }),
                sched_seed,
                ADVERSARIAL,
                &FaultPlan::default(),
            )
            .unwrap_or_else(|e| panic!("star {label}: {e}"));
            assert_eq!(star.final_graph, star_sync.final_graph, "star {label}");
            assert_eq!(
                star.committees_per_phase, star_sync.committees_per_phase,
                "star {label}"
            );
            let mut network = Network::new(graph.clone());
            let wreath = run_runtime_wreath_faulted(
                &mut network,
                &uids,
                &WreathConfig::binary(),
                &RunConfig::default().with_engine(EngineMode::Seeded { seed: sched_seed }),
                sched_seed,
                ADVERSARIAL,
                &FaultPlan::default(),
            )
            .unwrap_or_else(|e| panic!("wreath {label}: {e}"));
            assert_eq!(
                wreath.final_graph, wreath_sync.final_graph,
                "wreath {label}"
            );
            assert_eq!(
                wreath.committees_per_phase, wreath_sync.committees_per_phase,
                "wreath {label}"
            );
        }
    }
}

#[test]
fn committee_runs_replay_byte_identically() {
    // The committee algorithms' seeded runs — including the wreath's
    // nested line-to-tree rebuilds, whose sub-seeds are split from the
    // master seed — must render byte-identical reports on replay.
    for algorithm in ["graph_to_star", "graph_to_wreath"] {
        for sched_seed in [0u64, 7, 0xDEAD_BEEF] {
            let engine = EngineMode::Seeded { seed: sched_seed };
            let a = committee_outcome(algorithm, GraphFamily::Grid, 25, 3, engine);
            let b = committee_outcome(algorithm, GraphFamily::Grid, 25, 3, engine);
            assert_eq!(
                a.runtime.expect("report").render(),
                b.runtime.expect("report").render(),
                "{algorithm} replay diverged at sched_seed={sched_seed}"
            );
            assert_eq!(a.final_graph, b.final_graph);
        }
    }
}

#[test]
fn ds_accounting_stays_sound_when_actors_crash_mid_phase() {
    // 64-seed sweep with a crash armed mid-run: the crashed actor holds
    // unacked sends (its deficit is forgiven and its mail acked by the
    // scheduler on its behalf), so the detector must neither hang waiting
    // for a dead node's acks nor fire while live-destined messages are in
    // flight. The tight step budget turns any hang into a fast, clean
    // `DidNotQuiesce` failure instead of a test timeout.
    let n = 20;
    let graph = generators::ring(n);
    let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 13 });
    for sched_seed in 0..64u64 {
        let crash_node = NodeId((sched_seed as usize * 7) % n);
        let crash_step = 5 + (sched_seed as usize * 11) % 60;
        let plan = FaultPlan::new().crash_at(crash_step, crash_node);
        let mut network = Network::new(graph.clone());
        let mut actors = flood_actors(&graph, &uids);
        let report = SeededScheduler::new(sched_seed)
            .with_knobs(ADVERSARIAL)
            .with_max_steps(500_000)
            .run_phased_with_faults(&mut network, &mut actors, &plan, |_, _, phase| {
                Ok::<bool, RuntimeError>(phase == 0)
            })
            .unwrap_or_else(|e| {
                panic!("crashed run must still quiesce (sched_seed={sched_seed}): {e}")
            });
        assert_eq!(
            report.in_flight_at_detection, 0,
            "detector fired with live messages in flight (sched_seed={sched_seed})"
        );
        assert!(
            network.is_crashed(crash_node),
            "crash did not land (sched_seed={sched_seed})"
        );
    }
}

#[test]
fn armed_crash_during_committee_run_is_deterministic_and_clean() {
    // Seeded regression for the fault-armed committee path: a crash
    // delivered through the scheduler mid-execution either lets the
    // protocol complete (the node was no longer needed) or surfaces as a
    // clean CoreError — never a panic, never a hang — and the whole
    // faulted execution replays deterministically.
    let n = 16;
    let graph = GraphFamily::SparseRandom.generate(n, 21);
    let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 21 });
    // A clean run of this instance takes 1378 delivery steps regardless of
    // the schedule (delivery count is order-invariant); spreading the
    // crash over the back half of the run makes some schedules survive it
    // and others degrade, so both result paths stay exercised.
    let run = |sched_seed: u64| {
        let crash_step = 700 + (sched_seed as usize * 97) % 700;
        let plan = FaultPlan::new().crash_at(crash_step, NodeId(3));
        let mut network = Network::new(graph.clone());
        let crashed = run_runtime_star_faulted(
            &mut network,
            &uids,
            &RunConfig::default().with_engine(EngineMode::Seeded { seed: sched_seed }),
            sched_seed,
            ADVERSARIAL,
            &plan,
        )
        .map(|o| {
            (
                o.leader,
                o.phases,
                o.runtime
                    .expect("faulted seeded runs carry a report")
                    .render(),
            )
        })
        .map_err(|e| e.to_string());
        (crashed, network.is_crashed(NodeId(3)))
    };
    let (mut survived_crash, mut failed_clean) = (0, 0);
    for sched_seed in 0..16u64 {
        let first = run(sched_seed);
        let second = run(sched_seed);
        assert_eq!(
            first, second,
            "faulted committee run diverged on replay (sched_seed={sched_seed})"
        );
        match first {
            (Ok(_), true) => survived_crash += 1,
            (Ok(_), false) => {} // crash step fell past the run's end
            (Err(_), _) => failed_clean += 1,
        }
    }
    // The sweep must actually exercise both halves of the armed-crash
    // path: schedules that absorb a landed crash and complete, and
    // schedules where the crash degrades the protocol into a clean error.
    assert!(survived_crash > 0, "no schedule survived a landed crash");
    assert!(failed_clean > 0, "no schedule degraded into a clean error");
}

#[test]
fn termination_detection_never_fires_with_messages_in_flight() {
    // Property sweep: across many scheduler seeds and adversarial knobs,
    // Dijkstra–Scholten must only declare global quiescence when the
    // in-flight message count is exactly zero — and the computation must
    // actually be finished (every node knows every token), i.e. the
    // detector is neither unsound nor trivially late.
    let n = 20;
    let graph = generators::ring(n);
    let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 13 });
    for sched_seed in 0..64u64 {
        let mut network = Network::new(graph.clone());
        let mut actors = flood_actors(&graph, &uids);
        let report = SeededScheduler::new(sched_seed)
            .with_knobs(ADVERSARIAL)
            .run(&mut network, &mut actors)
            .expect("seeded flood run");
        assert_eq!(
            report.in_flight_at_detection, 0,
            "detector fired with messages in flight (sched_seed={sched_seed})"
        );
        assert!(
            actors.iter().all(|a| a.known().len() == n),
            "detector fired before dissemination finished (sched_seed={sched_seed})"
        );
    }
}
