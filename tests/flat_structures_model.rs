//! Differential property suite for the flat data path.
//!
//! The graph core stores adjacency as per-node sorted `Vec<NodeId>` and
//! the network stages rounds as sorted edge columns. These tests pin both
//! against straightforward `BTreeSet`-based reference models — the
//! representation the seed used — under seeded random operation
//! sequences (add_edge / remove_edge / add_node / stage / commit), so any
//! divergence in contents, iteration order, counters or round summaries
//! is caught with the seed that reproduces it.

use actively_dynamic_networks::graph::rng::DetRng;
use actively_dynamic_networks::graph::{generators, Edge, Graph, NodeId};
use actively_dynamic_networks::sim::{Network, WaveActivation};
use std::collections::{BTreeMap, BTreeSet};

/// The old adjacency representation, kept as an executable specification.
struct ModelGraph {
    adjacency: Vec<BTreeSet<NodeId>>,
    edges: BTreeSet<(NodeId, NodeId)>,
}

impl ModelGraph {
    fn new(n: usize) -> Self {
        ModelGraph {
            adjacency: vec![BTreeSet::new(); n],
            edges: BTreeSet::new(),
        }
    }

    fn canon(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        (u.min(v), u.max(v))
    }

    fn add_node(&mut self) -> NodeId {
        self.adjacency.push(BTreeSet::new());
        NodeId(self.adjacency.len() - 1)
    }

    fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let inserted = self.adjacency[u.index()].insert(v);
        self.adjacency[v.index()].insert(u);
        if inserted {
            self.edges.insert(Self::canon(u, v));
        }
        inserted
    }

    fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let removed = self.adjacency[u.index()].remove(&v);
        self.adjacency[v.index()].remove(&u);
        if removed {
            self.edges.remove(&Self::canon(u, v));
        }
        removed
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency
            .get(u.index())
            .is_some_and(|a| a.contains(&v))
    }

    fn potential_neighbors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = BTreeSet::new();
        for &v in &self.adjacency[u.index()] {
            for &w in &self.adjacency[v.index()] {
                if w != u && !self.has_edge(u, w) {
                    out.insert(w);
                }
            }
        }
        out.into_iter().collect()
    }
}

fn assert_same_state(graph: &Graph, model: &ModelGraph, seed: u64, step: usize) {
    let n = model.adjacency.len();
    assert_eq!(graph.node_count(), n, "seed {seed} step {step}: node count");
    assert_eq!(
        graph.edge_count(),
        model.edges.len(),
        "seed {seed} step {step}: edge count"
    );
    assert!(
        graph.check_invariants(),
        "seed {seed} step {step}: invariants"
    );
    for u in (0..n).map(NodeId) {
        let got: Vec<NodeId> = graph.neighbors(u).collect();
        let expect: Vec<NodeId> = model.adjacency[u.index()].iter().copied().collect();
        assert_eq!(
            got, expect,
            "seed {seed} step {step}: neighbours of {u} (order included)"
        );
        assert_eq!(graph.neighbors_slice(u), &expect[..]);
        assert_eq!(graph.degree(u), expect.len());
    }
}

#[test]
fn graph_matches_btreeset_model_under_random_ops() {
    for seed in 0u64..12 {
        let mut rng = DetRng::seed_from_u64(0x9A4F ^ seed.wrapping_mul(0x1234_5679));
        let mut n = 2 + rng.gen_range(0, 14);
        let mut graph = Graph::new(n);
        let mut model = ModelGraph::new(n);
        for step in 0..400 {
            match rng.gen_range(0, 100) {
                // Mostly edge insertions so the graphs stay interesting.
                0..=54 => {
                    let u = NodeId(rng.gen_range(0, n));
                    let v = NodeId(rng.gen_range(0, n));
                    if u == v {
                        assert!(graph.add_edge(u, v).is_err());
                        continue;
                    }
                    assert_eq!(
                        graph.add_edge(u, v).unwrap(),
                        model.add_edge(u, v),
                        "seed {seed} step {step}: add {u}-{v}"
                    );
                }
                55..=84 => {
                    let u = NodeId(rng.gen_range(0, n));
                    let v = NodeId(rng.gen_range(0, n));
                    if u == v {
                        continue;
                    }
                    assert_eq!(
                        graph.remove_edge(u, v).unwrap(),
                        model.remove_edge(u, v),
                        "seed {seed} step {step}: remove {u}-{v}"
                    );
                }
                85..=92 => {
                    assert_eq!(graph.add_node(), model.add_node());
                    n += 1;
                }
                _ => {
                    // Read-path probes: membership, N2, witnesses.
                    let u = NodeId(rng.gen_range(0, n));
                    let v = NodeId(rng.gen_range(0, n));
                    assert_eq!(graph.has_edge(u, v), model.has_edge(u, v));
                    assert_eq!(
                        graph.potential_neighbors(u),
                        model.potential_neighbors(u),
                        "seed {seed} step {step}: N2({u})"
                    );
                    if u != v {
                        assert_eq!(
                            graph.at_distance_two(u, v),
                            !model.has_edge(u, v) && model.potential_neighbors(u).contains(&v)
                        );
                    }
                }
            }
        }
        assert_same_state(&graph, &model, seed, 400);
    }
}

#[test]
fn graph_batch_ops_match_single_edge_model() {
    for seed in 0u64..8 {
        let mut rng = DetRng::seed_from_u64(0xBA7C4 ^ seed.wrapping_mul(31));
        let n = 6 + rng.gen_range(0, 26);
        let mut batched = Graph::new(n);
        let mut singles = Graph::new(n);
        for _round in 0..40 {
            // Draw a set-semantics batch (sorted, deduplicated).
            let mut batch: BTreeSet<Edge> = BTreeSet::new();
            for _ in 0..rng.gen_range(0, 9) {
                let u = rng.gen_range(0, n);
                let mut v = rng.gen_range(0, n - 1);
                if v >= u {
                    v += 1;
                }
                batch.insert(Edge::new(NodeId(u), NodeId(v)));
            }
            let batch: Vec<Edge> = batch.into_iter().collect();
            if rng.gen_bool(0.6) {
                let mut from_batch = Vec::new();
                batched.add_edges_batch(&batch, |e| from_batch.push(e));
                let mut from_singles = Vec::new();
                for e in &batch {
                    if singles.add_edge(e.a, e.b).unwrap() {
                        from_singles.push(*e);
                    }
                }
                assert_eq!(from_batch, from_singles, "seed {seed}: fresh edges");
            } else {
                let mut from_batch = Vec::new();
                batched.remove_edges_batch(&batch, |e| from_batch.push(e));
                let mut from_singles = Vec::new();
                for e in &batch {
                    if singles.remove_edge(e.a, e.b).unwrap() {
                        from_singles.push(*e);
                    }
                }
                assert_eq!(from_batch, from_singles, "seed {seed}: removed edges");
            }
            assert_eq!(batched, singles, "seed {seed}: state diverged");
            assert!(batched.check_invariants());
        }
    }
}

/// Reference model of the network's round staging: `BTreeSet` columns,
/// set-difference activated-edge accounting — the seed's representation.
struct ModelStaging {
    initial: BTreeSet<(NodeId, NodeId)>,
    current: BTreeSet<(NodeId, NodeId)>,
    staged_act: BTreeSet<(NodeId, NodeId)>,
    staged_deact: BTreeSet<(NodeId, NodeId)>,
    staged_by_node: BTreeMap<NodeId, usize>,
    max_node_activations: usize,
    total_activations: usize,
    total_deactivations: usize,
}

impl ModelStaging {
    fn new(initial: &Graph) -> Self {
        let edges: BTreeSet<(NodeId, NodeId)> = initial.edges().map(|e| (e.a, e.b)).collect();
        ModelStaging {
            initial: edges.clone(),
            current: edges,
            staged_act: BTreeSet::new(),
            staged_deact: BTreeSet::new(),
            staged_by_node: BTreeMap::new(),
            max_node_activations: 0,
            total_activations: 0,
            total_deactivations: 0,
        }
    }

    fn canon(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        (u.min(v), u.max(v))
    }

    fn stage_activation(&mut self, u: NodeId, v: NodeId) -> bool {
        let newly = self.staged_act.insert(Self::canon(u, v));
        if newly {
            *self.staged_by_node.entry(u).or_insert(0) += 1;
        }
        newly
    }

    fn stage_deactivation(&mut self, u: NodeId, v: NodeId) -> bool {
        self.staged_deact.insert(Self::canon(u, v))
    }

    fn commit(&mut self) -> (usize, usize, usize) {
        let conflicted: Vec<_> = self
            .staged_act
            .intersection(&self.staged_deact)
            .copied()
            .collect();
        for e in conflicted {
            self.staged_act.remove(&e);
            self.staged_deact.remove(&e);
        }
        let activations = self.staged_act.len();
        let deactivations = self.staged_deact.len();
        for e in std::mem::take(&mut self.staged_act) {
            self.current.insert(e);
        }
        for e in std::mem::take(&mut self.staged_deact) {
            self.current.remove(&e);
        }
        self.total_activations += activations;
        self.total_deactivations += deactivations;
        self.max_node_activations = self
            .max_node_activations
            .max(self.staged_by_node.values().copied().max().unwrap_or(0));
        self.staged_by_node.clear();
        let activated_now = self.current.difference(&self.initial).count();
        (activations, deactivations, activated_now)
    }

    fn activated_degree(&self, u: NodeId) -> usize {
        self.current
            .difference(&self.initial)
            .filter(|&&(a, b)| a == u || b == u)
            .count()
    }
}

#[test]
fn network_staging_matches_btreeset_model_under_random_ops() {
    for seed in 0u64..10 {
        let mut rng = DetRng::seed_from_u64(0x57A6E ^ seed.wrapping_mul(97));
        let n = 8 + rng.gen_range(0, 17);
        let initial = generators::random_line_with_chords(n, n / 2, seed);
        let mut net = Network::new(initial.clone());
        let mut model = ModelStaging::new(&initial);
        for round in 0..60 {
            for _ in 0..rng.gen_range(0, 7) {
                let u = NodeId(rng.gen_range(0, n));
                let v = NodeId(rng.gen_range(0, n));
                if u == v {
                    continue;
                }
                if rng.gen_bool(0.65) {
                    // The network validates distance-2; mirror only the
                    // stages it accepts.
                    if let Ok(newly) = net.stage_activation(u, v) {
                        if net.graph().has_edge(u, v) {
                            assert!(!newly, "active edge stages are no-ops");
                        } else {
                            assert_eq!(
                                newly,
                                model.stage_activation(u, v),
                                "seed {seed} round {round}: stage {u}-{v}"
                            );
                        }
                    }
                } else if net.graph().has_edge(u, v) {
                    assert_eq!(
                        net.stage_deactivation(u, v).unwrap(),
                        model.stage_deactivation(u, v),
                        "seed {seed} round {round}: unstage {u}-{v}"
                    );
                }
            }
            let summary = net.commit_round();
            let (activations, deactivations, activated_now) = model.commit();
            assert_eq!(
                summary.activations, activations,
                "seed {seed} round {round}"
            );
            assert_eq!(
                summary.deactivations, deactivations,
                "seed {seed} round {round}"
            );
            assert_eq!(
                summary.activated_edges_now, activated_now,
                "seed {seed} round {round}"
            );
            assert_eq!(net.activated_edge_count(), activated_now);
            let current_edges: BTreeSet<(NodeId, NodeId)> =
                net.graph().edges().map(|e| (e.a, e.b)).collect();
            assert_eq!(
                current_edges, model.current,
                "seed {seed} round {round}: snapshot edge set"
            );
            for u in (0..n).map(NodeId) {
                assert_eq!(
                    net.activated_degree(u),
                    model.activated_degree(u),
                    "seed {seed} round {round}: activated degree of {u}"
                );
            }
        }
        assert_eq!(net.metrics().total_activations, model.total_activations);
        assert_eq!(net.metrics().total_deactivations, model.total_deactivations);
        assert_eq!(
            net.metrics().max_node_activations_in_round,
            model.max_node_activations
        );
        assert!(net.graph().check_invariants());
    }
}

/// Arena-stressing differential: hub-heavy seeded op sequences that force
/// block overflow relocations and periodic compactions (the small random
/// graphs above rarely cross the dead-slot threshold), interleaved with
/// crash severs (`remove_incident_edges`), churn `add_node` and batch
/// edits — all pinned against the `BTreeSet` reference.
#[test]
fn arena_relocation_and_compaction_match_model_under_churn() {
    for seed in 0u64..8 {
        let mut rng = DetRng::seed_from_u64(0xC0FFEE ^ seed.wrapping_mul(0x5851_F42D));
        let mut n = 48 + rng.gen_range(0, 32);
        let mut graph = Graph::new(n);
        let mut model = ModelGraph::new(n);
        // A handful of hub nodes receive most insertions, so their blocks
        // overflow repeatedly and strand dead capacity behind them.
        let hubs: Vec<usize> = (0..4).map(|_| rng.gen_range(0, n)).collect();
        let mut compactions_seen = 0usize;
        let mut last_dead = graph.dead_slots();
        for step in 0..1200 {
            match rng.gen_range(0, 100) {
                0..=59 => {
                    let u = if rng.gen_bool(0.7) {
                        hubs[rng.gen_range(0, hubs.len())]
                    } else {
                        rng.gen_range(0, n)
                    };
                    let v = rng.gen_range(0, n);
                    if u == v {
                        continue;
                    }
                    let (u, v) = (NodeId(u), NodeId(v));
                    assert_eq!(
                        graph.add_edge(u, v).unwrap(),
                        model.add_edge(u, v),
                        "seed {seed} step {step}: add {u}-{v}"
                    );
                }
                60..=79 => {
                    let u = NodeId(rng.gen_range(0, n));
                    let v = NodeId(rng.gen_range(0, n));
                    if u == v {
                        continue;
                    }
                    assert_eq!(
                        graph.remove_edge(u, v).unwrap(),
                        model.remove_edge(u, v),
                        "seed {seed} step {step}: remove {u}-{v}"
                    );
                }
                80..=87 => {
                    // Crash sever: drop every incident edge of one node.
                    let u = NodeId(rng.gen_range(0, n));
                    let mut severed = Vec::new();
                    graph
                        .remove_incident_edges(u, |e| severed.push(e))
                        .expect("sever on a healthy graph");
                    let neighbors: Vec<NodeId> =
                        model.adjacency[u.index()].iter().copied().collect();
                    for &v in &neighbors {
                        model.remove_edge(u, v);
                    }
                    assert_eq!(
                        severed.len(),
                        neighbors.len(),
                        "seed {seed} step {step}: severed degree of {u}"
                    );
                }
                88..=93 => {
                    assert_eq!(graph.add_node(), model.add_node());
                    n += 1;
                }
                _ => {
                    // Batch round: disjoint fresh adds applied as one merge.
                    let mut batch: BTreeSet<Edge> = BTreeSet::new();
                    for _ in 0..rng.gen_range(2, 24) {
                        let u = rng.gen_range(0, n);
                        let v = rng.gen_range(0, n);
                        if u != v {
                            batch.insert(Edge::new(NodeId(u), NodeId(v)));
                        }
                    }
                    let batch: Vec<Edge> = batch.into_iter().collect();
                    let mut from_batch = Vec::new();
                    graph.add_edges_batch(&batch, |e| from_batch.push(e));
                    for e in &batch {
                        model.add_edge(e.a, e.b);
                    }
                }
            }
            // Dead slots only ever decrease at a compaction (relocations
            // add them, nothing else touches the counter), so a drop
            // between steps is positive proof one ran. A batch step may
            // compact and then relocate again, so `dead` need not be zero
            // afterwards — but it must stay under the trigger ratio.
            let dead_now = graph.dead_slots();
            if dead_now < last_dead {
                compactions_seen += 1;
                assert!(
                    dead_now * 4 < graph.arena_slots().max(1) + 4,
                    "seed {seed} step {step}: post-compaction dead space \
                     still above the trigger ratio"
                );
            }
            last_dead = dead_now;
            if step % 97 == 0 {
                assert_same_state(&graph, &model, seed, step);
            }
        }
        assert_same_state(&graph, &model, seed, 1200);
        assert!(
            compactions_seen > 0,
            "seed {seed}: workload never triggered a compaction — \
             thresholds changed or the hubs are too small"
        );
        // Footprint sanity: the arena never hoards more than the columns
        // plus capacity doubling can explain.
        assert!(graph.memory_footprint_bytes() > 0);
        let mut explicit = graph.clone();
        explicit.compact();
        assert_eq!(explicit, graph, "compaction is semantics-preserving");
        assert_eq!(explicit.dead_slots(), 0);
    }
}

/// Sharded-vs-serial `commit_round` equivalence under mixed fault
/// schedules: same seeded waves, same crash/join faults, every observable
/// compared per round for several worker counts.
#[test]
fn sharded_commit_matches_serial_under_mixed_faults() {
    for seed in 0u64..6 {
        for threads in [2usize, 3, 8] {
            let mut rng = DetRng::seed_from_u64(0xD15C0 ^ seed.wrapping_mul(1299709));
            let n = 600 + rng.gen_range(0, 200);
            let initial = generators::star(n);
            let mut serial = Network::new(initial.clone());
            let mut sharded = Network::new(initial);
            sharded.set_commit_threads(threads);
            serial.set_edge_delta_tracking(true);
            sharded.set_edge_delta_tracking(true);
            for round in 0..12 {
                // Large leaf-to-leaf waves through the hub witness keep the
                // batch above the sharding threshold most rounds.
                let wave: Vec<WaveActivation> = (0..rng.gen_range(300, 900))
                    .map(|_| {
                        let u = 1 + rng.gen_range(0, n - 1);
                        let v = 1 + rng.gen_range(0, n - 1);
                        (u, v)
                    })
                    .filter(|&(u, v)| u != v)
                    .map(|(u, v)| WaveActivation {
                        initiator: NodeId(u),
                        target: NodeId(v),
                        witness: NodeId(0),
                    })
                    .collect();
                let drops: Vec<Edge> = (0..rng.gen_range(0, 120))
                    .map(|_| {
                        let u = 1 + rng.gen_range(0, n - 1);
                        let v = 1 + rng.gen_range(0, n - 1);
                        (u, v)
                    })
                    .filter(|&(u, v)| u != v)
                    .map(|(u, v)| Edge::new(NodeId(u), NodeId(v)))
                    .collect();
                let a = serial.stage_jump_wave(&wave, &drops);
                let b = sharded.stage_jump_wave(&wave, &drops);
                assert_eq!(
                    a.is_ok(),
                    b.is_ok(),
                    "seed {seed} threads {threads} round {round}: staging"
                );
                // Mixed fault schedule: mid-round crashes (dropping staged
                // edges of the crashed endpoint at commit) and churn joins.
                if rng.gen_bool(0.4) {
                    let victim = NodeId(rng.gen_range(0, n));
                    assert_eq!(
                        serial.inject_crash(victim),
                        sharded.inject_crash(victim),
                        "seed {seed} threads {threads} round {round}: crash"
                    );
                }
                if rng.gen_bool(0.25) {
                    assert_eq!(serial.inject_join(), sharded.inject_join());
                }
                assert_eq!(
                    serial.commit_round(),
                    sharded.commit_round(),
                    "seed {seed} threads {threads} round {round}: summary"
                );
                assert_eq!(
                    serial.graph(),
                    sharded.graph(),
                    "seed {seed} threads {threads} round {round}: snapshot"
                );
                assert_eq!(
                    serial.take_edge_deltas(),
                    sharded.take_edge_deltas(),
                    "seed {seed} threads {threads} round {round}: deltas"
                );
            }
            assert_eq!(serial.metrics(), sharded.metrics());
            assert!(sharded.graph().check_invariants());
        }
    }
}

/// Regression (seeded): a crash severing a hub right at the compaction
/// threshold, with the next committed wave triggering the compaction
/// mid-schedule. The old per-node `Vec` representation had no compaction
/// to get wrong; the arena must relocate and compact without panicking,
/// on the serial and the sharded path alike, with identical results.
#[test]
fn crash_landing_at_compaction_boundary_stays_sound() {
    for seed in 0u64..4 {
        let mut rng = DetRng::seed_from_u64(0xDEAD ^ seed.wrapping_mul(7919));
        let n = 1024usize;
        let mut serial = Network::new(generators::star(n));
        let mut sharded = Network::new(generators::star(n));
        sharded.set_commit_threads(4);
        for round in 0..6 {
            let wave: Vec<WaveActivation> = (0..700)
                .map(|_| {
                    let u = 1 + rng.gen_range(0, n - 1);
                    let v = 1 + rng.gen_range(0, n - 1);
                    (u, v)
                })
                .filter(|&(u, v)| u != v)
                .map(|(u, v)| WaveActivation {
                    initiator: NodeId(u),
                    target: NodeId(v),
                    witness: NodeId(0),
                })
                .collect();
            // Before the crash every activation is witnessed by the hub and
            // staging succeeds. After it, the hub is edgeless, so staging may
            // stop at a pair with no surviving common neighbour — the two
            // networks must fail at the same entry and keep the identical
            // partially-staged wave, which the commit below still applies.
            let staged_serial = serial.stage_jump_wave(&wave, &[]);
            let staged_sharded = sharded.stage_jump_wave(&wave, &[]);
            assert_eq!(
                staged_serial, staged_sharded,
                "seed {seed} round {round}: staging outcome"
            );
            if round < 3 {
                staged_serial.expect("pre-crash staging is hub-witnessed");
            }
            if round == 2 {
                // Crash the hub: its (huge) block empties in place, which
                // puts the arena deep into dead-slot territory; the next
                // committed wave's relocations must compact safely while
                // the schedule is mid-flight.
                assert_eq!(
                    serial.inject_crash(NodeId(0)),
                    sharded.inject_crash(NodeId(0))
                );
            }
            assert_eq!(serial.commit_round(), sharded.commit_round());
            assert_eq!(serial.graph(), sharded.graph());
            assert!(
                serial.graph().check_invariants(),
                "seed {seed} round {round}"
            );
        }
    }
}
