//! Differential tests: two configuration paths that are documented to be
//! equivalent must produce *identical* outcomes, not just outcomes within
//! the same bounds. Guards against the default-engine and override paths
//! silently drifting apart.

use actively_dynamic_networks::prelude::*;

const SEEDS: [u64; 2] = [5, 23];
const SIZE: usize = 28;

fn assert_outcomes_identical(label: &str, a: &TransformationOutcome, b: &TransformationOutcome) {
    assert_eq!(a.leader, b.leader, "{label}: leader");
    assert_eq!(a.rounds, b.rounds, "{label}: rounds");
    assert_eq!(a.phases, b.phases, "{label}: phases");
    assert_eq!(a.metrics, b.metrics, "{label}: metrics");
    assert_eq!(a.final_graph, b.final_graph, "{label}: final graph");
    assert_eq!(
        a.committees_per_phase, b.committees_per_phase,
        "{label}: committee decay"
    );
}

#[test]
fn graph_to_wreath_default_engine_matches_explicit_binary_override() {
    // GraphToWreath's default engine is WreathConfig::binary(); passing
    // the same configuration explicitly through the RunConfig override
    // must be indistinguishable on every workload family.
    for family in GraphFamily::ALL {
        for seed in SEEDS {
            let graph = family.generate(SIZE, seed);
            let label = format!("graph_to_wreath on {family} (seed {seed})");
            let default_run = Experiment::on(graph.clone())
                .uids(UidAssignment::RandomPermutation { seed })
                .algorithm("graph_to_wreath")
                .run()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let override_run = Experiment::on(graph)
                .uids(UidAssignment::RandomPermutation { seed })
                .algorithm("graph_to_wreath")
                .wreath_config(WreathConfig::binary())
                .run()
                .unwrap_or_else(|e| panic!("{label} (override): {e}"));
            assert_outcomes_identical(&label, &default_run, &override_run);
        }
    }
}

#[test]
fn graph_to_thin_wreath_default_engine_matches_explicit_polylog_override() {
    for family in GraphFamily::ALL {
        for seed in SEEDS {
            let graph = family.generate(SIZE, seed);
            let n = graph.node_count();
            let label = format!("graph_to_thin_wreath on {family} (seed {seed})");
            let default_run = Experiment::on(graph.clone())
                .uids(UidAssignment::RandomPermutation { seed })
                .algorithm("graph_to_thin_wreath")
                .run()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let override_run = Experiment::on(graph)
                .uids(UidAssignment::RandomPermutation { seed })
                .algorithm("graph_to_thin_wreath")
                .wreath_config(WreathConfig::polylog(n))
                .run()
                .unwrap_or_else(|e| panic!("{label} (override): {e}"));
            assert_outcomes_identical(&label, &default_run, &override_run);
        }
    }
}

#[test]
fn wreath_override_on_the_wrong_algorithm_is_still_deterministic() {
    // Cross-check: feeding the thin-wreath gadget to GraphToWreath (an
    // ablation users can express) yields a run identical to
    // GraphToThinWreath with the same gadget — the engine, not the
    // algorithm wrapper, defines the behavior.
    let graph = generators::ring(SIZE);
    let n = graph.node_count();
    let uids = UidAssignment::RandomPermutation { seed: 5 };
    let via_wreath = Experiment::on(graph.clone())
        .uids(uids)
        .algorithm("graph_to_wreath")
        .wreath_config(WreathConfig::polylog(n))
        .run()
        .unwrap();
    let via_thin = Experiment::on(graph)
        .uids(uids)
        .algorithm("graph_to_thin_wreath")
        .run()
        .unwrap();
    assert_outcomes_identical("polylog gadget via either wrapper", &via_wreath, &via_thin);
}
