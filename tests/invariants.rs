//! Property-style tests over random connected networks and random UID
//! assignments: the paper's correctness and complexity invariants must
//! hold on every instance, not just the hand-picked ones.
//!
//! Instances are drawn from a seeded [`DetRng`] stream, so failures are
//! reproducible: the failing `(kind, n, seed)` triple is printed by the
//! assertion message.

use actively_dynamic_networks::prelude::*;
use adn_graph::properties::ceil_log2;
use adn_graph::rng::DetRng;

/// One random connected instance: a graph on 4..=48 nodes plus the UID
/// seed used for its random permutation.
fn instances(cases: usize) -> Vec<(String, Graph, u64)> {
    let mut rng = DetRng::seed_from_u64(0xADB0);
    let mut out = Vec::with_capacity(cases);
    for _ in 0..cases {
        let n = rng.gen_range(4, 49);
        let seed = rng.gen_range(0, 1000) as u64;
        let kind = rng.gen_range(0, 3);
        let graph = match kind {
            0 => generators::random_tree(n, seed),
            1 => generators::random_connected(n, 0.1, seed),
            _ => generators::random_bounded_degree_connected(n, 4, n / 3, seed),
        };
        out.push((format!("kind={kind} n={n} seed={seed}"), graph, seed));
    }
    out
}

#[test]
fn graph_to_star_invariants() {
    for (label, graph, seed) in instances(24) {
        let n = graph.node_count();
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed });
        let outcome = Experiment::on(graph)
            .uids(UidAssignment::RandomPermutation { seed })
            .algorithm("graph_to_star")
            .run()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        // Depth-1 tree centred at the max-UID leader.
        assert!(properties::is_star(&outcome.final_graph), "{label}");
        assert_eq!(
            properties::star_center(&outcome.final_graph),
            Some(outcome.leader),
            "{label}"
        );
        assert_eq!(Some(outcome.leader), uids.max_uid_node(), "{label}");
        // Edge-complexity bounds of Theorem 3.8 (generous constants).
        assert!(outcome.rounds <= 12 * ceil_log2(n.max(2)) + 14, "{label}");
        assert!(
            outcome.metrics.total_activations <= 6 * n * ceil_log2(n.max(2)).max(1),
            "{label}"
        );
        assert!(outcome.metrics.max_activated_edges <= 2 * n, "{label}");
        assert!(
            outcome.metrics.max_node_activations_in_round <= 1,
            "{label}"
        );
    }
}

#[test]
fn graph_to_wreath_invariants() {
    for (label, graph, seed) in instances(24) {
        let n = graph.node_count();
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed });
        let outcome = Experiment::on(graph.clone())
            .uids(UidAssignment::RandomPermutation { seed })
            .algorithm("graph_to_wreath")
            .run()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        // Depth-log n tree rooted at the max-UID leader, arity <= 2.
        assert!(properties::is_tree(&outcome.final_graph), "{label}");
        assert_eq!(Some(outcome.leader), uids.max_uid_node(), "{label}");
        let tree = RootedTree::from_tree_graph(&outcome.final_graph, outcome.leader).unwrap();
        assert!(tree.depth() <= 2 * ceil_log2(n.max(2)) + 2, "{label}");
        for u in graph.nodes() {
            assert!(tree.child_count(u) <= 2, "{label}: node {u}");
        }
        // Constant activated degree regardless of the input degree.
        assert!(outcome.metrics.max_activated_degree <= 10, "{label}");
    }
}

#[test]
fn simulator_never_creates_multi_edges_or_breaks_vertex_set() {
    for (label, graph, seed) in instances(24) {
        let n = graph.node_count();
        let outcome = Experiment::on(graph)
            .uids(UidAssignment::RandomPermutation { seed })
            .algorithm("graph_to_star")
            .run()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(outcome.final_graph.check_invariants(), "{label}");
        assert_eq!(outcome.final_graph.node_count(), n, "{label}");
    }
}

#[test]
fn centralized_strategy_is_linear_in_activations() {
    for (label, graph, seed) in instances(24) {
        let n = graph.node_count();
        let outcome = Experiment::on(graph)
            .uids(UidAssignment::RandomPermutation { seed })
            .algorithm("centralized_general")
            .run()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(outcome.metrics.total_activations <= 2 * n, "{label}");
        assert!(properties::is_tree(&outcome.final_graph), "{label}");
        assert!(outcome.rounds <= ceil_log2(2 * n) + 3, "{label}");
    }
}
