//! End-to-end integration tests spanning all workspace crates:
//! graph generation → simulation → transformation → task layer → analysis.

use actively_dynamic_networks::prelude::*;
use adn_analysis::{Algorithm, RunRecord};
use adn_graph::properties::ceil_log2;

#[test]
fn full_pipeline_on_every_family() {
    for family in GraphFamily::ALL {
        let graph = family.generate(36, 5);
        let n = graph.node_count();
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 5 });

        let outcome = run_graph_to_star(&graph, &uids).expect("GraphToStar");
        assert!(verify_leader_election(&outcome, &uids), "{family}");
        assert!(properties::is_star(&outcome.final_graph), "{family}");

        let outcome = run_graph_to_wreath(&graph, &uids).expect("GraphToWreath");
        assert!(verify_leader_election(&outcome, &uids), "{family}");
        assert!(properties::is_tree(&outcome.final_graph), "{family}");
        let tree = RootedTree::from_tree_graph(&outcome.final_graph, outcome.leader).unwrap();
        assert!(tree.depth() <= 2 * ceil_log2(n.max(2)) + 2, "{family}");
    }
}

#[test]
fn transformation_beats_flooding_on_high_diameter_graphs() {
    let n = 200;
    let graph = generators::line(n);
    let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 2 });
    let (flood_rounds, _) = disseminate_by_flooding_only(&graph, &uids).unwrap();
    let outcome = run_graph_to_star(&graph, &uids).unwrap();
    let report = disseminate_after_transformation(&outcome, &uids).unwrap();
    assert!(report.transformation_rounds + report.dissemination_rounds < flood_rounds / 3);
}

#[test]
fn analysis_records_agree_with_direct_runs() {
    let record = RunRecord::measure(Algorithm::GraphToStar, GraphFamily::Ring, 40, 8).unwrap();
    let graph = GraphFamily::Ring.generate(40, 8);
    let uids = UidMap::new(40, UidAssignment::RandomPermutation { seed: 8 });
    let outcome = run_graph_to_star(&graph, &uids).unwrap();
    assert_eq!(record.rounds, outcome.rounds);
    assert_eq!(record.total_activations, outcome.metrics.total_activations);
    assert!(record.leader_ok);
}

#[test]
fn centralized_vs_distributed_activation_separation() {
    // The empirical content of Theorem 6.4: on increasing-order rings the
    // distributed algorithm pays a Θ(log n) factor more than the
    // centralized strategy.
    let n = 256;
    let ring = generators::ring(n);
    let uids = UidMap::new(n, UidAssignment::IncreasingRing);
    let star = run_graph_to_star(&ring, &uids).unwrap();
    let central = run_centralized_general(&ring, &uids, true).unwrap();
    assert!(central.metrics.total_activations <= 2 * n);
    assert!(
        star.metrics.total_activations >= 2 * central.metrics.total_activations,
        "distributed {} vs centralized {}",
        star.metrics.total_activations,
        central.metrics.total_activations
    );
}

#[test]
fn clique_baseline_is_edge_inefficient_but_fast() {
    let n = 64;
    let graph = generators::line(n);
    let uids = UidMap::new(n, UidAssignment::Sequential);
    let clique = run_clique_formation(&graph, &uids).unwrap();
    let star = run_graph_to_star(&graph, &uids).unwrap();
    assert!(clique.rounds <= ceil_log2(n) + 2);
    // Θ(n²) vs Θ(n log n): at n = 64 the ratio is already a few-fold and it
    // grows with n (the scaling series is experiment T4).
    assert!(clique.metrics.total_activations > 3 * star.metrics.total_activations);
    assert_eq!(clique.metrics.max_total_degree, n - 1);
}
