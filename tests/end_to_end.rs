//! End-to-end integration tests spanning all workspace crates:
//! graph generation → simulation → transformation → task layer → analysis,
//! all driven through the `Experiment` builder and the algorithm registry.

use actively_dynamic_networks::prelude::*;
use adn_analysis::{Algorithm, RunRecord};
use adn_graph::properties::ceil_log2;

#[test]
fn full_pipeline_on_every_family() {
    for family in GraphFamily::ALL {
        let graph = family.generate(36, 5);
        let n = graph.node_count();
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 5 });

        let outcome = Experiment::on(graph.clone())
            .uids(UidAssignment::RandomPermutation { seed: 5 })
            .algorithm("graph_to_star")
            .run()
            .expect("GraphToStar");
        assert!(verify_leader_election(&outcome, &uids), "{family}");
        assert!(properties::is_star(&outcome.final_graph), "{family}");

        let outcome = Experiment::on(graph)
            .uids(UidAssignment::RandomPermutation { seed: 5 })
            .algorithm("graph_to_wreath")
            .run()
            .expect("GraphToWreath");
        assert!(verify_leader_election(&outcome, &uids), "{family}");
        assert!(properties::is_tree(&outcome.final_graph), "{family}");
        let tree = RootedTree::from_tree_graph(&outcome.final_graph, outcome.leader).unwrap();
        assert!(tree.depth() <= 2 * ceil_log2(n.max(2)) + 2, "{family}");
    }
}

#[test]
fn transformation_beats_flooding_on_high_diameter_graphs() {
    let n = 200;
    let graph = generators::line(n);
    let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 2 });
    let (flood_rounds, _) = disseminate_by_flooding_only(&graph, &uids).unwrap();
    let outcome = Experiment::on(graph)
        .uids(UidAssignment::RandomPermutation { seed: 2 })
        .algorithm("graph_to_star")
        .run()
        .unwrap();
    let report = disseminate_after_transformation(&outcome, &uids).unwrap();
    assert!(report.transformation_rounds + report.dissemination_rounds < flood_rounds / 3);
}

#[test]
fn analysis_records_agree_with_direct_runs() {
    let record = RunRecord::measure(Algorithm::GraphToStar, GraphFamily::Ring, 40, 8).unwrap();
    let outcome = Experiment::family(GraphFamily::Ring, 40, 8)
        .uids(UidAssignment::RandomPermutation { seed: 8 })
        .algorithm("graph_to_star")
        .run()
        .unwrap();
    assert_eq!(record.rounds, outcome.rounds);
    assert_eq!(record.total_activations, outcome.metrics.total_activations);
    assert!(record.leader_ok);
}

#[test]
fn centralized_vs_distributed_activation_separation() {
    // The empirical content of Theorem 6.4: on increasing-order rings the
    // distributed algorithm pays a Θ(log n) factor more than the
    // centralized strategy.
    let n = 256;
    let ring = generators::ring(n);
    let star = Experiment::on(ring.clone())
        .uids(UidAssignment::IncreasingRing)
        .algorithm("graph_to_star")
        .run()
        .unwrap();
    let central = Experiment::on(ring)
        .uids(UidAssignment::IncreasingRing)
        .algorithm("centralized_general")
        .centralized(CentralizedConfig::PruneToTree)
        .run()
        .unwrap();
    assert!(central.metrics.total_activations <= 2 * n);
    assert!(
        star.metrics.total_activations >= 2 * central.metrics.total_activations,
        "distributed {} vs centralized {}",
        star.metrics.total_activations,
        central.metrics.total_activations
    );
}

#[test]
fn clique_baseline_is_edge_inefficient_but_fast() {
    let n = 64;
    let graph = generators::line(n);
    let clique = Experiment::on(graph.clone())
        .algorithm("clique_formation")
        .run()
        .unwrap();
    let star = Experiment::on(graph)
        .algorithm("graph_to_star")
        .run()
        .unwrap();
    assert!(clique.rounds <= ceil_log2(n) + 2);
    // Θ(n²) vs Θ(n log n): at n = 64 the ratio is already a few-fold and it
    // grows with n (the scaling series is experiment T4).
    assert!(clique.metrics.total_activations > 3 * star.metrics.total_activations);
    assert_eq!(clique.metrics.max_total_degree, n - 1);
}

#[test]
#[allow(deprecated)]
fn deprecated_run_functions_remain_working() {
    // The acceptance criterion for the 0.2 API redesign: old entry points
    // keep working (with deprecation warnings) on top of the trait impls.
    let n = 48;
    let graph = generators::line(n);
    let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 4 });

    let star = run_graph_to_star(&graph, &uids).unwrap();
    assert!(properties::is_star(&star.final_graph));

    let wreath = run_graph_to_wreath(&graph, &uids).unwrap();
    assert!(properties::is_tree(&wreath.final_graph));

    let thin = run_graph_to_thin_wreath(&graph, &uids).unwrap();
    assert!(properties::is_tree(&thin.final_graph));

    let clique = run_clique_formation(&graph, &uids).unwrap();
    assert_eq!(clique.final_graph.edge_count(), n * (n - 1) / 2);

    let flood = run_flooding(&graph, &uids).unwrap();
    assert!(flood.tokens_per_node.iter().all(|&t| t == n));

    let central = run_centralized_general(&graph, &uids, true).unwrap();
    assert!(properties::is_tree(&central.final_graph));

    let order: Vec<NodeId> = (0..n).map(NodeId).collect();
    let cut = run_cut_in_half_on_line(&graph, &order).unwrap();
    assert!(cut.metrics.total_activations <= n);

    // All of the old outcomes agree with the new entry points.
    let via_trait = GraphToStar
        .run(&graph, &uids, &RunConfig::traced())
        .unwrap();
    assert_eq!(via_trait.rounds, star.rounds);
    assert_eq!(
        via_trait.metrics.total_activations,
        star.metrics.total_activations
    );
}
