//! Registry-driven conformance suite: every registered algorithm runs on
//! every `GraphFamily` and must satisfy the invariants its
//! `AlgorithmSpec` declares — the elected leader is the maximum-UID node
//! (when the spec promises leader election), the final network spans all
//! nodes and is connected within the spec'd diameter bound, and the final
//! degree respects the spec'd degree bound.
//!
//! The distance-2 activation rule is enforced *during* the runs by
//! `adn_sim::Network` (`stage_activation` rejects any activation between
//! nodes that do not share a common neighbour at the beginning of the
//! round), so an execution completing without `CoreError::Sim` certifies
//! that no metered activation ever violated it; the dedicated test at the
//! bottom demonstrates the rejection path.

use actively_dynamic_networks::prelude::*;

const SEEDS: [u64; 2] = [1, 11];
const SIZE: usize = 30;

#[test]
fn every_algorithm_on_every_family_meets_its_spec() {
    for algorithm in registry() {
        let spec = algorithm.spec();
        for family in GraphFamily::ALL {
            for seed in SEEDS {
                let graph = family.generate(SIZE, seed);
                let n = graph.node_count();
                if !algorithm.supports(&graph) {
                    // Unsupported inputs must be rejected cleanly, not
                    // mis-handled.
                    let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed });
                    assert!(
                        matches!(
                            algorithm.run(&graph, &uids, &RunConfig::default()),
                            Err(CoreError::InvalidInput { .. })
                        ),
                        "{} must reject unsupported {family}",
                        spec.id
                    );
                    continue;
                }
                let label = format!("{} on {family} (n={n}, seed={seed})", spec.id);
                let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed });
                let outcome = Experiment::on(graph)
                    .uids(UidAssignment::RandomPermutation { seed })
                    .algorithm(spec.id)
                    .trace(TraceLevel::PerRound)
                    .run()
                    .unwrap_or_else(|e| panic!("{label}: {e}"));

                // The final network spans the whole vertex set and is
                // connected within the spec'd diameter bound.
                assert_eq!(outcome.final_graph.node_count(), n, "{label}");
                assert!(outcome.final_graph.check_invariants(), "{label}");
                let diameter = outcome
                    .final_diameter()
                    .unwrap_or_else(|| panic!("{label}: final network disconnected"));
                assert!(
                    diameter <= (spec.diameter_bound)(n),
                    "{label}: diameter {diameter} > bound {}",
                    (spec.diameter_bound)(n)
                );

                // Degree bound on the final network.
                let degree = outcome.final_max_degree();
                assert!(
                    degree <= (spec.max_degree_bound)(n),
                    "{label}: degree {degree} > bound {}",
                    (spec.max_degree_bound)(n)
                );

                // Leader election.
                if spec.elects_max_uid_leader {
                    assert_eq!(
                        Some(outcome.leader),
                        uids.max_uid_node(),
                        "{label}: wrong leader"
                    );
                }

                // Accounting sanity: the trace covers only metered rounds
                // and the metrics mirror the round count.
                assert_eq!(outcome.rounds, outcome.metrics.rounds, "{label}");
                assert!(
                    outcome.trace.iter().all(|r| r.round <= outcome.rounds),
                    "{label}: trace rounds out of range"
                );
            }
        }
    }
}

#[test]
fn supports_matrix_is_exactly_cut_in_half_on_non_lines() {
    // Only CentralizedCutInHalf restricts its inputs; everything else
    // accepts every (connected) family.
    for algorithm in registry() {
        for family in GraphFamily::ALL {
            let graph = family.generate(SIZE, 1);
            let expected =
                algorithm.spec().id != "centralized_cut_in_half" || properties::is_line(&graph);
            assert_eq!(
                algorithm.supports(&graph),
                expected,
                "{} on {family}",
                algorithm.spec().id
            );
        }
    }
}

#[test]
fn every_algorithm_declares_and_honors_its_engine_modes() {
    // Every registered algorithm declares which engines it supports; it
    // must complete under every declared mode and fail with the clean
    // `InvalidInput` rejection — never a panic — under the others.
    let all_modes = [
        EngineMode::Synchronous,
        EngineMode::Seeded { seed: 3 },
        EngineMode::Free { threads: 2 },
    ];
    for algorithm in registry() {
        let spec = algorithm.spec();
        let declared = algorithm.supported_engine_modes();
        assert!(
            declared.contains(&EngineMode::Synchronous),
            "{}: every algorithm must support the synchronous engine",
            spec.id
        );
        // The declared list matches the boolean capability flag.
        assert_eq!(
            declared.len() > 1,
            algorithm.supports_async_engines(),
            "{}: supported_engine_modes disagrees with supports_async_engines",
            spec.id
        );
        let graph = if spec.id == "centralized_cut_in_half" {
            generators::line(12)
        } else {
            generators::ring(12)
        };
        let n = graph.node_count();
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 7 });
        for mode in all_modes {
            let supported = match mode {
                EngineMode::Synchronous => true,
                _ => algorithm.supports_async_engines(),
            };
            let result = algorithm.run(&graph, &uids, &RunConfig::default().with_engine(mode));
            if supported {
                let outcome = result
                    .unwrap_or_else(|e| panic!("{} must complete under {mode:?}: {e}", spec.id));
                assert_eq!(
                    outcome.final_graph.node_count(),
                    n,
                    "{} under {mode:?}",
                    spec.id
                );
                if !mode.is_synchronous() {
                    assert!(
                        outcome.runtime.is_some(),
                        "{} under {mode:?}: async runs must carry a runtime report",
                        spec.id
                    );
                }
            } else {
                assert!(
                    matches!(result, Err(CoreError::InvalidInput { .. })),
                    "{} must cleanly reject {mode:?}",
                    spec.id
                );
            }
        }
    }
}

#[test]
fn distance_two_rule_is_enforced_by_the_simulator() {
    // The invariant the conformance runs rely on: activations are
    // validated against the distance-2 rule at staging time, so no
    // completed run can contain a violating activation.
    let mut network = Network::new(generators::line(4));
    assert!(matches!(
        network.stage_activation(NodeId(0), NodeId(3)),
        Err(sim_error) if sim_error.to_string().contains("distance-2")
    ));
}
