//! The experiment drivers that regenerate every table and figure of the
//! reproduction (see DESIGN.md §5 for the experiment index).
//!
//! Each function returns a self-contained markdown fragment; the
//! `adn-bench` crate exposes them through the `report` binary
//! (`cargo run -p adn-bench --release --bin report -- <experiment id>`),
//! and EXPERIMENTS.md records a captured run.

use crate::fit::best_fit;
use crate::record::{markdown_table, Algorithm, RunRecord};
use adn_core::algorithm::{
    CentralizedCutInHalf, CentralizedGeneral, Flooding, GraphToStar, ReconfigurationAlgorithm,
    RunConfig,
};
use adn_core::lower_bounds;
use adn_core::subroutines::{
    run_async_line_to_tree, run_line_to_tree, run_tree_to_star, AsyncLineConfig, LineToTreeConfig,
};
use adn_core::tasks::{disseminate_after_transformation, disseminate_by_flooding_only};
use adn_graph::properties::ceil_log2;
use adn_graph::{generators, GraphFamily, NodeId, RootedTree, UidAssignment, UidMap};
use adn_sim::Network;

fn defaults() -> RunConfig {
    RunConfig::default()
}

fn uid_map(n: usize, seed: u64) -> UidMap {
    UidMap::new(n, UidAssignment::RandomPermutation { seed })
}

fn fit_line(label: &str, points: &[(usize, f64)]) -> String {
    match best_fit(points) {
        Some(fit) => format!(
            "- {label}: best fit `{:.3} · {}` (mean relative error {:.1}%)\n",
            fit.constant,
            fit.shape,
            100.0 * fit.mean_relative_error
        ),
        None => format!("- {label}: not enough data\n"),
    }
}

/// T1 — the contribution table of the abstract / Section 1.3: all five
/// strategies side by side on spanning lines of increasing size, plus
/// growth-shape fits for rounds and total activations.
pub fn t1_contribution_table(sizes: &[usize], clique_cap: usize) -> String {
    let mut records = Vec::new();
    for &alg in &Algorithm::ALL {
        for &n in sizes {
            if alg == Algorithm::CliqueFormation && n > clique_cap {
                continue;
            }
            records.push(RunRecord::measure(alg, GraphFamily::Line, n, 1).expect("run"));
        }
    }
    let mut out = String::from("### T1 — time / edge-complexity trade-off (spanning line)\n\n");
    out.push_str(&markdown_table(&records));
    out.push('\n');
    for &alg in &Algorithm::ALL {
        let rounds: Vec<(usize, f64)> = records
            .iter()
            .filter(|r| r.algorithm == alg)
            .map(|r| (r.n, r.rounds as f64))
            .collect();
        let acts: Vec<(usize, f64)> = records
            .iter()
            .filter(|r| r.algorithm == alg)
            .map(|r| (r.n, r.total_activations as f64))
            .collect();
        out.push_str(&fit_line(&format!("{alg} rounds"), &rounds));
        out.push_str(&fit_line(&format!("{alg} total activations"), &acts));
    }
    out
}

/// T4 — the clique-formation straw-man against GraphToStar: both take
/// `O(log n)` rounds, but the clique pays `Θ(n²)` activations and linear
/// degree.
pub fn t4_clique_baseline(sizes: &[usize]) -> String {
    let mut records = Vec::new();
    for &n in sizes {
        records.push(
            RunRecord::measure(Algorithm::CliqueFormation, GraphFamily::Ring, n, 2).expect("run"),
        );
        records.push(
            RunRecord::measure(Algorithm::GraphToStar, GraphFamily::Ring, n, 2).expect("run"),
        );
    }
    let mut out = String::from("### T4 — clique formation vs GraphToStar (ring)\n\n");
    out.push_str(&markdown_table(&records));
    out.push('\n');
    let clique: Vec<(usize, f64)> = records
        .iter()
        .filter(|r| r.algorithm == Algorithm::CliqueFormation)
        .map(|r| (r.n, r.total_activations as f64))
        .collect();
    let star: Vec<(usize, f64)> = records
        .iter()
        .filter(|r| r.algorithm == Algorithm::GraphToStar)
        .map(|r| (r.n, r.total_activations as f64))
        .collect();
    out.push_str(&fit_line("CliqueFormation total activations", &clique));
    out.push_str(&fit_line("GraphToStar total activations", &star));
    out
}

/// F1/F2 — the basic subroutines (Propositions 2.1 and 2.2).
pub fn f1_subroutines(sizes: &[usize]) -> String {
    let mut out = String::from("### F1/F2 — TreeToStar and LineToCompleteBinaryTree\n\n");
    out.push_str("| subroutine | n | ceil(log n) | rounds | total act. | max active edges | max degree |\n|---|---|---|---|---|---|---|\n");
    for &n in sizes {
        let g = generators::line(n);
        let tree = RootedTree::from_tree_graph(&g, NodeId(0)).unwrap();
        let mut net = Network::new(g.clone());
        let rounds = run_tree_to_star(&mut net, &tree).unwrap();
        out.push_str(&format!(
            "| TreeToStar (line) | {n} | {} | {rounds} | {} | {} | {} |\n",
            ceil_log2(n),
            net.metrics().total_activations,
            net.metrics().max_active_edges_total,
            net.metrics().max_total_degree
        ));
        let mut net = Network::new(g);
        let line: Vec<NodeId> = (0..n).map(NodeId).collect();
        let (cbt, rounds) = run_line_to_tree(&mut net, &line, &LineToTreeConfig::binary()).unwrap();
        out.push_str(&format!(
            "| LineToCompleteBinaryTree | {n} | {} | {rounds} | {} | {} | {} (tree depth {}) |\n",
            ceil_log2(n),
            net.metrics().total_activations,
            net.metrics().max_active_edges_total,
            net.metrics().max_total_degree,
            cbt.depth()
        ));
    }
    out
}

/// F3 — asynchronous vs synchronous LineToCompleteBinaryTree
/// (Lemma B.4 / Corollary B.5).
pub fn f3_async_equivalence(sizes: &[usize]) -> String {
    let mut out = String::from("### F3 — asynchronous LineToCompleteBinaryTree (Lemma B.4)\n\n");
    out.push_str("| n | wake-up schedule | identical to sync | async rounds | sync rounds |\n|---|---|---|---|---|\n");
    for &n in sizes {
        let line: Vec<NodeId> = (0..n).map(NodeId).collect();
        let sync = {
            let mut net = Network::new(generators::line(n));
            run_line_to_tree(&mut net, &line, &LineToTreeConfig::binary()).unwrap()
        };
        for (label, wake) in [
            ("all awake", vec![1usize; n]),
            (
                "staggered (i mod log n)",
                (0..n).map(|i| 1 + i % ceil_log2(n).max(1)).collect(),
            ),
            (
                "reverse staggered",
                (0..n)
                    .map(|i| 1 + (n - 1 - i) % (ceil_log2(n).max(1) + 2))
                    .collect(),
            ),
        ] {
            let mut net = Network::new(generators::line(n));
            let config = AsyncLineConfig {
                arity: 2,
                protected_edges: Default::default(),
                wake_round: wake,
            };
            let (tree, rounds) = run_async_line_to_tree(&mut net, &line, &config).unwrap();
            out.push_str(&format!(
                "| {n} | {label} | {} | {rounds} | {} |\n",
                if tree == sync.0 { "yes" } else { "NO" },
                sync.1
            ));
        }
    }
    out
}

/// F4 — committee decay of GraphToStar (the exponential-growth invariant
/// behind Lemmas 3.2–3.6).
pub fn f4_committee_decay(n: usize, seed: u64) -> String {
    let g = GraphFamily::SparseRandom.generate(n, seed);
    let uids = uid_map(g.node_count(), seed);
    let outcome = GraphToStar.run(&g, &uids, &defaults()).expect("run");
    let mut out = format!(
        "### F4 — committees alive per phase (GraphToStar, sparse random graph, n = {})\n\n| phase | committees alive |\n|---|---|\n",
        g.node_count()
    );
    for (i, c) in outcome.committees_per_phase.iter().enumerate() {
        out.push_str(&format!("| {} | {} |\n", i + 1, c));
    }
    out.push_str(&format!(
        "\nTotal phases: {}, rounds: {}\n",
        outcome.phases, outcome.rounds
    ));
    out
}

/// F5 — the Ω(log n) time lower bound on spanning lines (Lemma 6.1)
/// against the measured running times.
pub fn f5_time_lower_bound(sizes: &[usize]) -> String {
    let mut out = String::from("### F5 — time lower bound on spanning lines (Lemma 6.1)\n\n");
    out.push_str("| n | ceil(log n) | potential-argument lower bound | GraphToStar rounds | centralized rounds |\n|---|---|---|---|---|\n");
    for &n in sizes {
        let g = generators::line(n);
        let uids = uid_map(n, 3);
        let star = GraphToStar.run(&g, &uids, &defaults()).expect("run");
        let central = CentralizedGeneral.run(&g, &uids, &defaults()).expect("run");
        out.push_str(&format!(
            "| {n} | {} | {} | {} | {} |\n",
            ceil_log2(n),
            lower_bounds::line_time_lower_bound(n),
            star.rounds,
            central.rounds
        ));
    }
    out
}

/// T6 — centralized upper bound (Theorem 6.3) against the centralized
/// lower bounds (Lemmas 6.2 / D.3–D.4).
pub fn t6_centralized(sizes: &[usize]) -> String {
    let mut out =
        String::from("### T6 — centralized setting: Θ(n) total activations (Theorem 6.3)\n\n");
    out.push_str("| n | lower bound n-1-2log n | CutInHalf (line) activations | Euler+CutInHalf activations | per-round lower bound | max activations/round |\n|---|---|---|---|---|---|\n");
    for &n in sizes {
        let line_graph = generators::line(n);
        let line_uids = UidMap::new(n, UidAssignment::Sequential);
        let cut = CentralizedCutInHalf
            .run(&line_graph, &line_uids, &defaults())
            .expect("run");
        let g = GraphFamily::SparseRandom.generate(n, 5);
        let uids = uid_map(g.node_count(), 5);
        let euler = CentralizedGeneral.run(&g, &uids, &defaults()).expect("run");
        out.push_str(&format!(
            "| {n} | {} | {} | {} | {} | {} |\n",
            lower_bounds::centralized_total_activation_lower_bound(n),
            cut.metrics.total_activations,
            euler.metrics.total_activations,
            lower_bounds::centralized_per_round_activation_lower_bound(n),
            cut.metrics.max_activations_in_round(),
        ));
    }
    out
}

/// F7 — the distributed Ω(n log n) activation lower bound on
/// increasing-order rings (Theorem 6.4), matched by GraphToStar's
/// O(n log n) upper bound and contrasted with the centralized Θ(n).
pub fn f7_distributed_lower_bound(sizes: &[usize]) -> String {
    let mut out = String::from(
        "### F7 — distributed Ω(n log n) vs centralized Θ(n) on increasing-order rings (Theorem 6.4)\n\n",
    );
    out.push_str("| n | n·log n | GraphToStar activations (increasing ring) | centralized activations | distributed LB (conservative) | centralized LB |\n|---|---|---|---|---|---|\n");
    let mut star_points = Vec::new();
    for &n in sizes {
        let ring = generators::ring(n);
        let uids = UidMap::new(n, UidAssignment::IncreasingRing);
        let star = GraphToStar.run(&ring, &uids, &defaults()).expect("run");
        let central = CentralizedGeneral
            .run(&ring, &uids, &defaults())
            .expect("run");
        star_points.push((n, star.metrics.total_activations as f64));
        out.push_str(&format!(
            "| {n} | {} | {} | {} | {} | {} |\n",
            n * ceil_log2(n),
            star.metrics.total_activations,
            central.metrics.total_activations,
            lower_bounds::distributed_total_activation_lower_bound(n),
            lower_bounds::centralized_total_activation_lower_bound(n),
        ));
    }
    out.push('\n');
    out.push_str(&fit_line(
        "GraphToStar activations on increasing rings",
        &star_points,
    ));
    out
}

/// T8 — the composition claim of Section 1.3: reconfigure-then-disseminate
/// versus flooding on the original network.
pub fn t8_tasks(sizes: &[usize]) -> String {
    let mut out =
        String::from("### T8 — token dissemination: flooding vs transform-then-disseminate\n\n");
    out.push_str("| n | flooding rounds (G_s) | GraphToStar rounds | dissemination rounds (G_f) | total | speed-up |\n|---|---|---|---|---|---|\n");
    for &n in sizes {
        let g = generators::line(n);
        let uids = uid_map(n, 7);
        let (flood_rounds, _) = disseminate_by_flooding_only(&g, &uids).expect("run");
        let outcome = GraphToStar.run(&g, &uids, &defaults()).expect("run");
        let report = disseminate_after_transformation(&outcome, &uids).expect("run");
        let total = report.transformation_rounds + report.dissemination_rounds;
        out.push_str(&format!(
            "| {n} | {flood_rounds} | {} | {} | {total} | {:.1}x |\n",
            report.transformation_rounds,
            report.dissemination_rounds,
            flood_rounds as f64 / total.max(1) as f64
        ));
    }
    out
}

/// F9 — the gadget ablation at a fixed size: star vs wreath vs thin wreath
/// (plus baselines), showing the time / degree / activation trade-off.
pub fn f9_tradeoff(n: usize) -> String {
    let mut records = Vec::new();
    for alg in Algorithm::ALL {
        if alg == Algorithm::CliqueFormation && n > 256 {
            continue;
        }
        records.push(RunRecord::measure(alg, GraphFamily::Ring, n, 9).expect("run"));
    }
    let mut out = format!("### F9 — trade-off at fixed n = {n} (ring)\n\n");
    out.push_str(&markdown_table(&records));
    out
}

/// F5-verification helper exposed for tests: flooding round count equals
/// the line diameter (sanity anchor for the dissemination comparisons).
pub fn flooding_rounds_on_line(n: usize) -> usize {
    let g = generators::line(n);
    let uids = uid_map(n, 1);
    Flooding.run(&g, &uids, &defaults()).expect("run").rounds
}

/// Runs every experiment with the default (fast) parameter sets and
/// concatenates the fragments. This is what the `report` binary prints and
/// what EXPERIMENTS.md captures.
pub fn run_all_default() -> String {
    let mut out = String::from("# Regenerated experiment report\n\n");
    out.push_str(&t1_contribution_table(&[64, 128, 256, 512], 256));
    out.push('\n');
    out.push_str(&t4_clique_baseline(&[32, 64, 128, 256]));
    out.push('\n');
    out.push_str(&f1_subroutines(&[64, 128, 256, 512, 1024]));
    out.push('\n');
    out.push_str(&f3_async_equivalence(&[64, 256]));
    out.push('\n');
    out.push_str(&f4_committee_decay(256, 11));
    out.push('\n');
    out.push_str(&f5_time_lower_bound(&[64, 128, 256, 512]));
    out.push('\n');
    out.push_str(&t6_centralized(&[64, 128, 256, 512, 1024]));
    out.push('\n');
    out.push_str(&f7_distributed_lower_bound(&[64, 128, 256, 512]));
    out.push('\n');
    out.push_str(&t8_tasks(&[64, 128, 256, 512]));
    out.push('\n');
    out.push_str(&f9_tradeoff(256));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subroutine_figure_renders() {
        let s = f1_subroutines(&[16, 32]);
        assert!(s.contains("TreeToStar"));
        assert!(s.contains("LineToCompleteBinaryTree"));
    }

    #[test]
    fn async_equivalence_always_matches() {
        let s = f3_async_equivalence(&[32]);
        assert!(!s.contains(" NO "), "async/sync mismatch:\n{s}");
    }

    #[test]
    fn lower_bound_tables_render() {
        let s = f5_time_lower_bound(&[32, 64]);
        assert!(s.contains("| 32 |"));
        let s = t6_centralized(&[32, 64]);
        assert!(s.contains("CutInHalf"));
        let s = f7_distributed_lower_bound(&[32, 64]);
        assert!(s.contains("GraphToStar"));
    }

    #[test]
    fn tasks_table_shows_speedup() {
        let s = t8_tasks(&[64]);
        assert!(s.contains("x |"));
    }

    #[test]
    fn committee_decay_reaches_one() {
        let s = f4_committee_decay(48, 3);
        assert!(s.contains("| 1 |"));
    }

    #[test]
    fn flooding_anchor() {
        assert!(flooding_rounds_on_line(20) >= 19);
    }
}
