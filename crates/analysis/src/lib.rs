//! # adn-analysis — experiment harness
//!
//! Runs the algorithms of `adn-core` over parameter sweeps, collects the
//! paper's edge-complexity measures into [`RunRecord`]s, fits the observed
//! growth against candidate complexity shapes, and formats the tables and
//! series that regenerate every claim of the paper (see DESIGN.md §5 and
//! EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fit;
pub mod record;
pub mod runtime_sweep;
pub mod stress;

pub use fit::{best_fit, FitResult, Shape};
pub use record::{Algorithm, RunRecord};
pub use runtime_sweep::{RuntimeCase, RuntimeCaseReport, RuntimeProgram, RuntimeSweepSummary};
pub use stress::{Minimized, StressCase, StressOutcome, StressReport, SweepSummary};
