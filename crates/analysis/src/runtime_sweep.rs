//! Deterministic seed sweep for the asynchronous actor runtime.
//!
//! The synchronous stress suite ([`crate::stress`]) derives a whole
//! adversarial execution from one `u64`; this module applies the same
//! recipe to the `adn-runtime` schedulers. A [`RuntimeCase`] names a
//! program (flooding actors or the line-to-tree actors), a workload, an
//! *asynchronous* scenario (delivery reorder window, per-link delay,
//! asymmetric latency) and a scheduler seed — all drawn from a single
//! case seed, so any divergence found by a sweep is one replayable
//! number.
//!
//! Every case runs on the [`SeededScheduler`]: its delivery order is a
//! pure function of the scheduler seed, so [`RuntimeCaseReport::render`]
//! is byte-identical across reruns and thread counts — exactly the
//! replay contract the synchronous suite gives, extended to executions
//! with no round structure at all.
//!
//! [`SeededScheduler`]: adn_runtime::SeededScheduler

use adn_core::algorithm::{self, DstConfig, EngineMode, RunConfig};
use adn_core::subroutines::{run_runtime_line_to_tree_seeded, LineToTreeConfig};
use adn_graph::rng::DetRng;
use adn_graph::{GraphFamily, NodeId, UidAssignment, UidMap};
use adn_runtime::AsyncKnobs;
use adn_sim::dst::{self, Scenario};
use adn_sim::Network;

/// The actor program a runtime case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeProgram {
    /// Delta-forwarding token flooding (through the `flooding` registry
    /// entry, i.e. the full `EngineMode` dispatch path).
    Flooding,
    /// The message-driven line-to-tree actors
    /// ([`adn_core::subroutines::runtime_line_to_tree`]).
    LineToTree,
}

impl RuntimeProgram {
    fn name(&self) -> &'static str {
        match self {
            RuntimeProgram::Flooding => "flooding",
            RuntimeProgram::LineToTree => "line_to_tree",
        }
    }
}

/// Workload families used for flooding cases — the connected subset, so
/// a clean run is always possible (flooding rejects disconnected
/// inputs).
const FLOOD_FAMILIES: [GraphFamily; 8] = [
    GraphFamily::Line,
    GraphFamily::Ring,
    GraphFamily::Star,
    GraphFamily::CompleteBinaryTree,
    GraphFamily::Grid,
    GraphFamily::RandomTree,
    GraphFamily::Caterpillar,
    GraphFamily::Hypercube,
];

/// One fully specified asynchronous execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeCase {
    /// The single seed this case was derived from (0 for explicit cases).
    pub seed: u64,
    /// The actor program under test.
    pub program: RuntimeProgram,
    /// Workload family of the initial network (always `Line` for
    /// [`RuntimeProgram::LineToTree`]).
    pub family: GraphFamily,
    /// Requested node count (families may round it).
    pub n: usize,
    /// Seed for instance generation and the UID permutation.
    pub uid_seed: u64,
    /// The asynchronous scenario supplying the delivery knobs.
    pub scenario: Scenario,
    /// The scheduler seed (delivery order, delay jitter).
    pub sched_seed: u64,
    /// Tree arity for line-to-tree cases (ignored by flooding).
    pub arity: usize,
}

impl RuntimeCase {
    /// Derives a complete case from one `u64` — the unit of replay.
    ///
    /// # Panics
    ///
    /// Panics if the scenario registry contains no asynchronous
    /// scenarios (a registry regression).
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed);
        let program = if rng.gen_range(0, 2) == 0 {
            RuntimeProgram::Flooding
        } else {
            RuntimeProgram::LineToTree
        };
        let family = match program {
            RuntimeProgram::Flooding => FLOOD_FAMILIES[rng.gen_range(0, FLOOD_FAMILIES.len())],
            RuntimeProgram::LineToTree => GraphFamily::Line,
        };
        let n = rng.gen_range(8, 65);
        let uid_seed = (rng.next_u64() % 100_000) + 1;
        let pool: Vec<Scenario> = dst::scenarios()
            .into_iter()
            .filter(|s| s.is_async())
            .collect();
        assert!(!pool.is_empty(), "no asynchronous scenarios registered");
        let scenario = pool[rng.gen_range(0, pool.len())].clone();
        let sched_seed = rng.next_u64();
        let arity = 2 + rng.gen_range(0, 3);
        RuntimeCase {
            seed,
            program,
            family,
            n,
            uid_seed,
            scenario,
            sched_seed,
            arity,
        }
    }
}

/// The result of running one [`RuntimeCase`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeCaseReport {
    /// The case that was run.
    pub case: RuntimeCase,
    /// Actual node count of the generated instance.
    pub n_actual: usize,
    /// A stable one-line digest of the program outcome (`completed …` or
    /// `failed: …`).
    pub outcome: String,
    /// Render of the scheduler's [`adn_runtime::RuntimeReport`] (empty
    /// when the run failed before the scheduler finished).
    pub runtime: String,
    /// Whether the run completed.
    pub completed: bool,
}

impl RuntimeCaseReport {
    /// Renders the full report to a stable string; replay equality is
    /// checked byte-for-byte on exactly this.
    pub fn render(&self) -> String {
        let knobs = AsyncKnobs::from_scenario(&self.case.scenario);
        let mut s = String::new();
        s.push_str(&format!(
            "runtime case seed={} program={} family={} n={} (actual {}) uid_seed={} \
             scenario={} sched_seed={} arity={}\n",
            self.case.seed,
            self.case.program.name(),
            self.case.family,
            self.case.n,
            self.n_actual,
            self.case.uid_seed,
            self.case.scenario.name,
            self.case.sched_seed,
            self.case.arity,
        ));
        s.push_str(&format!(
            "knobs: reorder_window={} max_link_delay={} asymmetric={}\n",
            knobs.reorder_window, knobs.max_link_delay, knobs.asymmetric_delay,
        ));
        s.push_str(&format!("outcome: {}\n", self.outcome));
        s.push_str(&self.runtime);
        s
    }
}

/// Runs one case on the seeded scheduler.
pub fn run_case(case: &RuntimeCase) -> RuntimeCaseReport {
    let graph = case.family.generate(case.n, case.uid_seed);
    let n_actual = graph.node_count();
    let uids = UidMap::new(
        n_actual,
        UidAssignment::RandomPermutation {
            seed: case.uid_seed,
        },
    );
    let mut network = Network::new(graph);
    let (outcome, runtime, completed) = match case.program {
        RuntimeProgram::Flooding => {
            let a = algorithm::find("flooding").expect("flooding is registered");
            let mut config = RunConfig::default().with_engine(EngineMode::Seeded {
                seed: case.sched_seed,
            });
            // The scenario is knob transport only: the network is *not*
            // armed, so no synchronous adversary competes with the
            // scheduler — `async_knobs` lifts the delivery knobs.
            config.dst = Some(DstConfig {
                scenario: case.scenario.clone(),
                seed: case.sched_seed,
            });
            match a.execute(&mut network, &uids, &config) {
                Ok(o) => {
                    let full = o.tokens_per_node.iter().filter(|&&t| t == n_actual).count();
                    let report = o.runtime.expect("async flooding reports its runtime");
                    (
                        format!(
                            "completed (leader {}, {}/{} nodes hold all tokens)",
                            o.leader, full, n_actual
                        ),
                        report.render(),
                        true,
                    )
                }
                Err(e) => (format!("failed: {e}"), String::new(), false),
            }
        }
        RuntimeProgram::LineToTree => {
            let line: Vec<NodeId> = (0..n_actual).map(NodeId).collect();
            let config = LineToTreeConfig {
                arity: case.arity,
                protected_edges: Default::default(),
            };
            let knobs = AsyncKnobs::from_scenario(&case.scenario);
            match run_runtime_line_to_tree_seeded(
                &mut network,
                &line,
                &config,
                case.sched_seed,
                knobs,
            ) {
                Ok((tree, report)) => (
                    format!(
                        "completed (tree depth {}, root {})",
                        tree.depth(),
                        tree.root()
                    ),
                    report.render(),
                    true,
                ),
                Err(e) => (format!("failed: {e}"), String::new(), false),
            }
        }
    };
    RuntimeCaseReport {
        case: case.clone(),
        n_actual,
        outcome,
        runtime,
        completed,
    }
}

/// Replays a seed-derived case; two calls with the same seed render
/// byte-identically.
pub fn replay(seed: u64) -> RuntimeCaseReport {
    run_case(&RuntimeCase::from_seed(seed))
}

/// Runs a seed twice and checks the two renders for byte equality.
pub fn verify_replay(seed: u64) -> (RuntimeCaseReport, bool) {
    let first = replay(seed);
    let second = replay(seed);
    let identical = first.render() == second.render();
    (first, identical)
}

/// Summary of a runtime seed sweep.
#[derive(Debug, Clone)]
pub struct RuntimeSweepSummary {
    /// The master seed the case seeds were derived from.
    pub master_seed: u64,
    /// All reports, in case order.
    pub reports: Vec<RuntimeCaseReport>,
}

impl RuntimeSweepSummary {
    /// Number of completed runs.
    pub fn completed(&self) -> usize {
        self.reports.iter().filter(|r| r.completed).count()
    }

    /// The failed reports.
    pub fn failures(&self) -> Vec<&RuntimeCaseReport> {
        self.reports.iter().filter(|r| !r.completed).collect()
    }

    /// A short human-readable summary.
    pub fn summary_text(&self) -> String {
        let mut s = format!(
            "runtime sweep: master_seed={} cases={} completed={} failed={}\n",
            self.master_seed,
            self.reports.len(),
            self.completed(),
            self.failures().len(),
        );
        for r in self.failures() {
            s.push_str(&format!(
                "  FAILURE seed={} ({} on {} under {}): {}\n",
                r.case.seed,
                r.case.program.name(),
                r.case.family,
                r.case.scenario.name,
                r.outcome,
            ));
        }
        s
    }
}

/// Runs `cases` seed-derived runtime cases with seeds drawn from
/// `master_seed`. Equivalent to [`sweep_with_threads`] with one thread.
pub fn sweep(master_seed: u64, cases: usize) -> RuntimeSweepSummary {
    sweep_with_threads(master_seed, cases, 1)
}

/// Runs a runtime seed sweep on `threads` worker threads. Case seeds are
/// derived up-front, workers claim indices from a shared atomic counter,
/// and reports are reassembled in case order — so the summary and every
/// per-case render are byte-identical for every thread count.
pub fn sweep_with_threads(master_seed: u64, cases: usize, threads: usize) -> RuntimeSweepSummary {
    let mut rng = DetRng::seed_from_u64(master_seed);
    let seeds: Vec<u64> = (0..cases).map(|_| rng.next_u64()).collect();
    let threads = threads.clamp(1, cases.max(1));
    if threads <= 1 {
        let reports = seeds
            .iter()
            .map(|&s| run_case(&RuntimeCase::from_seed(s)))
            .collect();
        return RuntimeSweepSummary {
            master_seed,
            reports,
        };
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let seeds = &seeds;
    let next = &next;
    let mut indexed: Vec<(usize, RuntimeCaseReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= seeds.len() {
                            break;
                        }
                        out.push((i, run_case(&RuntimeCase::from_seed(seeds[i]))));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("runtime sweep worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), cases);
    RuntimeSweepSummary {
        master_seed,
        reports: indexed.into_iter().map(|(_, r)| r).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_deterministic_and_async_only() {
        for seed in 0..32u64 {
            let a = RuntimeCase::from_seed(seed);
            let b = RuntimeCase::from_seed(seed);
            assert_eq!(a, b);
            assert!(a.scenario.is_async(), "seed {seed} drew a sync scenario");
        }
    }

    #[test]
    fn replay_is_byte_identical() {
        for seed in [1u64, 2, 3, 58, 59] {
            let (report, identical) = verify_replay(seed);
            assert!(identical, "seed {seed} diverged:\n{}", report.render());
        }
    }

    #[test]
    fn sweep_completes_and_is_thread_count_invariant() {
        let serial = sweep_with_threads(0xCAFE, 8, 1);
        assert_eq!(serial.completed(), 8, "{}", serial.summary_text());
        for threads in [2usize, 4] {
            let parallel = sweep_with_threads(0xCAFE, 8, threads);
            assert_eq!(parallel.summary_text(), serial.summary_text());
            for (a, b) in serial.reports.iter().zip(&parallel.reports) {
                assert_eq!(
                    a.render(),
                    b.render(),
                    "case seed {} diverged at {threads} threads",
                    a.case.seed
                );
            }
        }
    }

    #[test]
    fn completed_reports_embed_a_quiesced_runtime_report() {
        let summary = sweep(0x51EE7, 6);
        for r in &summary.reports {
            assert!(r.completed, "{}", r.render());
            assert!(
                r.runtime.contains("termination: detected"),
                "{}",
                r.render()
            );
            assert!(r.runtime.contains("in flight 0"), "{}", r.render());
        }
    }
}
