//! Deterministic seed sweep for the asynchronous actor runtime.
//!
//! The synchronous stress suite ([`crate::stress`]) derives a whole
//! adversarial execution from one `u64`; this module applies the same
//! recipe to the `adn-runtime` schedulers. A [`RuntimeCase`] names a
//! program (flooding actors, the line-to-tree actors, or one of the
//! committee algorithms — GraphToStar / GraphToWreath), a workload, an
//! *asynchronous* scenario (delivery reorder window, per-link delay,
//! asymmetric latency), a scheduler seed, and — for committee programs
//! under a fault-budgeted scenario — an armed [`FaultPlan`] of
//! crash/churn events, all drawn from a single case seed, so any
//! divergence found by a sweep is one replayable number.
//!
//! Every case runs on the [`SeededScheduler`]: its delivery order is a
//! pure function of the scheduler seed, so [`RuntimeCaseReport::render`]
//! is byte-identical across reruns and thread counts — exactly the
//! replay contract the synchronous suite gives, extended to executions
//! with no round structure at all.
//!
//! [`SeededScheduler`]: adn_runtime::SeededScheduler

use adn_core::algorithm::{self, DstConfig, EngineMode, RunConfig};
use adn_core::graph_to_wreath::WreathConfig;
use adn_core::subroutines::{
    run_runtime_line_to_tree_seeded, run_runtime_star_faulted, run_runtime_wreath_faulted,
    LineToTreeConfig,
};
use adn_graph::rng::DetRng;
use adn_graph::{GraphFamily, NodeId, UidAssignment, UidMap};
use adn_runtime::{AsyncKnobs, FaultKind, FaultPlan};
use adn_sim::dst::{self, Scenario};
use adn_sim::Network;

/// The actor program a runtime case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeProgram {
    /// Delta-forwarding token flooding (through the `flooding` registry
    /// entry, i.e. the full `EngineMode` dispatch path).
    Flooding,
    /// The message-driven line-to-tree actors
    /// ([`adn_core::subroutines::runtime_line_to_tree`]).
    LineToTree,
    /// The committee actors running GraphToStar
    /// ([`adn_core::subroutines::runtime_committee`]).
    Star,
    /// The committee actors running the wreath family (tree arity from
    /// [`RuntimeCase::arity`]).
    Wreath,
}

impl RuntimeProgram {
    /// Stable program identifier used in renders and sweep summaries.
    pub fn name(&self) -> &'static str {
        match self {
            RuntimeProgram::Flooding => "flooding",
            RuntimeProgram::LineToTree => "line_to_tree",
            RuntimeProgram::Star => "graph_to_star",
            RuntimeProgram::Wreath => "graph_to_wreath",
        }
    }

    /// Whether this program runs the committee actors (and therefore
    /// accepts an armed fault plan).
    pub fn is_committee(&self) -> bool {
        matches!(self, RuntimeProgram::Star | RuntimeProgram::Wreath)
    }
}

/// Workload families used for flooding cases — the connected subset, so
/// a clean run is always possible (flooding rejects disconnected
/// inputs).
const FLOOD_FAMILIES: [GraphFamily; 8] = [
    GraphFamily::Line,
    GraphFamily::Ring,
    GraphFamily::Star,
    GraphFamily::CompleteBinaryTree,
    GraphFamily::Grid,
    GraphFamily::RandomTree,
    GraphFamily::Caterpillar,
    GraphFamily::Hypercube,
];

/// Workload families for committee cases — the subset that honours the
/// requested node count exactly, so a crash target drawn from `0..n` is
/// always a valid node (Grid and Hypercube round `n`).
const COMMITTEE_FAMILIES: [GraphFamily; 4] = [
    GraphFamily::Line,
    GraphFamily::Ring,
    GraphFamily::RandomTree,
    GraphFamily::Caterpillar,
];

/// One fully specified asynchronous execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeCase {
    /// The single seed this case was derived from (0 for explicit cases).
    pub seed: u64,
    /// The actor program under test.
    pub program: RuntimeProgram,
    /// Workload family of the initial network (always `Line` for
    /// [`RuntimeProgram::LineToTree`]).
    pub family: GraphFamily,
    /// Requested node count (families may round it).
    pub n: usize,
    /// Seed for instance generation and the UID permutation.
    pub uid_seed: u64,
    /// The asynchronous scenario supplying the delivery knobs.
    pub scenario: Scenario,
    /// The scheduler seed (delivery order, delay jitter).
    pub sched_seed: u64,
    /// Tree arity for line-to-tree and wreath cases (ignored by
    /// flooding and GraphToStar).
    pub arity: usize,
    /// Armed fault events delivered by the scheduler mid-execution.
    /// Derived from the scenario's fault budget for committee programs;
    /// always empty for flooding and line-to-tree cases.
    pub faults: FaultPlan,
}

impl RuntimeCase {
    /// Derives a complete case from one `u64` — the unit of replay.
    ///
    /// # Panics
    ///
    /// Panics if the scenario registry contains no asynchronous
    /// scenarios (a registry regression).
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed);
        let program = match rng.gen_range(0, 4) {
            0 => RuntimeProgram::Flooding,
            1 => RuntimeProgram::LineToTree,
            2 => RuntimeProgram::Star,
            _ => RuntimeProgram::Wreath,
        };
        let family = match program {
            RuntimeProgram::Flooding => FLOOD_FAMILIES[rng.gen_range(0, FLOOD_FAMILIES.len())],
            RuntimeProgram::LineToTree => GraphFamily::Line,
            RuntimeProgram::Star | RuntimeProgram::Wreath => {
                COMMITTEE_FAMILIES[rng.gen_range(0, COMMITTEE_FAMILIES.len())]
            }
        };
        let n = rng.gen_range(8, 65);
        let uid_seed = (rng.next_u64() % 100_000) + 1;
        let pool: Vec<Scenario> = dst::scenarios()
            .into_iter()
            .filter(|s| s.is_async())
            .collect();
        assert!(!pool.is_empty(), "no asynchronous scenarios registered");
        let scenario = pool[rng.gen_range(0, pool.len())].clone();
        let sched_seed = rng.next_u64();
        let arity = 2 + rng.gen_range(0, 3);
        // Committee programs arm the scenario's fault budget as scheduler
        // step events; the other programs have no fault handling yet, so
        // their plans stay empty.
        let mut faults = FaultPlan::new();
        if program.is_committee() && scenario.fault_budget > 0 {
            let weight_total = (scenario.crash_weight + scenario.churn_weight) as usize;
            if weight_total > 0 {
                let events = 1 + rng.gen_range(0, scenario.fault_budget);
                for _ in 0..events {
                    // Committee phases take O(n) delivery steps each, so a
                    // window of 40·n steps lands faults across the whole
                    // run, from the first gossip through late merge phases.
                    let at_step = 1 + rng.gen_range(0, n * 40);
                    if rng.gen_range(0, weight_total) < scenario.crash_weight as usize {
                        faults = faults.crash_at(at_step, NodeId(rng.gen_range(0, n)));
                    } else {
                        faults = faults.join_at(at_step);
                    }
                }
            }
        }
        RuntimeCase {
            seed,
            program,
            family,
            n,
            uid_seed,
            scenario,
            sched_seed,
            arity,
            faults,
        }
    }
}

/// The result of running one [`RuntimeCase`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeCaseReport {
    /// The case that was run.
    pub case: RuntimeCase,
    /// Actual node count of the generated instance.
    pub n_actual: usize,
    /// A stable one-line digest of the program outcome (`completed …` or
    /// `failed: …`).
    pub outcome: String,
    /// Render of the scheduler's [`adn_runtime::RuntimeReport`] (empty
    /// when the run failed before the scheduler finished).
    pub runtime: String,
    /// Whether the run completed.
    pub completed: bool,
}

impl RuntimeCaseReport {
    /// Renders the full report to a stable string; replay equality is
    /// checked byte-for-byte on exactly this.
    pub fn render(&self) -> String {
        let knobs = AsyncKnobs::from_scenario(&self.case.scenario);
        let mut s = String::new();
        s.push_str(&format!(
            "runtime case seed={} program={} family={} n={} (actual {}) uid_seed={} \
             scenario={} sched_seed={} arity={}\n",
            self.case.seed,
            self.case.program.name(),
            self.case.family,
            self.case.n,
            self.n_actual,
            self.case.uid_seed,
            self.case.scenario.name,
            self.case.sched_seed,
            self.case.arity,
        ));
        s.push_str(&format!(
            "knobs: reorder_window={} max_link_delay={} asymmetric={}\n",
            knobs.reorder_window, knobs.max_link_delay, knobs.asymmetric_delay,
        ));
        if self.case.faults.is_empty() {
            s.push_str("faults: none\n");
        } else {
            s.push_str("faults:");
            for event in self.case.faults.events() {
                match event.kind {
                    FaultKind::Crash(node) => {
                        s.push_str(&format!(" crash({node})@{}", event.at_step))
                    }
                    FaultKind::Join => s.push_str(&format!(" join@{}", event.at_step)),
                }
            }
            s.push('\n');
        }
        s.push_str(&format!("outcome: {}\n", self.outcome));
        s.push_str(&self.runtime);
        s
    }
}

/// Runs one case on the seeded scheduler.
pub fn run_case(case: &RuntimeCase) -> RuntimeCaseReport {
    let graph = case.family.generate(case.n, case.uid_seed);
    let n_actual = graph.node_count();
    let uids = UidMap::new(
        n_actual,
        UidAssignment::RandomPermutation {
            seed: case.uid_seed,
        },
    );
    let mut network = Network::new(graph);
    let (outcome, runtime, completed) = match case.program {
        RuntimeProgram::Flooding => {
            let a = algorithm::find("flooding").expect("flooding is registered");
            let mut config = RunConfig::default().with_engine(EngineMode::Seeded {
                seed: case.sched_seed,
            });
            // The scenario is knob transport only: the network is *not*
            // armed, so no synchronous adversary competes with the
            // scheduler — `async_knobs` lifts the delivery knobs.
            config.dst = Some(DstConfig {
                scenario: case.scenario.clone(),
                seed: case.sched_seed,
            });
            match a.execute(&mut network, &uids, &config) {
                Ok(o) => {
                    let full = o.tokens_per_node.iter().filter(|&&t| t == n_actual).count();
                    let report = o.runtime.expect("async flooding reports its runtime");
                    (
                        format!(
                            "completed (leader {}, {}/{} nodes hold all tokens)",
                            o.leader, full, n_actual
                        ),
                        report.render(),
                        true,
                    )
                }
                Err(e) => (format!("failed: {e}"), String::new(), false),
            }
        }
        RuntimeProgram::LineToTree => {
            let line: Vec<NodeId> = (0..n_actual).map(NodeId).collect();
            let config = LineToTreeConfig {
                arity: case.arity,
                protected_edges: Default::default(),
            };
            let knobs = AsyncKnobs::from_scenario(&case.scenario);
            match run_runtime_line_to_tree_seeded(
                &mut network,
                &line,
                &config,
                case.sched_seed,
                knobs,
            ) {
                Ok((tree, report)) => (
                    format!(
                        "completed (tree depth {}, root {})",
                        tree.depth(),
                        tree.root()
                    ),
                    report.render(),
                    true,
                ),
                Err(e) => (format!("failed: {e}"), String::new(), false),
            }
        }
        RuntimeProgram::Star | RuntimeProgram::Wreath => {
            let config = RunConfig::default().with_engine(EngineMode::Seeded {
                seed: case.sched_seed,
            });
            let knobs = AsyncKnobs::from_scenario(&case.scenario);
            let result = match case.program {
                RuntimeProgram::Star => run_runtime_star_faulted(
                    &mut network,
                    &uids,
                    &config,
                    case.sched_seed,
                    knobs,
                    &case.faults,
                ),
                _ => {
                    let wreath = WreathConfig {
                        tree_arity: case.arity,
                        ..WreathConfig::binary()
                    };
                    run_runtime_wreath_faulted(
                        &mut network,
                        &uids,
                        &wreath,
                        &config,
                        case.sched_seed,
                        knobs,
                        &case.faults,
                    )
                }
            };
            match result {
                Ok(o) => {
                    let report = o
                        .runtime
                        .expect("async committee runs report their runtime");
                    (
                        format!(
                            "completed (leader {}, {} phases, committees per phase {:?})",
                            o.leader, o.phases, o.committees_per_phase
                        ),
                        report.render(),
                        true,
                    )
                }
                Err(e) => (format!("failed: {e}"), String::new(), false),
            }
        }
    };
    RuntimeCaseReport {
        case: case.clone(),
        n_actual,
        outcome,
        runtime,
        completed,
    }
}

/// Replays a seed-derived case; two calls with the same seed render
/// byte-identically.
pub fn replay(seed: u64) -> RuntimeCaseReport {
    run_case(&RuntimeCase::from_seed(seed))
}

/// Runs a seed twice and checks the two renders for byte equality.
pub fn verify_replay(seed: u64) -> (RuntimeCaseReport, bool) {
    let first = replay(seed);
    let second = replay(seed);
    let identical = first.render() == second.render();
    (first, identical)
}

/// Summary of a runtime seed sweep.
#[derive(Debug, Clone)]
pub struct RuntimeSweepSummary {
    /// The master seed the case seeds were derived from.
    pub master_seed: u64,
    /// All reports, in case order.
    pub reports: Vec<RuntimeCaseReport>,
}

impl RuntimeSweepSummary {
    /// Number of completed runs.
    pub fn completed(&self) -> usize {
        self.reports.iter().filter(|r| r.completed).count()
    }

    /// The failed reports.
    pub fn failures(&self) -> Vec<&RuntimeCaseReport> {
        self.reports.iter().filter(|r| !r.completed).collect()
    }

    /// A short human-readable summary.
    pub fn summary_text(&self) -> String {
        let mut s = format!(
            "runtime sweep: master_seed={} cases={} completed={} failed={}\n",
            self.master_seed,
            self.reports.len(),
            self.completed(),
            self.failures().len(),
        );
        for r in self.failures() {
            s.push_str(&format!(
                "  FAILURE seed={} ({} on {} under {} sched_seed={}): {}\n",
                r.case.seed,
                r.case.program.name(),
                r.case.family,
                r.case.scenario.name,
                r.case.sched_seed,
                r.outcome,
            ));
        }
        s
    }
}

/// Runs `cases` seed-derived runtime cases with seeds drawn from
/// `master_seed`. Equivalent to [`sweep_with_threads`] with one thread.
pub fn sweep(master_seed: u64, cases: usize) -> RuntimeSweepSummary {
    sweep_with_threads(master_seed, cases, 1)
}

/// Runs a runtime seed sweep on `threads` worker threads. Case seeds are
/// derived up-front, workers steal contiguous blocks of case indices from
/// a shared atomic counter (same discipline as
/// [`crate::stress::sweep_with_threads`]: workers capped at available
/// parallelism, one counter bump per block), and reports are reassembled
/// in case order — so the summary and every per-case render are
/// byte-identical for every thread count.
pub fn sweep_with_threads(master_seed: u64, cases: usize, threads: usize) -> RuntimeSweepSummary {
    let mut rng = DetRng::seed_from_u64(master_seed);
    let seeds: Vec<u64> = (0..cases).map(|_| rng.next_u64()).collect();
    let (threads, block) = crate::stress::sweep_partition(cases, threads);
    if threads <= 1 {
        let reports = seeds
            .iter()
            .map(|&s| run_case(&RuntimeCase::from_seed(s)))
            .collect();
        return RuntimeSweepSummary {
            master_seed,
            reports,
        };
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let seeds = &seeds;
    let next = &next;
    let mut indexed: Vec<(usize, RuntimeCaseReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let start = next.fetch_add(block, Ordering::Relaxed);
                        if start >= seeds.len() {
                            break;
                        }
                        let end = (start + block).min(seeds.len());
                        for (i, &seed) in seeds.iter().enumerate().take(end).skip(start) {
                            out.push((i, run_case(&RuntimeCase::from_seed(seed))));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("runtime sweep worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), cases);
    RuntimeSweepSummary {
        master_seed,
        reports: indexed.into_iter().map(|(_, r)| r).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_deterministic_and_async_only() {
        for seed in 0..32u64 {
            let a = RuntimeCase::from_seed(seed);
            let b = RuntimeCase::from_seed(seed);
            assert_eq!(a, b);
            assert!(a.scenario.is_async(), "seed {seed} drew a sync scenario");
            if a.program.is_committee() {
                assert!(
                    COMMITTEE_FAMILIES.contains(&a.family),
                    "seed {seed} drew a family that rounds n for a committee program"
                );
                for event in a.faults.events() {
                    if let FaultKind::Crash(node) = event.kind {
                        assert!(node.0 < a.n, "seed {seed} drew an out-of-range crash");
                    }
                }
            } else {
                assert!(
                    a.faults.is_empty(),
                    "seed {seed} armed faults on a non-committee program"
                );
            }
        }
    }

    #[test]
    fn replay_is_byte_identical() {
        // Seeds chosen to cover every program, including fault-armed
        // committee cases (30 = star + joins, 49 = wreath + joins).
        for seed in [26u64, 27, 28, 30, 34, 49] {
            let (report, identical) = verify_replay(seed);
            assert!(identical, "seed {seed} diverged:\n{}", report.render());
        }
    }

    #[test]
    fn sweep_completes_and_is_thread_count_invariant() {
        let serial = sweep_with_threads(0xCAFE, 8, 1);
        assert_eq!(serial.completed(), 8, "{}", serial.summary_text());
        for threads in [2usize, 4] {
            let parallel = sweep_with_threads(0xCAFE, 8, threads);
            assert_eq!(parallel.summary_text(), serial.summary_text());
            for (a, b) in serial.reports.iter().zip(&parallel.reports) {
                assert_eq!(
                    a.render(),
                    b.render(),
                    "case seed {} diverged at {threads} threads",
                    a.case.seed
                );
            }
        }
    }

    #[test]
    fn completed_reports_embed_a_quiesced_runtime_report() {
        let summary = sweep(0x51EE7, 6);
        for r in &summary.reports {
            assert!(r.completed, "{}", r.render());
            assert!(
                r.runtime.contains("termination: detected"),
                "{}",
                r.render()
            );
            assert!(r.runtime.contains("in flight 0"), "{}", r.render());
        }
    }

    #[test]
    fn crash_armed_committee_case_replays_and_degrades_cleanly() {
        // Seed-derived plans only ever join (the async pool's sole
        // fault-budgeted scenario is churn-weighted), so the crash half
        // of the armed fault path is pinned with an explicit case. The
        // crash lands mid-run; whichever way the schedule falls —
        // surviving to a star or degrading — the outcome must replay
        // byte-identically and any failure must be the clean error, not
        // a panic or a hang.
        let scenario = dst::find_scenario("async_churn").expect("async_churn is registered");
        let case = RuntimeCase {
            seed: 0,
            program: RuntimeProgram::Star,
            family: GraphFamily::Ring,
            n: 16,
            uid_seed: 21,
            scenario,
            sched_seed: 5,
            arity: 2,
            faults: FaultPlan::new().crash_at(900, NodeId(3)),
        };
        let first = run_case(&case);
        let second = run_case(&case);
        assert_eq!(first.render(), second.render(), "crash case diverged");
        assert!(
            first.render().contains("faults: crash(v3)@900"),
            "render must pin the fault plan:\n{}",
            first.render()
        );
        if !first.completed {
            assert!(
                first.outcome.starts_with("failed: "),
                "degraded run must fail cleanly: {}",
                first.outcome
            );
        }
    }
}
