//! Least-squares fitting of measured quantities against the complexity
//! shapes the paper's theorems predict.

use std::fmt;

/// Candidate asymptotic shapes `f(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Constant.
    One,
    /// `log n`.
    LogN,
    /// `log² n`.
    Log2N,
    /// `n`.
    N,
    /// `n log n`.
    NLogN,
    /// `n log² n`.
    NLog2N,
    /// `n²`.
    N2,
}

impl Shape {
    /// All candidate shapes in increasing asymptotic order.
    pub const ALL: [Shape; 7] = [
        Shape::One,
        Shape::LogN,
        Shape::Log2N,
        Shape::N,
        Shape::NLogN,
        Shape::NLog2N,
        Shape::N2,
    ];

    /// Evaluates the shape at `n`.
    pub fn eval(&self, n: usize) -> f64 {
        let nf = n.max(2) as f64;
        let log = nf.log2();
        match self {
            Shape::One => 1.0,
            Shape::LogN => log,
            Shape::Log2N => log * log,
            Shape::N => nf,
            Shape::NLogN => nf * log,
            Shape::NLog2N => nf * log * log,
            Shape::N2 => nf * nf,
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Shape::One => "1",
            Shape::LogN => "log n",
            Shape::Log2N => "log^2 n",
            Shape::N => "n",
            Shape::NLogN => "n log n",
            Shape::NLog2N => "n log^2 n",
            Shape::N2 => "n^2",
        };
        f.write_str(s)
    }
}

/// Outcome of fitting `y ≈ c · f(n)`.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The shape that minimises the relative residual.
    pub shape: Shape,
    /// The least-squares constant `c`.
    pub constant: f64,
    /// Mean relative error of the best fit (0 = perfect).
    pub mean_relative_error: f64,
}

/// Fits `y ≈ c · f(n)` for every candidate shape and returns the best one
/// by mean relative error. Returns `None` for fewer than two data points.
pub fn best_fit(points: &[(usize, f64)]) -> Option<FitResult> {
    if points.len() < 2 {
        return None;
    }
    let mut best: Option<FitResult> = None;
    for shape in Shape::ALL {
        // Least squares for y = c·f(n): c = Σ y·f / Σ f².
        let mut num = 0.0;
        let mut den = 0.0;
        for &(n, y) in points {
            let f = shape.eval(n);
            num += y * f;
            den += f * f;
        }
        if den == 0.0 {
            continue;
        }
        let c = num / den;
        let mut rel_err = 0.0;
        for &(n, y) in points {
            let pred = c * shape.eval(n);
            let denom = y.abs().max(1.0);
            rel_err += (pred - y).abs() / denom;
        }
        rel_err /= points.len() as f64;
        let candidate = FitResult {
            shape,
            constant: c,
            mean_relative_error: rel_err,
        };
        match &best {
            Some(b) if b.mean_relative_error <= rel_err => {}
            _ => best = Some(candidate),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(shape: Shape, c: f64) -> Vec<(usize, f64)> {
        [64usize, 128, 256, 512, 1024, 2048]
            .iter()
            .map(|&n| (n, c * shape.eval(n)))
            .collect()
    }

    #[test]
    fn recovers_linear_growth() {
        let fit = best_fit(&series(Shape::N, 3.0)).unwrap();
        assert_eq!(fit.shape, Shape::N);
        assert!((fit.constant - 3.0).abs() < 1e-6);
        assert!(fit.mean_relative_error < 1e-9);
    }

    #[test]
    fn recovers_n_log_n_growth() {
        let fit = best_fit(&series(Shape::NLogN, 0.7)).unwrap();
        assert_eq!(fit.shape, Shape::NLogN);
    }

    #[test]
    fn recovers_quadratic_growth() {
        let fit = best_fit(&series(Shape::N2, 0.5)).unwrap();
        assert_eq!(fit.shape, Shape::N2);
    }

    #[test]
    fn recovers_logarithmic_growth_with_noise() {
        let points: Vec<(usize, f64)> = [64usize, 256, 1024, 4096, 16384]
            .iter()
            .map(|&n| (n, 2.0 * (n as f64).log2() + 1.0))
            .collect();
        let fit = best_fit(&points).unwrap();
        assert_eq!(fit.shape, Shape::LogN);
    }

    #[test]
    fn too_few_points_is_none() {
        assert!(best_fit(&[(10, 1.0)]).is_none());
        assert!(best_fit(&[]).is_none());
    }

    #[test]
    fn shapes_display_and_order() {
        assert_eq!(Shape::NLogN.to_string(), "n log n");
        assert!(Shape::N2.eval(100) > Shape::NLog2N.eval(100));
        assert_eq!(Shape::One.eval(12345), 1.0);
    }
}
