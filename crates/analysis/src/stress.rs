//! The deterministic stress suite: algorithms × scenarios × seeds.
//!
//! A [`StressCase`] names everything one adversarial execution needs —
//! algorithm, workload family, size, UID seed, [`Scenario`] and adversary
//! seed. Crucially, a whole case can be derived from a *single* `u64`
//! ([`StressCase::from_seed`]), so any failure found by a seed sweep is
//! reported as one number and reproduced bit-for-bit by
//! [`replay`] — the FoundationDB recipe, applied to actively dynamic
//! networks.
//!
//! The harness tolerates every way a run can end under faults: clean
//! completion, a clean error (model violation, exhausted round budget) or
//! a panic inside the algorithm (caught, recorded, still deterministic).
//! The DST report (fault schedule + invariant violations) is harvested in
//! all three cases.
//!
//! [`minimize`] shrinks a failing case by bisecting the fault budget: the
//! adversary's RNG is only consumed while budget remains, so the schedule
//! under budget `b` is a prefix of the schedule under `B > b`, making the
//! failing-fault prefix well-defined.

use adn_core::algorithm::{self, arm_network_for_dst, DstConfig, RunConfig, TraceLevel};
use adn_graph::rng::DetRng;
use adn_graph::{GraphFamily, UidAssignment, UidMap};
use adn_sim::dst::{self, DstReport, Scenario};
use adn_sim::Network;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One fully specified adversarial execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StressCase {
    /// The single seed this case was derived from (0 when the case was
    /// constructed explicitly rather than via [`StressCase::from_seed`]).
    pub seed: u64,
    /// Registry id of the algorithm under test.
    pub algorithm: String,
    /// Workload family of the initial network.
    pub family: GraphFamily,
    /// Requested node count (families may round it).
    pub n: usize,
    /// Seed for instance generation and the UID permutation.
    pub uid_seed: u64,
    /// The adversarial environment.
    pub scenario: Scenario,
    /// Adversary seed.
    pub adversary_seed: u64,
    /// Hard round budget so every run terminates even when faults stall
    /// the algorithm.
    pub round_budget: usize,
}

impl StressCase {
    /// Derives a complete case from one `u64`: algorithm, family, size,
    /// UID seed, scenario and adversary seed are all drawn from the
    /// [`DetRng`] stream of `seed`. The same seed always produces the
    /// same case — this is the unit of replay.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed);
        let algorithms = algorithm::registry();
        let a = algorithms[rng.gen_range(0, algorithms.len())];
        // CutInHalf only supports spanning lines; every other algorithm
        // takes the full family roulette.
        let family = if a.spec().id == "centralized_cut_in_half" {
            GraphFamily::Line
        } else {
            GraphFamily::ALL[rng.gen_range(0, GraphFamily::ALL.len())]
        };
        let n = rng.gen_range(8, 41);
        let uid_seed = (rng.next_u64() % 100_000) + 1;
        let pool = dst::scenarios();
        let scenario = pool[rng.gen_range(0, pool.len())].clone();
        let adversary_seed = rng.next_u64();
        StressCase {
            seed,
            algorithm: a.spec().id.to_string(),
            family,
            n,
            uid_seed,
            scenario,
            adversary_seed,
            round_budget: 8 * n + 64,
        }
    }

    /// Constructs an explicit case (for matrix-style sweeps where the
    /// algorithm and scenario are pinned rather than seed-derived).
    pub fn explicit(
        algorithm: &str,
        family: GraphFamily,
        n: usize,
        uid_seed: u64,
        scenario: Scenario,
        adversary_seed: u64,
    ) -> Self {
        StressCase {
            seed: 0,
            algorithm: algorithm.to_string(),
            family,
            n,
            uid_seed,
            scenario,
            adversary_seed,
            round_budget: 8 * n + 64,
        }
    }
}

/// How an adversarial execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StressOutcome {
    /// The algorithm ran to completion.
    Completed {
        /// Rounds consumed.
        rounds: usize,
        /// Total edge activations.
        activations: usize,
    },
    /// The algorithm returned an error (model violation, exhausted round
    /// budget, rejected input — all legitimate under faults).
    Failed(String),
    /// The algorithm panicked; the panic was caught and recorded.
    Panicked(String),
}

impl StressOutcome {
    fn label(&self) -> String {
        match self {
            StressOutcome::Completed {
                rounds,
                activations,
            } => format!("completed (rounds {rounds}, activations {activations})"),
            StressOutcome::Failed(e) => format!("failed: {e}"),
            StressOutcome::Panicked(m) => format!("panicked: {m}"),
        }
    }
}

/// The result of running one [`StressCase`].
#[derive(Debug, Clone, PartialEq)]
pub struct StressReport {
    /// The case that was run.
    pub case: StressCase,
    /// Actual node count of the generated instance.
    pub n_actual: usize,
    /// How the execution ended.
    pub outcome: StressOutcome,
    /// The harvested DST report (fault schedule + violations).
    pub dst: DstReport,
}

impl StressReport {
    /// A run is *clean* when the algorithm completed and no invariant was
    /// violated. Fault-free scenarios must always be clean; under faults,
    /// `Failed` outcomes are expected and only invariant violations or
    /// panics count as suite failures (see [`StressReport::is_suite_failure`]).
    pub fn is_clean(&self) -> bool {
        matches!(self.outcome, StressOutcome::Completed { .. }) && self.dst.violations.is_empty()
    }

    /// True when this run should fail the stress suite: the algorithm
    /// panicked, or an invariant was violated in a failure-free world, or
    /// the run failed without a single injected fault to blame.
    pub fn is_suite_failure(&self) -> bool {
        match &self.outcome {
            StressOutcome::Panicked(_) => true,
            StressOutcome::Failed(_) => self.dst.faults.is_empty(),
            StressOutcome::Completed { .. } => {
                self.dst.faults.is_empty() && !self.dst.violations.is_empty()
            }
        }
    }

    /// Renders the full report to a stable string; replay equality is
    /// checked byte-for-byte on exactly this.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "case seed={} algorithm={} family={} n={} (actual {}) uid_seed={} \
             adversary_seed={} budget={}\n",
            self.case.seed,
            self.case.algorithm,
            self.case.family,
            self.case.n,
            self.n_actual,
            self.case.uid_seed,
            self.case.adversary_seed,
            self.case.round_budget,
        ));
        s.push_str(&format!("outcome: {}\n", self.outcome.label()));
        s.push_str(&self.dst.render());
        s
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one case: generates the instance, arms the network with the
/// scenario's adversary and the spec-derived invariant checker, executes
/// the algorithm (catching panics) and harvests the DST report.
///
/// # Panics
///
/// Panics if the case names an unregistered algorithm.
pub fn run_case(case: &StressCase) -> StressReport {
    run_case_with_trace(case, false)
}

/// Runs one case like [`run_case`], but with per-round tracing enabled
/// (`TraceLevel::PerRound`), so the traced `max_degree` path — the
/// incremental degree histogram plus its debug-build from-scratch oracle
/// — is exercised under the full adversarial schedule. Tracing is an
/// observer: the rendered report carries no trace data, so the render is
/// byte-identical to the untraced run of the same case (CI diffs a
/// traced slice against the untraced expectation on exactly this
/// property).
pub fn run_case_traced(case: &StressCase) -> StressReport {
    run_case_with_trace(case, true)
}

fn run_case_with_trace(case: &StressCase, traced: bool) -> StressReport {
    let a = algorithm::find(&case.algorithm)
        .unwrap_or_else(|| panic!("unregistered algorithm `{}`", case.algorithm));
    let graph = case.family.generate(case.n, case.uid_seed);
    let n_actual = graph.node_count();
    let uids = UidMap::new(
        n_actual,
        UidAssignment::RandomPermutation {
            seed: case.uid_seed,
        },
    );
    let mut network = Network::new(graph);
    let dcfg = DstConfig {
        scenario: case.scenario.clone(),
        seed: case.adversary_seed,
    };
    arm_network_for_dst(&mut network, &a.spec(), &uids, &dcfg);
    let mut config = RunConfig::default().with_round_budget(case.round_budget);
    if traced {
        config = config.with_trace(TraceLevel::PerRound);
    }

    let result = catch_unwind(AssertUnwindSafe(|| a.execute(&mut network, &uids, &config)));
    let (outcome, dst) = match result {
        Ok(Ok(o)) => {
            let report = o.dst.clone();
            (
                StressOutcome::Completed {
                    rounds: o.rounds,
                    activations: o.metrics.total_activations,
                },
                report,
            )
        }
        Ok(Err(e)) => (
            StressOutcome::Failed(e.to_string()),
            network.take_dst_report(),
        ),
        Err(payload) => (
            StressOutcome::Panicked(panic_message(payload)),
            network.take_dst_report(),
        ),
    };
    let dst = dst.unwrap_or_else(|| DstReport {
        scenario: case.scenario.name.clone(),
        seed: case.adversary_seed,
        rounds_checked: 0,
        crashed: Vec::new(),
        faults: Vec::new(),
        violations: Vec::new(),
    });
    StressReport {
        case: case.clone(),
        n_actual,
        outcome,
        dst,
    }
}

/// Replays a seed-derived case: `replay(seed)` re-runs exactly the
/// execution [`StressCase::from_seed`] describes. Two calls with the same
/// seed render byte-identically.
pub fn replay(seed: u64) -> StressReport {
    run_case(&StressCase::from_seed(seed))
}

/// Runs a seed twice and checks the two renders for byte equality.
/// Returns the first report plus the verdict.
pub fn verify_replay(seed: u64) -> (StressReport, bool) {
    let first = replay(seed);
    let second = replay(seed);
    let identical = first.render() == second.render();
    (first, identical)
}

/// Result of [`minimize`].
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The seed of the minimized case — paste it into [`replay`] (for
    /// seed-derived cases) or re-derive the case and shrink its budget to
    /// [`Minimized::minimal_budget`] to reproduce.
    pub seed: u64,
    /// Smallest fault budget that still reproduces a non-clean run.
    pub minimal_budget: usize,
    /// The fault budget the case originally carried.
    pub original_budget: usize,
    /// The report of the minimized run.
    pub report: StressReport,
}

/// Counts the minimized run's injected faults by kind, in a stable
/// order. Empty entries are omitted.
fn fault_histogram(faults: &[dst::FaultRecord]) -> Vec<(&'static str, usize)> {
    use adn_sim::dst::FaultEvent;
    let kinds = [
        "crash",
        "delete_edge",
        "insert_edge",
        "join",
        "skew",
        "partition",
        "heal",
    ];
    let mut counts = [0usize; 7];
    for f in faults {
        let k = match f.event {
            FaultEvent::CrashNode { .. } => 0,
            FaultEvent::DeleteEdge { .. } => 1,
            FaultEvent::InsertEdge { .. } => 2,
            FaultEvent::Join { .. } => 3,
            FaultEvent::Skew { .. } => 4,
            FaultEvent::Partition { .. } => 5,
            FaultEvent::Heal { .. } => 6,
        };
        counts[k] += 1;
    }
    kinds
        .into_iter()
        .zip(counts)
        .filter(|&(_, c)| c > 0)
        .collect()
}

impl Minimized {
    /// Renders the minimization result to a stable string: the minimized
    /// seed and budget, a histogram of the faults the minimal schedule
    /// actually injected, and the full minimized-run report. Suitable for
    /// pasting into a bug report — the first line alone reproduces the
    /// run.
    pub fn render(&self) -> String {
        let mut s = format!(
            "minimized: seed={} budget {} of {} ({} on {} under {})\n",
            self.seed,
            self.minimal_budget,
            self.original_budget,
            self.report.case.algorithm,
            self.report.case.family,
            self.report.case.scenario.name,
        );
        let histogram = fault_histogram(&self.report.dst.faults);
        if histogram.is_empty() {
            s.push_str("faults injected: none\n");
        } else {
            s.push_str("faults injected:");
            for (kind, count) in histogram {
                s.push_str(&format!(" {kind}={count}"));
            }
            s.push('\n');
        }
        s.push_str(&self.report.render());
        s
    }
}

/// Shrinks a failing case to the smallest fault budget whose run is
/// non-clean. Returns `None` when the case is clean at its original
/// budget (nothing to minimize).
///
/// The RNG-driven fault schedule under budget `b` is a prefix of the
/// schedule under any larger budget, but the runs *diverge after the
/// `b`-th fault* — a later fault can mask an earlier failure (e.g.
/// re-insert a deleted edge), so non-cleanliness is not necessarily
/// monotone in the budget. Partition scenarios bend the prefix property
/// further: the `Heal` half of a partition is budget-free (it consumes
/// neither budget nor RNG), so truncating the budget between a partition
/// and its heal still replays the heal — a smaller-budget run is not a
/// literal schedule prefix. The search therefore never *assumes*
/// prefix-closure: it scans upward from 0 (budgets are small) and returns
/// the report of the first budget it actually observed failing, so the
/// result is failing by construction — for partition/heal scenarios and
/// any future budget-bending fault alike — and exactly minimal: every
/// smaller budget was probed and ran clean.
pub fn minimize(case: &StressCase) -> Option<Minimized> {
    let run_with = |budget: usize| {
        let mut c = case.clone();
        c.scenario.fault_budget = budget;
        run_case(&c)
    };
    let full = run_with(case.scenario.fault_budget);
    if full.is_clean() {
        return None;
    }
    for budget in 0..case.scenario.fault_budget {
        let report = run_with(budget);
        if !report.is_clean() {
            return Some(Minimized {
                seed: case.seed,
                minimal_budget: budget,
                original_budget: case.scenario.fault_budget,
                report,
            });
        }
    }
    Some(Minimized {
        seed: case.seed,
        minimal_budget: case.scenario.fault_budget,
        original_budget: case.scenario.fault_budget,
        report: full,
    })
}

/// Summary of a seed sweep.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// The master seed the case seeds were derived from.
    pub master_seed: u64,
    /// All reports, in case order.
    pub reports: Vec<StressReport>,
}

impl SweepSummary {
    /// Number of cleanly completed runs.
    pub fn completed(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| matches!(r.outcome, StressOutcome::Completed { .. }))
            .count()
    }

    /// Number of runs that ended in a clean error.
    pub fn failed(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| matches!(r.outcome, StressOutcome::Failed(_)))
            .count()
    }

    /// Number of caught panics.
    pub fn panicked(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| matches!(r.outcome, StressOutcome::Panicked(_)))
            .count()
    }

    /// Number of runs with at least one invariant violation.
    pub fn with_violations(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| !r.dst.violations.is_empty())
            .count()
    }

    /// The suite failures (see [`StressReport::is_suite_failure`]).
    pub fn suite_failures(&self) -> Vec<&StressReport> {
        self.reports
            .iter()
            .filter(|r| r.is_suite_failure())
            .collect()
    }

    /// A short human-readable summary table.
    pub fn summary_text(&self) -> String {
        let mut s = format!(
            "DST sweep: master_seed={} cases={} completed={} failed={} panicked={} \
             with_violations={} suite_failures={}\n",
            self.master_seed,
            self.reports.len(),
            self.completed(),
            self.failed(),
            self.panicked(),
            self.with_violations(),
            self.suite_failures().len(),
        );
        for r in self.suite_failures() {
            s.push_str(&format!(
                "  FAILURE seed={} ({} on {} under {}): {}\n",
                r.case.seed,
                r.case.algorithm,
                r.case.family,
                r.case.scenario.name,
                r.outcome.label()
            ));
        }
        s
    }

    /// Serializes the sweep to a small JSON document (hand-rolled — the
    /// workspace is dependency-free), suitable for the `BENCH_dst.json`
    /// artifact.
    pub fn to_json(&self) -> String {
        use json_escape as esc;
        let failures: Vec<String> = self
            .suite_failures()
            .iter()
            .map(|r| {
                format!(
                    "{{\"seed\":{},\"algorithm\":\"{}\",\"family\":\"{}\",\"scenario\":\"{}\",\"outcome\":\"{}\"}}",
                    r.case.seed,
                    esc(&r.case.algorithm),
                    esc(r.case.family.name()),
                    esc(&r.case.scenario.name),
                    esc(&r.outcome.label()),
                )
            })
            .collect();
        format!(
            "{{\"master_seed\":{},\"cases\":{},\"completed\":{},\"failed\":{},\"panicked\":{},\
             \"with_violations\":{},\"total_faults_injected\":{},\"suite_failures\":[{}]}}",
            self.master_seed,
            self.reports.len(),
            self.completed(),
            self.failed(),
            self.panicked(),
            self.with_violations(),
            self.reports
                .iter()
                .map(|r| r.dst.faults.len())
                .sum::<usize>(),
            failures.join(","),
        )
    }
}

/// Escapes a string for embedding in the workspace's hand-rolled JSON
/// artifacts (`BENCH_dst.json`, `BENCH_core.json`) — the workspace is
/// dependency-free, so this is the one shared escaper.
pub fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Runs `cases` seed-derived cases, with case seeds drawn from
/// `master_seed`'s [`DetRng`] stream. Every failure is reported with its
/// own `u64` case seed, replayable via [`replay`].
///
/// Equivalent to [`sweep_with_threads`] with one thread.
pub fn sweep(master_seed: u64, cases: usize) -> SweepSummary {
    sweep_with_threads(master_seed, cases, 1)
}

/// Runs the first `cases` cases of a sweep with per-round tracing
/// enabled (see [`run_case_traced`]) — the CI traced stress-sweep slice.
/// Tracing never reaches the rendered reports, so the summary renders
/// byte-identically to the untraced sweep's prefix of the same length;
/// what the slice adds is coverage of the traced `max_degree` path (and
/// its debug-build oracle) under real adversarial schedules.
pub fn sweep_traced(master_seed: u64, cases: usize) -> SweepSummary {
    let reports = case_seeds(master_seed, cases)
        .iter()
        .map(|&s| run_case_traced(&StressCase::from_seed(s)))
        .collect();
    SweepSummary {
        master_seed,
        reports,
    }
}

/// Derives the per-case seeds of a sweep (the only part that consumes the
/// master RNG; cases are then fully independent, which is what makes the
/// sweep embarrassingly parallel).
fn case_seeds(master_seed: u64, cases: usize) -> Vec<u64> {
    let mut rng = DetRng::seed_from_u64(master_seed);
    (0..cases).map(|_| rng.next_u64()).collect()
}

/// The number of blocks each sweep worker should expect to claim: small
/// enough that the atomic counter is touched a handful of times per
/// worker instead of once per case, large enough that a straggler block
/// cannot serialize the tail of the sweep.
pub(crate) const SWEEP_BLOCKS_PER_WORKER: usize = 8;

/// Picks the effective worker count and stealing block size for a sweep
/// of `cases` cases on `threads` requested workers. Workers are capped at
/// the machine's available parallelism — oversubscribing a CPU-bound
/// sweep only adds scheduling overhead (the old `threads=2` regression on
/// small machines) — and cases are claimed in contiguous blocks rather
/// than one at a time.
pub(crate) fn sweep_partition(cases: usize, threads: usize) -> (usize, usize) {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = threads.clamp(1, cases.max(1)).min(hw);
    let block = cases
        .div_ceil(workers.max(1) * SWEEP_BLOCKS_PER_WORKER)
        .max(1);
    (workers, block)
}

/// Runs a seed sweep on a pool of `threads` worker threads
/// (`std::thread`, no external dependencies). Case seeds are derived
/// up-front from the master RNG, workers steal contiguous *blocks* of
/// case indices from a shared atomic counter (one counter bump per block,
/// not per case), and reports are reassembled in case order — so the
/// returned [`SweepSummary`] (and therefore `summary_text`/`to_json` and
/// every per-case [`StressReport::render`]) is byte-identical for every
/// thread count, including 1.
///
/// `threads` is clamped to `[1, cases]` and to the machine's available
/// parallelism (oversubscription only slows a CPU-bound sweep down);
/// `0` means one thread.
pub fn sweep_with_threads(master_seed: u64, cases: usize, threads: usize) -> SweepSummary {
    let seeds = case_seeds(master_seed, cases);
    let (threads, block) = sweep_partition(cases, threads);
    if threads <= 1 {
        let reports = seeds
            .iter()
            .map(|&s| run_case(&StressCase::from_seed(s)))
            .collect();
        return SweepSummary {
            master_seed,
            reports,
        };
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let seeds = &seeds;
    let next = &next;
    let mut indexed: Vec<(usize, StressReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let start = next.fetch_add(block, Ordering::Relaxed);
                        if start >= seeds.len() {
                            break;
                        }
                        let end = (start + block).min(seeds.len());
                        for (i, &seed) in seeds.iter().enumerate().take(end).skip(start) {
                            out.push((i, run_case(&StressCase::from_seed(seed))));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), cases);
    SweepSummary {
        master_seed,
        reports: indexed.into_iter().map(|(_, r)| r).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_deterministic() {
        let a = StressCase::from_seed(17);
        let b = StressCase::from_seed(17);
        assert_eq!(a, b);
        let c = StressCase::from_seed(18);
        assert_ne!(a, c);
    }

    #[test]
    fn failure_free_runs_are_clean() {
        for algorithm in adn_core::algorithm::registry() {
            let family = if algorithm.spec().id == "centralized_cut_in_half" {
                GraphFamily::Line
            } else {
                GraphFamily::Ring
            };
            let case = StressCase::explicit(
                algorithm.spec().id,
                family,
                20,
                3,
                Scenario::failure_free(),
                99,
            );
            let report = run_case(&case);
            assert!(
                report.is_clean(),
                "{} under failure_free: {}",
                algorithm.spec().id,
                report.render()
            );
            assert!(!report.is_suite_failure());
        }
    }

    #[test]
    fn replay_is_byte_identical() {
        for seed in [1u64, 2, 3, 40, 41] {
            let (report, identical) = verify_replay(seed);
            assert!(identical, "seed {seed} diverged:\n{}", report.render());
        }
    }

    #[test]
    fn minimizer_finds_a_minimal_failing_budget() {
        // Crashing an interior node of a line disconnects it: flooding
        // then cannot complete, and the connectivity invariant records a
        // violation — a guaranteed non-clean case.
        let scenario = Scenario {
            per_round_probability: 1.0,
            ..Scenario::crash_stop().with_fault_budget(6)
        };
        let case = StressCase::explicit("flooding", GraphFamily::Line, 16, 1, scenario, 12345);
        let full = run_case(&case);
        assert!(!full.is_clean(), "{}", full.render());
        let minimized = minimize(&case).expect("a failing case must minimize");
        assert!(minimized.minimal_budget >= 1, "budget 0 is failure-free");
        assert!(minimized.minimal_budget <= 6);
        assert!(!minimized.report.is_clean());
        // The render leads with the reproduction line and histograms the
        // injected faults (a pure-crash scenario injects only crashes).
        let rendered = minimized.render();
        assert!(
            rendered.starts_with(&format!(
                "minimized: seed=0 budget {} of 6",
                minimized.minimal_budget
            )),
            "{rendered}"
        );
        assert!(rendered.contains("faults injected: crash="), "{rendered}");
        assert!(!rendered.contains("delete_edge="), "{rendered}");
        assert!(rendered.contains("outcome:"), "{rendered}");
        // The minimal budget really is minimal: one less fault is clean.
        let mut below = case.clone();
        below.scenario.fault_budget = minimized.minimal_budget - 1;
        assert!(run_case(&below).is_clean(), "{}", run_case(&below).render());
    }

    #[test]
    fn minimizer_returns_a_failing_budget_for_partition_scenarios() {
        // Regression guard for the budget-free heal: `partition_heal`
        // schedules its `Heal` without consuming budget or RNG, so a
        // smaller-budget run is *not* a literal prefix of the original
        // schedule. The minimizer must still return a budget whose run it
        // observed failing — never a "minimal" budget that runs clean.
        let scenario = Scenario {
            per_round_probability: 1.0,
            ..dst::find_scenario("partition_heal")
                .expect("registered scenario")
                .with_fault_budget(4)
        };
        let mut minimized_some = 0usize;
        for adversary_seed in 0..40u64 {
            let case = StressCase::explicit(
                "graph_to_star",
                GraphFamily::SparseRandom,
                18,
                3,
                scenario.clone(),
                adversary_seed,
            );
            let full = run_case(&case);
            if full.is_clean() {
                continue;
            }
            let minimized = minimize(&case).expect("non-clean case must minimize");
            minimized_some += 1;
            assert!(
                !minimized.report.is_clean(),
                "seed {adversary_seed}: minimize returned a clean \"minimal\" budget {}:\n{}",
                minimized.minimal_budget,
                minimized.report.render()
            );
            assert!(minimized.minimal_budget <= case.scenario.fault_budget);
            // Exact minimality: every smaller budget runs clean.
            for below in 0..minimized.minimal_budget {
                let mut c = case.clone();
                c.scenario.fault_budget = below;
                assert!(
                    run_case(&c).is_clean(),
                    "seed {adversary_seed}: budget {below} already fails, {} is not minimal",
                    minimized.minimal_budget
                );
            }
        }
        assert!(
            minimized_some >= 3,
            "only {minimized_some} of 40 partition cases were non-clean — \
             the regression guard never exercised the minimizer"
        );
    }

    #[test]
    fn sweep_output_is_identical_across_thread_counts() {
        let serial = sweep_with_threads(0xAB1E, 10, 1);
        for threads in [2usize, 4, 16] {
            let parallel = sweep_with_threads(0xAB1E, 10, threads);
            assert_eq!(parallel.master_seed, serial.master_seed);
            assert_eq!(parallel.reports.len(), serial.reports.len());
            assert_eq!(
                parallel.summary_text(),
                serial.summary_text(),
                "aggregate diverged at {threads} threads"
            );
            assert_eq!(parallel.to_json(), serial.to_json());
            for (a, b) in serial.reports.iter().zip(&parallel.reports) {
                assert_eq!(
                    a.render(),
                    b.render(),
                    "case seed {} diverged at {threads} threads",
                    a.case.seed
                );
            }
        }
        // `sweep` is the one-thread path.
        let plain = sweep(0xAB1E, 10);
        assert_eq!(plain.to_json(), serial.to_json());
    }

    #[test]
    fn sweep_reports_are_individually_replayable() {
        let summary = sweep(0xD57, 12);
        assert_eq!(summary.reports.len(), 12);
        for report in &summary.reports {
            let again = replay(report.case.seed);
            assert_eq!(
                report.render(),
                again.render(),
                "case seed {} is not reproducible",
                report.case.seed
            );
        }
        let json = summary.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cases\":12"));
    }
}
