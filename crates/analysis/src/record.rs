//! Run records: one row per (algorithm, workload, n, seed) execution.

use adn_core::algorithm::{self, ReconfigurationAlgorithm, RunConfig};
use adn_core::{CoreError, TransformationOutcome};
use adn_graph::{Graph, GraphFamily, UidAssignment, UidMap};
use std::fmt;

/// The algorithms compared by the experiment tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// GraphToStar (Section 3).
    GraphToStar,
    /// GraphToWreath (Section 4).
    GraphToWreath,
    /// GraphToThinWreath (Section 5).
    GraphToThinWreath,
    /// The clique-formation straw-man (Section 1.2).
    CliqueFormation,
    /// The centralized Euler-tour + CutInHalf strategy (Theorem 6.3).
    CentralizedEuler,
}

impl Algorithm {
    /// All algorithms in canonical comparison order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::GraphToStar,
        Algorithm::GraphToWreath,
        Algorithm::GraphToThinWreath,
        Algorithm::CliqueFormation,
        Algorithm::CentralizedEuler,
    ];

    /// The three distributed algorithms of the paper.
    pub const DISTRIBUTED: [Algorithm; 3] = [
        Algorithm::GraphToStar,
        Algorithm::GraphToWreath,
        Algorithm::GraphToThinWreath,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::GraphToStar => "GraphToStar",
            Algorithm::GraphToWreath => "GraphToWreath",
            Algorithm::GraphToThinWreath => "GraphToThinWreath",
            Algorithm::CliqueFormation => "CliqueFormation",
            Algorithm::CentralizedEuler => "Centralized(Euler+CutInHalf)",
        }
    }

    /// The registry id of the underlying [`ReconfigurationAlgorithm`].
    pub fn id(&self) -> &'static str {
        match self {
            Algorithm::GraphToStar => "graph_to_star",
            Algorithm::GraphToWreath => "graph_to_wreath",
            Algorithm::GraphToThinWreath => "graph_to_thin_wreath",
            Algorithm::CliqueFormation => "clique_formation",
            Algorithm::CentralizedEuler => "centralized_general",
        }
    }

    /// The registered algorithm implementing this table entry.
    pub fn algorithm(&self) -> &'static dyn ReconfigurationAlgorithm {
        algorithm::find(self.id()).expect("table algorithms are registered")
    }

    /// Runs the algorithm on the given instance with the default
    /// [`RunConfig`] (for `CentralizedEuler`, that means prune-to-tree).
    ///
    /// # Errors
    ///
    /// Propagates the underlying algorithm errors.
    pub fn run(&self, graph: &Graph, uids: &UidMap) -> Result<TransformationOutcome, CoreError> {
        self.algorithm().run(graph, uids, &RunConfig::default())
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of measurements.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Algorithm executed.
    pub algorithm: Algorithm,
    /// Workload family name.
    pub family: String,
    /// Number of nodes of the instance actually generated.
    pub n: usize,
    /// Seed used for the instance and the UID permutation.
    pub seed: u64,
    /// Rounds consumed.
    pub rounds: usize,
    /// Phases (0 when not phase-structured).
    pub phases: usize,
    /// Total edge activations.
    pub total_activations: usize,
    /// Maximum concurrently-active activated (non-initial) edges.
    pub max_activated_edges: usize,
    /// Maximum activated degree.
    pub max_activated_degree: usize,
    /// Maximum total degree observed.
    pub max_total_degree: usize,
    /// Diameter of the final network.
    pub final_diameter: Option<usize>,
    /// Whether the elected leader is the maximum-UID node.
    pub leader_ok: bool,
}

impl RunRecord {
    /// Runs `algorithm` on one instance of `family` and records the result.
    ///
    /// # Errors
    ///
    /// Propagates algorithm errors.
    pub fn measure(
        algorithm: Algorithm,
        family: GraphFamily,
        n: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let graph = family.generate(n, seed);
        let actual_n = graph.node_count();
        let uids = UidMap::new(actual_n, UidAssignment::RandomPermutation { seed });
        let outcome = algorithm.run(&graph, &uids)?;
        Ok(RunRecord::from_outcome(
            algorithm,
            family.name().to_string(),
            actual_n,
            seed,
            &uids,
            &outcome,
        ))
    }

    /// Builds a record from an already-computed outcome.
    pub fn from_outcome(
        algorithm: Algorithm,
        family: String,
        n: usize,
        seed: u64,
        uids: &UidMap,
        outcome: &TransformationOutcome,
    ) -> Self {
        RunRecord {
            algorithm,
            family,
            n,
            seed,
            rounds: outcome.rounds,
            phases: outcome.phases,
            total_activations: outcome.metrics.total_activations,
            max_activated_edges: outcome.metrics.max_activated_edges,
            max_activated_degree: outcome.metrics.max_activated_degree,
            max_total_degree: outcome.metrics.max_total_degree,
            final_diameter: outcome.final_diameter(),
            leader_ok: uids.max_uid_node() == Some(outcome.leader),
        }
    }

    /// Sweeps `(n, seed)` pairs for one algorithm/family combination.
    ///
    /// # Errors
    ///
    /// Propagates the first algorithm error encountered.
    pub fn sweep(
        algorithm: Algorithm,
        family: GraphFamily,
        sizes: &[usize],
        seeds: &[u64],
    ) -> Result<Vec<RunRecord>, CoreError> {
        let mut out = Vec::with_capacity(sizes.len() * seeds.len());
        for &n in sizes {
            for &seed in seeds {
                out.push(RunRecord::measure(algorithm, family, n, seed)?);
            }
        }
        Ok(out)
    }
}

/// Formats a slice of records as a GitHub-flavoured markdown table.
pub fn markdown_table(records: &[RunRecord]) -> String {
    let mut s = String::new();
    s.push_str(
        "| algorithm | family | n | rounds | phases | total act. | max act. edges | max act. deg | max deg | final diam | leader ok |\n",
    );
    s.push_str("|---|---|---|---|---|---|---|---|---|---|---|\n");
    for r in records {
        s.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.algorithm,
            r.family,
            r.n,
            r.rounds,
            r.phases,
            r.total_activations,
            r.max_activated_edges,
            r.max_activated_degree,
            r.max_total_degree,
            r.final_diameter.map_or("-".to_string(), |d| d.to_string()),
            if r.leader_ok { "yes" } else { "no" },
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_consistent_records() {
        let r = RunRecord::measure(Algorithm::GraphToStar, GraphFamily::Line, 32, 1).unwrap();
        assert_eq!(r.n, 32);
        assert!(r.leader_ok);
        assert_eq!(r.final_diameter, Some(2));
        assert!(r.rounds > 0);
        let table = markdown_table(&[r]);
        assert!(table.contains("GraphToStar"));
        assert!(table.contains("| line |"));
    }

    #[test]
    fn all_algorithms_run_on_a_small_ring() {
        for alg in Algorithm::ALL {
            let r = RunRecord::measure(alg, GraphFamily::Ring, 24, 3).unwrap();
            assert!(r.leader_ok, "{alg} elected the wrong leader");
            assert!(r.final_diameter.is_some(), "{alg} disconnected the network");
        }
    }

    #[test]
    fn sweep_covers_all_combinations() {
        let records = RunRecord::sweep(
            Algorithm::CentralizedEuler,
            GraphFamily::Line,
            &[8, 16],
            &[1, 2],
        )
        .unwrap();
        assert_eq!(records.len(), 4);
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }
}
