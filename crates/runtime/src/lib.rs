//! # adn-runtime
//!
//! Actor-based **asynchronous** execution for actively dynamic networks.
//!
//! The paper's algorithms are specified in synchronous rounds and the
//! `adn-sim` engine runs them in lock step. This crate drops the round
//! barrier: every node is an actor with an inbox, local state and a
//! message handler ([`AsyncProgram`]), and message delivery is driven by
//! a pluggable scheduler:
//!
//! * [`SeededScheduler`] — single-threaded discrete-event delivery whose
//!   entire order (including reordering, per-link delays and asymmetric
//!   link latency) derives from **one `u64`** via the workspace's
//!   deterministic RNG. Runs replay byte-identically, preserving the
//!   DST replay/shrink discipline of the synchronous sweep.
//! * [`FreeScheduler`] — real threads over `std::sync::mpsc` channels,
//!   free-running delivery, for hardware-throughput numbers.
//!
//! Runs quiesce without a round counter via **Dijkstra–Scholten
//! termination detection** ([`termination`]): the scheduler acts as the
//! root of a diffusing computation, every application message carries an
//! ack obligation, and the run ends exactly when the root's deficit
//! reaches zero — at which point no message is in flight (property-tested
//! in `tests/runtime_model.rs`).
//!
//! Edge operations requested by a handler ([`Context::activate`] /
//! [`Context::deactivate`]) are staged and committed through the
//! validated [`adn_sim::Network`] API atomically with respect to other
//! handlers, so the distance-2 activation rule is enforced exactly as in
//! the synchronous engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod adapter;
pub mod fault;
pub mod flood;
pub mod free;
pub mod seeded;
pub mod termination;

pub use actor::{AsyncProgram, Context, Envelope};
pub use adapter::SyncAdapter;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use flood::FloodActor;
pub use free::FreeScheduler;
pub use seeded::SeededScheduler;

use adn_sim::dst::Scenario;
use adn_sim::SimError;
use std::error::Error;
use std::fmt;

/// Delivery-perturbation knobs for the asynchronous schedulers, normally
/// lifted from a [`Scenario`]'s async fields (see
/// [`AsyncKnobs::from_scenario`]). All zero/false means "earliest first,
/// no reordering".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncKnobs {
    /// The seeded scheduler picks each delivery uniformly among the first
    /// `max(1, reorder_window)` in-flight messages in readiness order.
    pub reorder_window: usize,
    /// Maximum extra per-message delay (in scheduler steps), drawn
    /// uniformly from `0..=max_link_delay` per message.
    pub max_link_delay: usize,
    /// Give every ordered link a fixed base latency in
    /// `0..=2*max_link_delay`, derived deterministically from the
    /// scheduler seed — the two directions of a link run at persistently
    /// different speeds.
    pub asymmetric_delay: bool,
}

impl AsyncKnobs {
    /// Lifts the asynchronous delivery knobs out of a scenario (the fault
    /// weights and budgets are the synchronous adversary's business and
    /// are ignored here).
    pub fn from_scenario(scenario: &Scenario) -> Self {
        AsyncKnobs {
            reorder_window: scenario.reorder_window,
            max_link_delay: scenario.max_link_delay,
            asymmetric_delay: scenario.asymmetric_delay,
        }
    }
}

/// Errors raised by the asynchronous runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// An edge operation requested by a handler was rejected by the
    /// network (distance-2 violation, unknown node, …).
    Sim(SimError),
    /// The seeded scheduler exceeded its delivery-step budget without the
    /// termination detector firing.
    DidNotQuiesce {
        /// Deliveries performed before giving up.
        steps: usize,
    },
    /// The free scheduler's wall-clock timeout elapsed before the
    /// termination detector fired.
    TimedOut,
    /// Malformed run setup (program count vs. network size, …).
    InvalidInput {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Sim(e) => write!(f, "simulator error: {e}"),
            RuntimeError::DidNotQuiesce { steps } => {
                write!(f, "run did not quiesce within {steps} delivery steps")
            }
            RuntimeError::TimedOut => write!(f, "free-running execution timed out"),
            RuntimeError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RuntimeError {
    fn from(value: SimError) -> Self {
        RuntimeError::Sim(value)
    }
}

/// What a completed asynchronous run did, with a stable
/// [`render`](RuntimeReport::render) for the seeded replay gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeReport {
    /// `"seeded"` or `"free"`.
    pub scheduler: &'static str,
    /// The scheduler seed (seeded runs only).
    pub seed: Option<u64>,
    /// Worker threads (free runs only).
    pub threads: Option<usize>,
    /// Number of actors.
    pub n: usize,
    /// Envelope deliveries performed (start + application + ack).
    pub steps: usize,
    /// Application messages delivered.
    pub app_messages: usize,
    /// Acknowledgements delivered (Dijkstra–Scholten bookkeeping).
    pub acks: usize,
    /// Edge-operation rounds committed on the network.
    pub commits: usize,
    /// Edge activations staged by handlers.
    pub activations: usize,
    /// Edge deactivations staged by handlers.
    pub deactivations: usize,
    /// Messages still in flight when the termination detector fired
    /// (provably zero — exposed so the property test can assert it).
    pub in_flight_at_detection: usize,
}

impl RuntimeReport {
    /// Renders the report as stable text. For seeded runs this is the
    /// byte-identity replay artifact (same seed ⇒ same bytes); free runs
    /// render too but their counters are timing-dependent.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("runtime: scheduler {}", self.scheduler));
        if let Some(seed) = self.seed {
            out.push_str(&format!(" seed {seed}"));
        }
        if let Some(threads) = self.threads {
            out.push_str(&format!(" threads {threads}"));
        }
        out.push_str(&format!(" · n {}\n", self.n));
        out.push_str(&format!(
            "  steps {} · app messages {} · acks {}\n",
            self.steps, self.app_messages, self.acks
        ));
        out.push_str(&format!(
            "  commits {} · activations {} · deactivations {}\n",
            self.commits, self.activations, self.deactivations
        ));
        out.push_str(&format!(
            "  termination: detected (Dijkstra–Scholten) · in flight {}\n",
            self.in_flight_at_detection
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_lift_from_scenario() {
        let s = Scenario::async_asymmetric();
        let k = AsyncKnobs::from_scenario(&s);
        assert!(k.asymmetric_delay);
        assert_eq!(k.max_link_delay, s.max_link_delay);
        let clean = AsyncKnobs::from_scenario(&Scenario::failure_free());
        assert_eq!(clean, AsyncKnobs::default());
    }

    #[test]
    fn report_render_is_stable() {
        let report = RuntimeReport {
            scheduler: "seeded",
            seed: Some(7),
            threads: None,
            n: 4,
            steps: 12,
            app_messages: 5,
            acks: 5,
            commits: 2,
            activations: 2,
            deactivations: 1,
            in_flight_at_detection: 0,
        };
        let text = report.render();
        assert!(text.contains("scheduler seeded seed 7 · n 4"));
        assert!(text.contains("in flight 0"));
        assert_eq!(text, report.clone().render());
    }
}
