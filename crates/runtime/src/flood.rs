//! Native asynchronous flooding (all-to-all token dissemination).
//!
//! Unlike the synchronous baseline — which rebroadcasts a node's entire
//! known set to every neighbour every round, Θ(n³) token-hops on a line —
//! the actor forwards only **newly learned** tokens, and only to the
//! neighbours that did not just teach them. Token sets grow
//! monotonically and merging is commutative, associative and idempotent,
//! so the final state (every node knows every token) is independent of
//! delivery order: any scheduler, any knobs, same outcome as the
//! synchronous baseline. This delta structure is what the free-running
//! scheduler's throughput numbers measure.

use crate::actor::{AsyncProgram, Context};
use adn_graph::{NodeId, Uid};

/// Asynchronous flooding actor: learns the multiset of all UIDs in the
/// network by delta-forwarding.
#[derive(Debug, Clone)]
pub struct FloodActor {
    own: Uid,
    neighbors: Vec<NodeId>,
    /// Every token seen so far, ascending.
    known: Vec<Uid>,
    /// Scratch for the two-pointer merge.
    scratch: Vec<Uid>,
}

impl FloodActor {
    /// Actor for a node with UID `own` and the given (static) neighbours.
    pub fn new(own: Uid, neighbors: Vec<NodeId>) -> Self {
        FloodActor {
            own,
            neighbors,
            known: vec![own],
            scratch: Vec::new(),
        }
    }

    /// Tokens learned so far, ascending.
    pub fn known(&self) -> &[Uid] {
        &self.known
    }

    /// Merges `incoming` (sorted) into `known`, returning the genuinely
    /// new tokens (sorted).
    fn absorb(&mut self, incoming: &[Uid]) -> Vec<Uid> {
        let mut fresh = Vec::new();
        self.scratch.clear();
        self.scratch.reserve(self.known.len() + incoming.len());
        let (mut i, mut j) = (0, 0);
        while i < self.known.len() || j < incoming.len() {
            match (self.known.get(i), incoming.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    self.scratch.push(a);
                    i += 1;
                    j += 1;
                }
                (Some(&a), Some(&b)) if a < b => {
                    self.scratch.push(a);
                    i += 1;
                }
                (_, Some(&b)) => {
                    self.scratch.push(b);
                    fresh.push(b);
                    j += 1;
                }
                (Some(&a), None) => {
                    self.scratch.push(a);
                    i += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        std::mem::swap(&mut self.known, &mut self.scratch);
        fresh
    }
}

impl AsyncProgram for FloodActor {
    type Message = Vec<Uid>;

    fn on_start(&mut self, ctx: &mut Context<Vec<Uid>>) {
        let token = vec![self.own];
        for &nb in &self.neighbors {
            ctx.send(nb, token.clone());
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Vec<Uid>, ctx: &mut Context<Vec<Uid>>) {
        let fresh = self.absorb(&msg);
        if fresh.is_empty() {
            return;
        }
        for &nb in &self.neighbors {
            if nb != from {
                ctx.send(nb, fresh.clone());
            }
        }
    }
}

/// Builds one [`FloodActor`] per node from a static graph and UID map.
pub fn flood_actors(graph: &adn_graph::Graph, uids: &adn_graph::UidMap) -> Vec<FloodActor> {
    (0..graph.node_count())
        .map(|i| {
            let id = NodeId(i);
            FloodActor::new(uids.uid(id), graph.neighbors_slice(id).to_vec())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsyncKnobs, FreeScheduler, SeededScheduler};
    use adn_graph::{generators, UidMap};
    use adn_sim::network::Network;

    fn uid_map(n: usize, seed: u64) -> UidMap {
        UidMap::new(n, adn_graph::UidAssignment::RandomPermutation { seed })
    }

    #[test]
    fn every_actor_learns_every_token_seeded() {
        let n = 24;
        let graph = generators::ring(n);
        let uids = uid_map(n, 5);
        let mut expected: Vec<Uid> = (0..n).map(|i| uids.uid(NodeId(i))).collect();
        expected.sort_unstable();
        for seed in [1u64, 2, 3] {
            let mut network = Network::new(graph.clone());
            let mut actors = flood_actors(&graph, &uids);
            let knobs = AsyncKnobs {
                reorder_window: 5,
                max_link_delay: 2,
                asymmetric_delay: true,
            };
            let report = SeededScheduler::new(seed)
                .with_knobs(knobs)
                .run(&mut network, &mut actors)
                .expect("run");
            assert_eq!(report.in_flight_at_detection, 0);
            for actor in &actors {
                assert_eq!(actor.known(), expected.as_slice(), "seed {seed}");
            }
        }
    }

    #[test]
    fn every_actor_learns_every_token_free() {
        let n = 32;
        let graph = generators::line(n);
        let uids = uid_map(n, 9);
        let mut expected: Vec<Uid> = (0..n).map(|i| uids.uid(NodeId(i))).collect();
        expected.sort_unstable();
        let mut network = Network::new(graph.clone());
        let mut actors = flood_actors(&graph, &uids);
        let report = FreeScheduler::new(4)
            .run(&mut network, &mut actors)
            .expect("run");
        assert_eq!(report.in_flight_at_detection, 0);
        for actor in &actors {
            assert_eq!(actor.known(), expected.as_slice());
        }
    }

    #[test]
    fn absorb_returns_only_fresh_tokens() {
        let mut actor = FloodActor::new(Uid(5), Vec::new());
        assert_eq!(
            actor.absorb(&[Uid(2), Uid(5), Uid(9)]),
            vec![Uid(2), Uid(9)]
        );
        assert_eq!(actor.absorb(&[Uid(2), Uid(9)]), Vec::<Uid>::new());
        assert_eq!(actor.known(), &[Uid(2), Uid(5), Uid(9)]);
    }
}
