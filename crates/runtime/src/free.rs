//! The free-running multi-threaded scheduler.
//!
//! Actors are partitioned into contiguous chunks, one worker thread per
//! chunk, and every worker drains an unbounded `std::sync::mpsc` inbox.
//! Delivery order is whatever the OS scheduler produces — this is the
//! hardware-throughput mode, not a reproducible one — but termination is
//! still exact: the same Dijkstra–Scholten bookkeeping as the seeded
//! scheduler runs inside the workers, root sign-offs flow to the main
//! thread over a channel, and the run ends when all `n` start-engagement
//! obligations have been signed off, at which point no application
//! message or ack is in flight.

use crate::actor::{AsyncProgram, Context, Envelope};
use crate::termination::{DsParent, DsState};
use crate::{RuntimeError, RuntimeReport};
use adn_graph::NodeId;
use adn_sim::network::Network;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::time::Duration;

/// Default wall-clock budget for a free-running run.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);

enum WorkerMsg<M> {
    Deliver { to: NodeId, env: Envelope<M> },
    Shutdown,
}

/// Shared atomic counters behind [`RuntimeReport`] in free mode.
#[derive(Default)]
struct Counters {
    steps: AtomicUsize,
    app_messages: AtomicUsize,
    acks: AtomicUsize,
    commits: AtomicUsize,
    activations: AtomicUsize,
    deactivations: AtomicUsize,
    in_flight: AtomicUsize,
}

/// Free-running scheduler: real threads, OS-determined delivery order,
/// exact Dijkstra–Scholten quiescence.
#[derive(Debug, Clone)]
pub struct FreeScheduler {
    threads: usize,
    timeout: Duration,
}

impl FreeScheduler {
    /// Scheduler with `threads` workers (clamped to `[1, n]` at run time)
    /// and the default timeout.
    pub fn new(threads: usize) -> Self {
        FreeScheduler {
            threads: threads.max(1),
            timeout: DEFAULT_TIMEOUT,
        }
    }

    /// Sets the wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Worker count this scheduler was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `programs` in driver-delimited phases (the free-running
    /// counterpart of [`SeededScheduler::run_phased`]
    /// (crate::SeededScheduler::run_phased)): before each phase the driver
    /// may rewrite actor state and decides whether another phase runs;
    /// each phase spins up the worker pool and runs to Dijkstra–Scholten
    /// quiescence. Counters accumulate across phases.
    ///
    /// # Errors
    ///
    /// Whatever the driver raises, plus every [`RuntimeError`] a
    /// single-phase run can raise.
    pub fn run_phased<P, E, F>(
        &self,
        network: &mut Network,
        programs: &mut [P],
        mut driver: F,
    ) -> Result<RuntimeReport, E>
    where
        P: AsyncProgram,
        E: From<RuntimeError>,
        F: FnMut(&mut Network, &mut [P], usize) -> Result<bool, E>,
    {
        let n = programs.len();
        let mut report = RuntimeReport {
            scheduler: "free",
            seed: None,
            threads: Some(self.threads.min(n.max(1))),
            n,
            steps: 0,
            app_messages: 0,
            acks: 0,
            commits: 0,
            activations: 0,
            deactivations: 0,
            in_flight_at_detection: 0,
        };
        let mut phase = 0usize;
        loop {
            if !driver(network, programs, phase)? {
                break;
            }
            let r = self.run(network, programs).map_err(E::from)?;
            report.steps += r.steps;
            report.app_messages += r.app_messages;
            report.acks += r.acks;
            report.commits += r.commits;
            report.activations += r.activations;
            report.deactivations += r.deactivations;
            report.in_flight_at_detection = r.in_flight_at_detection;
            phase += 1;
        }
        Ok(report)
    }

    /// Runs `programs` (actor `i` is node `i`) to Dijkstra–Scholten
    /// quiescence on `network` using free-running worker threads.
    pub fn run<P: AsyncProgram>(
        &self,
        network: &mut Network,
        programs: &mut [P],
    ) -> Result<RuntimeReport, RuntimeError> {
        let n = network.node_count();
        if programs.len() != n {
            return Err(RuntimeError::InvalidInput {
                reason: format!("{} programs for {n} nodes", programs.len()),
            });
        }
        if n == 0 {
            return Err(RuntimeError::InvalidInput {
                reason: "empty network".to_string(),
            });
        }
        let workers = self.threads.min(n);
        let chunk = n.div_ceil(workers);

        let mut senders: Vec<Sender<WorkerMsg<P::Message>>> = Vec::with_capacity(workers);
        let mut receivers: Vec<Receiver<WorkerMsg<P::Message>>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let (root_tx, root_rx) = channel::<()>();

        let counters = Counters::default();
        let network_lock = Mutex::new(network);
        let first_error: Mutex<Option<RuntimeError>> = Mutex::new(None);

        let outcome = std::thread::scope(|scope| {
            let chunks: Vec<&mut [P]> = programs.chunks_mut(chunk).collect();
            debug_assert_eq!(chunks.len(), workers);
            for ((w, body), rx) in chunks.into_iter().enumerate().zip(receivers) {
                let base = w * chunk;
                let senders = senders.clone();
                let root_tx = root_tx.clone();
                let counters = &counters;
                let network_lock = &network_lock;
                let first_error = &first_error;
                scope.spawn(move || {
                    worker_loop(
                        base,
                        body,
                        rx,
                        &senders,
                        &root_tx,
                        counters,
                        network_lock,
                        first_error,
                        chunk,
                    );
                });
            }

            // Kick off the diffusing computation: one start per actor.
            for i in 0..n {
                counters.in_flight.fetch_add(1, Ordering::SeqCst);
                let _ = senders[i / chunk].send(WorkerMsg::Deliver {
                    to: NodeId(i),
                    env: Envelope::Start,
                });
            }

            // Root deficit is n; count the sign-offs.
            let deadline = std::time::Instant::now() + self.timeout;
            let mut signed_off = 0usize;
            while signed_off < n {
                let budget = deadline.saturating_duration_since(std::time::Instant::now());
                match root_rx.recv_timeout(budget) {
                    Ok(()) => signed_off += 1,
                    Err(_) => break,
                }
            }
            let in_flight = counters.in_flight.load(Ordering::SeqCst);
            for tx in &senders {
                let _ = tx.send(WorkerMsg::Shutdown);
            }
            (signed_off == n, in_flight)
        });
        let (quiesced, in_flight) = outcome;

        if let Some(err) = first_error.into_inner().expect("error mutex") {
            return Err(err);
        }
        if !quiesced {
            return Err(RuntimeError::TimedOut);
        }
        Ok(RuntimeReport {
            scheduler: "free",
            seed: None,
            threads: Some(workers),
            n,
            steps: counters.steps.load(Ordering::SeqCst),
            app_messages: counters.app_messages.load(Ordering::SeqCst),
            acks: counters.acks.load(Ordering::SeqCst),
            commits: counters.commits.load(Ordering::SeqCst),
            activations: counters.activations.load(Ordering::SeqCst),
            deactivations: counters.deactivations.load(Ordering::SeqCst),
            in_flight_at_detection: in_flight,
        })
    }
}

/// One worker: owns the actors in `body` (global ids `base..base + len`)
/// and processes deliveries until shutdown.
#[allow(clippy::too_many_arguments)]
fn worker_loop<P: AsyncProgram>(
    base: usize,
    body: &mut [P],
    rx: Receiver<WorkerMsg<P::Message>>,
    senders: &[Sender<WorkerMsg<P::Message>>],
    root_tx: &Sender<()>,
    counters: &Counters,
    network_lock: &Mutex<&mut Network>,
    first_error: &Mutex<Option<RuntimeError>>,
    chunk: usize,
) {
    let mut ds: Vec<DsState> = body.iter().map(|_| DsState::default()).collect();
    let mut ctx: Context<P::Message> = Context::new(NodeId(base));
    let send_to = |to: NodeId, env: Envelope<P::Message>| {
        counters.in_flight.fetch_add(1, Ordering::SeqCst);
        let _ = senders[to.index() / chunk].send(WorkerMsg::Deliver { to, env });
    };
    while let Ok(msg) = rx.recv() {
        let (to, env) = match msg {
            WorkerMsg::Deliver { to, env } => (to, env),
            WorkerMsg::Shutdown => break,
        };
        counters.in_flight.fetch_sub(1, Ordering::SeqCst);
        counters.steps.fetch_add(1, Ordering::SeqCst);
        let local = to.index() - base;
        ctx.reset(to);
        let mut immediate_root_ack = false;
        let mut ack_sender: Option<NodeId> = None;
        match env {
            Envelope::Start => {
                if !ds[local].on_receive(DsParent::Root) {
                    immediate_root_ack = true;
                }
                body[local].on_start(&mut ctx);
            }
            Envelope::App { from, msg } => {
                counters.app_messages.fetch_add(1, Ordering::SeqCst);
                if !ds[local].on_receive(DsParent::Node(from)) {
                    ack_sender = Some(from);
                }
                body[local].on_message(from, msg, &mut ctx);
            }
            Envelope::Ack => {
                counters.acks.fetch_add(1, Ordering::SeqCst);
                ds[local].on_ack();
            }
        }
        if !ctx.activations.is_empty() || !ctx.deactivations.is_empty() {
            // Stage + commit under one lock so each handler's edge ops
            // land as one atomic reconfiguration round.
            let mut net = network_lock.lock().expect("network lock");
            let mut failed = false;
            for peer in ctx.activations.drain(..) {
                match net.stage_activation(to, peer) {
                    Ok(_) => {
                        counters.activations.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(e) => {
                        record_error(first_error, e.into());
                        failed = true;
                    }
                }
            }
            for peer in ctx.deactivations.drain(..) {
                match net.stage_deactivation(to, peer) {
                    Ok(_) => {
                        counters.deactivations.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(e) => {
                        record_error(first_error, e.into());
                        failed = true;
                    }
                }
            }
            if !failed {
                net.commit_round();
                counters.commits.fetch_add(1, Ordering::SeqCst);
            }
        }
        if !ctx.outbox.is_empty() {
            ds[local].on_sent(ctx.outbox.len());
            let outbox: Vec<(NodeId, P::Message)> = ctx.outbox.drain(..).collect();
            for (dest, payload) in outbox {
                send_to(
                    dest,
                    Envelope::App {
                        from: to,
                        msg: payload,
                    },
                );
            }
        }
        if let Some(sender) = ack_sender {
            send_to(sender, Envelope::Ack);
        }
        if immediate_root_ack {
            let _ = root_tx.send(());
        }
        match ds[local].try_disengage() {
            Some(DsParent::Root) => {
                let _ = root_tx.send(());
            }
            Some(DsParent::Node(parent)) => send_to(parent, Envelope::Ack),
            None => {}
        }
    }
}

fn record_error(slot: &Mutex<Option<RuntimeError>>, err: RuntimeError) {
    let mut guard = slot.lock().expect("error slot");
    guard.get_or_insert(err);
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::generators;

    struct Echo {
        neighbors: Vec<NodeId>,
        kick: bool,
        seen: usize,
    }

    impl AsyncProgram for Echo {
        type Message = u32;
        fn on_start(&mut self, ctx: &mut Context<u32>) {
            if self.kick {
                for &nb in &self.neighbors {
                    ctx.send(nb, 3);
                }
            }
        }
        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<u32>) {
            self.seen += 1;
            if msg > 1 {
                ctx.send(from, msg - 1);
            }
        }
    }

    #[test]
    fn free_run_quiesces_on_a_ring() {
        let graph = generators::ring(16);
        let mut network = Network::new(graph.clone());
        let mut programs: Vec<Echo> = (0..16)
            .map(|i| Echo {
                neighbors: graph.neighbors_slice(NodeId(i)).to_vec(),
                kick: i == 0,
                seen: 0,
            })
            .collect();
        let report = FreeScheduler::new(4)
            .run(&mut network, &mut programs)
            .expect("run");
        // Node 0 kicks both neighbours with 3; each exchange is 3 -> 2 -> 1.
        assert_eq!(report.app_messages, 6);
        assert_eq!(report.in_flight_at_detection, 0);
        assert_eq!(report.threads, Some(4));
    }

    #[test]
    fn timeout_fires_on_endless_chatter() {
        struct Chatter {
            peer: NodeId,
        }
        impl AsyncProgram for Chatter {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                ctx.send(self.peer, ());
            }
            fn on_message(&mut self, from: NodeId, _msg: (), ctx: &mut Context<()>) {
                ctx.send(from, ());
            }
        }
        let graph = generators::line(2);
        let mut network = Network::new(graph);
        let mut programs = vec![Chatter { peer: NodeId(1) }, Chatter { peer: NodeId(0) }];
        let err = FreeScheduler::new(2)
            .with_timeout(Duration::from_millis(50))
            .run(&mut network, &mut programs)
            .unwrap_err();
        assert_eq!(err, RuntimeError::TimedOut);
    }
}
