//! The deterministic single-threaded scheduler.
//!
//! Delivery is a discrete-event loop over a priority queue keyed by
//! `(ready_at, sequence)`. Every source of nondeterminism — reordering
//! within the window, per-message delay jitter, per-link base latency —
//! is drawn from one [`DetRng`] seeded with a single `u64`, so a run is
//! a pure function of `(network, programs, seed, knobs)` and replays
//! byte-identically.

use crate::actor::{AsyncProgram, Context, Envelope};
use crate::fault::{FaultKind, FaultPlan};
use crate::termination::{DsParent, DsState};
use crate::{AsyncKnobs, RuntimeError, RuntimeReport};
use adn_graph::rng::DetRng;
use adn_graph::NodeId;
use adn_sim::network::Network;
use std::collections::BinaryHeap;

/// Delivery-step budget before a seeded run is declared non-quiescent.
pub const DEFAULT_MAX_STEPS: usize = 50_000_000;

/// An in-flight envelope. Ordered by `(ready_at, seq)` **inverted**, so
/// the std max-heap pops the earliest-ready, lowest-sequence entry first.
struct InFlight<M> {
    ready_at: usize,
    seq: usize,
    to: NodeId,
    env: Envelope<M>,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.ready_at == other.ready_at && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.ready_at, other.seq).cmp(&(self.ready_at, self.seq))
    }
}

/// Single-threaded deterministic scheduler: the whole delivery order
/// derives from one `u64`.
#[derive(Debug, Clone)]
pub struct SeededScheduler {
    seed: u64,
    knobs: AsyncKnobs,
    max_steps: usize,
}

impl SeededScheduler {
    /// Scheduler with default knobs (no reordering, no delays) and the
    /// default step budget.
    pub fn new(seed: u64) -> Self {
        SeededScheduler {
            seed,
            knobs: AsyncKnobs::default(),
            max_steps: DEFAULT_MAX_STEPS,
        }
    }

    /// Sets the delivery-perturbation knobs.
    pub fn with_knobs(mut self, knobs: AsyncKnobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Sets the delivery-step budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// The seed this scheduler replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fixed per-direction base latency for the link `from -> to`
    /// (asymmetric-delay mode): a SplitMix64-style mix of the seed and
    /// both endpoints, reduced to `0..=2*max_link_delay`.
    fn link_base(&self, from: NodeId, to: NodeId) -> usize {
        if !self.knobs.asymmetric_delay {
            return 0;
        }
        let mut z = self
            .seed
            .wrapping_add((from.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((to.index() as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let span = 2 * self.knobs.max_link_delay + 1;
        (z ^ (z >> 31)) as usize % span
    }

    /// Runs `programs` (actor `i` is node `i`) to Dijkstra–Scholten
    /// quiescence on `network`.
    pub fn run<P: AsyncProgram>(
        &self,
        network: &mut Network,
        programs: &mut [P],
    ) -> Result<RuntimeReport, RuntimeError> {
        self.run_phased(network, programs, |_, _, phase| {
            Ok::<bool, RuntimeError>(phase == 0)
        })
    }

    /// Runs `programs` in driver-delimited phases: before each phase the
    /// `driver` closure is called with the network, the actors and the
    /// phase index; it may rewrite actor state (common-knowledge
    /// orchestration between barriers) and returns whether another phase
    /// should run. Each phase re-sends `Start` to every live actor and
    /// runs to Dijkstra–Scholten quiescence; one RNG stream spans all
    /// phases, so a phased run replays byte-identically from the seed.
    ///
    /// # Errors
    ///
    /// Whatever the driver raises, plus every [`RuntimeError`] a
    /// single-phase run can raise (converted via `E: From<RuntimeError>`).
    pub fn run_phased<P, E, F>(
        &self,
        network: &mut Network,
        programs: &mut [P],
        driver: F,
    ) -> Result<RuntimeReport, E>
    where
        P: AsyncProgram,
        E: From<RuntimeError>,
        F: FnMut(&mut Network, &mut [P], usize) -> Result<bool, E>,
    {
        self.run_phased_with_faults(network, programs, &FaultPlan::default(), driver)
    }

    /// [`run_phased`](Self::run_phased) with an armed [`FaultPlan`]:
    /// events fire deterministically when the cumulative delivery-step
    /// counter reaches their step, *between* deliveries. A crash severs
    /// the node in the network, forgives its Dijkstra–Scholten deficit and
    /// signs off its engagement on its behalf; subsequent application
    /// messages to it are acknowledged by the scheduler (senders' deficits
    /// still drain) and acks to it are dropped. Termination detection
    /// stays exact for the live part of the system —
    /// [`RuntimeReport::in_flight_at_detection`] counts only messages
    /// destined to live nodes.
    #[allow(clippy::too_many_lines)]
    pub fn run_phased_with_faults<P, E, F>(
        &self,
        network: &mut Network,
        programs: &mut [P],
        faults: &FaultPlan,
        mut driver: F,
    ) -> Result<RuntimeReport, E>
    where
        P: AsyncProgram,
        E: From<RuntimeError>,
        F: FnMut(&mut Network, &mut [P], usize) -> Result<bool, E>,
    {
        let n = programs.len();
        if network.node_count() != n {
            return Err(E::from(RuntimeError::InvalidInput {
                reason: format!("{n} programs for {} nodes", network.node_count()),
            }));
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let window = self.knobs.reorder_window.max(1);
        let mut heap: BinaryHeap<InFlight<P::Message>> = BinaryHeap::new();
        let mut seq = 0usize;
        let mut now = 0usize;
        let mut ds: Vec<DsState> = vec![DsState::default(); n];
        let mut crashed = vec![false; n];
        let mut fault_idx = 0usize;
        let mut report = RuntimeReport {
            scheduler: "seeded",
            seed: Some(self.seed),
            threads: None,
            n,
            steps: 0,
            app_messages: 0,
            acks: 0,
            commits: 0,
            activations: 0,
            deactivations: 0,
            in_flight_at_detection: 0,
        };
        let mut ctx: Context<P::Message> = Context::new(NodeId(0));

        let enqueue = |heap: &mut BinaryHeap<InFlight<P::Message>>,
                       rng: &mut DetRng,
                       seq: &mut usize,
                       now: usize,
                       from: Option<NodeId>,
                       to: NodeId,
                       env: Envelope<P::Message>| {
            let jitter = if self.knobs.max_link_delay > 0 {
                rng.gen_range(0, self.knobs.max_link_delay + 1)
            } else {
                0
            };
            let base = from.map_or(0, |f| self.link_base(f, to));
            heap.push(InFlight {
                ready_at: now + 1 + base + jitter,
                seq: *seq,
                to,
                env,
            });
            *seq += 1;
        };

        let mut window_buf: Vec<InFlight<P::Message>> = Vec::with_capacity(window);
        let mut phase = 0usize;
        loop {
            if !driver(network, programs, phase)? {
                break;
            }
            let mut started = vec![false; n];
            let mut root_deficit = 0usize;
            for (i, _) in crashed.iter().enumerate().take(n).filter(|(_, c)| !**c) {
                enqueue(
                    &mut heap,
                    &mut rng,
                    &mut seq,
                    now,
                    None,
                    NodeId(i),
                    Envelope::Start,
                );
                root_deficit += 1;
            }
            while root_deficit > 0 {
                if report.steps >= self.max_steps {
                    return Err(E::from(RuntimeError::DidNotQuiesce {
                        steps: report.steps,
                    }));
                }
                // Fire every armed fault whose step has been reached.
                while let Some(event) = faults.events().get(fault_idx) {
                    if event.at_step > report.steps {
                        break;
                    }
                    fault_idx += 1;
                    match event.kind {
                        FaultKind::Crash(c) => {
                            if c.index() >= n || crashed[c.index()] {
                                continue;
                            }
                            network
                                .inject_crash(c)
                                .map_err(|e| E::from(RuntimeError::Sim(e)))?;
                            crashed[c.index()] = true;
                            match ds[c.index()].crash() {
                                Some(DsParent::Root) => root_deficit -= 1,
                                Some(DsParent::Node(p)) => enqueue(
                                    &mut heap,
                                    &mut rng,
                                    &mut seq,
                                    now,
                                    Some(c),
                                    p,
                                    Envelope::Ack,
                                ),
                                None => {}
                            }
                        }
                        FaultKind::Join => {
                            network.inject_join();
                        }
                    }
                }
                // Pull up to `window` candidates in readiness order and pick
                // one uniformly; with window 1 no RNG is consumed, so the
                // default knobs add zero draws to the stream.
                window_buf.clear();
                for _ in 0..window {
                    match heap.pop() {
                        Some(item) => window_buf.push(item),
                        None => break,
                    }
                }
                if window_buf.is_empty() {
                    // Unreachable by the Dijkstra–Scholten invariant (an
                    // engaged node with zero deficit disengages at its last
                    // delivery), kept as a loud failure rather than a hang.
                    return Err(E::from(RuntimeError::DidNotQuiesce {
                        steps: report.steps,
                    }));
                }
                let pick = if window_buf.len() > 1 {
                    rng.gen_range(0, window_buf.len())
                } else {
                    0
                };
                let delivery = window_buf.swap_remove(pick);
                for leftover in window_buf.drain(..) {
                    heap.push(leftover);
                }
                now = now.max(delivery.ready_at);
                report.steps += 1;
                let node = delivery.to;

                if crashed[node.index()] {
                    // The scheduler answers a crashed node's mail: starts
                    // release their root obligation, application messages
                    // are acked so the sender's deficit drains, acks are
                    // dropped (the deficit they would pay was forgiven).
                    match delivery.env {
                        Envelope::Start => root_deficit -= 1,
                        Envelope::App { from, .. } => enqueue(
                            &mut heap,
                            &mut rng,
                            &mut seq,
                            now,
                            Some(node),
                            from,
                            Envelope::Ack,
                        ),
                        Envelope::Ack => {}
                    }
                    continue;
                }

                ctx.reset(node);
                let mut immediate_root_ack = false;
                let mut ack_sender: Option<NodeId> = None;
                match delivery.env {
                    Envelope::Start => {
                        let engaged_now = ds[node.index()].on_receive(DsParent::Root);
                        if !engaged_now {
                            // An application message overtook the start signal
                            // and engaged this node first; the root's copy is
                            // acknowledged on the spot.
                            immediate_root_ack = true;
                        }
                        debug_assert!(!started[node.index()], "duplicate start");
                        started[node.index()] = true;
                        programs[node.index()].on_start(&mut ctx);
                    }
                    Envelope::App { from, msg } => {
                        report.app_messages += 1;
                        let engaged_now = ds[node.index()].on_receive(DsParent::Node(from));
                        if !engaged_now {
                            ack_sender = Some(from);
                        }
                        programs[node.index()].on_message(from, msg, &mut ctx);
                    }
                    Envelope::Ack => {
                        report.acks += 1;
                        ds[node.index()].on_ack();
                    }
                }

                // Edge operations first (one atomic commit), then the outbox.
                if !ctx.activations.is_empty() || !ctx.deactivations.is_empty() {
                    for peer in ctx.activations.drain(..) {
                        network
                            .stage_activation(node, peer)
                            .map_err(|e| E::from(RuntimeError::Sim(e)))?;
                        report.activations += 1;
                    }
                    for peer in ctx.deactivations.drain(..) {
                        network
                            .stage_deactivation(node, peer)
                            .map_err(|e| E::from(RuntimeError::Sim(e)))?;
                        report.deactivations += 1;
                    }
                    network.commit_round();
                    report.commits += 1;
                }
                if !ctx.outbox.is_empty() {
                    ds[node.index()].on_sent(ctx.outbox.len());
                    let outbox: Vec<(NodeId, P::Message)> = ctx.outbox.drain(..).collect();
                    for (to, msg) in outbox {
                        enqueue(
                            &mut heap,
                            &mut rng,
                            &mut seq,
                            now,
                            Some(node),
                            to,
                            Envelope::App { from: node, msg },
                        );
                    }
                }
                if let Some(sender) = ack_sender {
                    enqueue(
                        &mut heap,
                        &mut rng,
                        &mut seq,
                        now,
                        Some(node),
                        sender,
                        Envelope::Ack,
                    );
                }
                if immediate_root_ack {
                    root_deficit -= 1;
                }
                match ds[node.index()].try_disengage() {
                    Some(DsParent::Root) => root_deficit -= 1,
                    Some(DsParent::Node(parent)) => enqueue(
                        &mut heap,
                        &mut rng,
                        &mut seq,
                        now,
                        Some(node),
                        parent,
                        Envelope::Ack,
                    ),
                    None => {}
                }
            }
            phase += 1;
        }
        // Leftovers can only be acks destined to crashed nodes; everything
        // aimed at a live node holds up a deficit somewhere.
        report.in_flight_at_detection = heap
            .iter()
            .filter(|d| !crashed.get(d.to.index()).copied().unwrap_or(true))
            .count();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::{generators, Graph};

    /// Ping-pong over one edge: node 0 sends `k` to its neighbours and
    /// every receiver forwards `k - 1` back until it hits zero.
    struct Countdown {
        neighbors: Vec<NodeId>,
        start: u32,
        received: u32,
    }

    impl AsyncProgram for Countdown {
        type Message = u32;
        fn on_start(&mut self, ctx: &mut Context<u32>) {
            if self.start > 0 {
                for &nb in &self.neighbors {
                    ctx.send(nb, self.start);
                }
            }
        }
        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<u32>) {
            self.received += msg;
            if msg > 1 {
                ctx.send(from, msg - 1);
            }
        }
    }

    fn countdown_programs(graph: &Graph, start_node: usize, k: u32) -> Vec<Countdown> {
        (0..graph.node_count())
            .map(|i| Countdown {
                neighbors: graph.neighbors_slice(NodeId(i)).to_vec(),
                start: if i == start_node { k } else { 0 },
                received: 0,
            })
            .collect()
    }

    #[test]
    fn quiesces_and_counts_messages() {
        let graph = generators::line(2);
        let mut network = Network::new(graph.clone());
        let mut programs = countdown_programs(&graph, 0, 4);
        let report = SeededScheduler::new(11)
            .run(&mut network, &mut programs)
            .expect("run");
        // Messages 4, 3, 2, 1 bounce across the single edge.
        assert_eq!(report.app_messages, 4);
        assert_eq!(report.in_flight_at_detection, 0);
        assert_eq!(programs[1].received, 4 + 2);
        assert_eq!(programs[0].received, 3 + 1);
    }

    #[test]
    fn replays_byte_identically() {
        let graph = generators::line(9);
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let knobs = AsyncKnobs {
                reorder_window: 3,
                max_link_delay: 2,
                asymmetric_delay: true,
            };
            let render: Vec<String> = (0..2)
                .map(|_| {
                    let mut network = Network::new(graph.clone());
                    let mut programs = countdown_programs(&graph, 4, 6);
                    SeededScheduler::new(seed)
                        .with_knobs(knobs)
                        .run(&mut network, &mut programs)
                        .expect("run")
                        .render()
                })
                .collect();
            assert_eq!(render[0], render[1], "seed {seed} diverged");
        }
    }

    #[test]
    fn program_count_mismatch_is_invalid_input() {
        let graph = generators::line(3);
        let mut network = Network::new(graph.clone());
        let mut programs = countdown_programs(&graph, 0, 1);
        programs.pop();
        let err = SeededScheduler::new(0)
            .run(&mut network, &mut programs)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidInput { .. }));
    }

    #[test]
    fn step_budget_is_enforced() {
        let graph = generators::line(2);
        let mut network = Network::new(graph.clone());
        let mut programs = countdown_programs(&graph, 0, 1_000_000);
        let err = SeededScheduler::new(0)
            .with_max_steps(50)
            .run(&mut network, &mut programs)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::DidNotQuiesce { steps: 50 }));
    }
}
