//! The actor surface: what a node program looks like to the asynchronous
//! runtime, and the side-effect context handlers write into.

use adn_graph::NodeId;

/// An asynchronous node program: one actor per node, driven entirely by
/// message delivery.
///
/// Unlike the synchronous [`adn_sim::engine::NodeProgram`] there is no
/// round structure and no `has_terminated` hook — an actor is quiescent
/// exactly when it has no unprocessed message, and the run ends when the
/// Dijkstra–Scholten detector observes global quiescence. Handlers must
/// be safe to call in any delivery order; in particular
/// [`on_message`](AsyncProgram::on_message) may run before
/// [`on_start`](AsyncProgram::on_start) if a neighbour's start message
/// overtakes this node's own start signal, so all state must be fully
/// initialised at construction.
pub trait AsyncProgram: Send {
    /// Payload exchanged between actors.
    type Message: Clone + std::fmt::Debug + Send;

    /// Called once when the scheduler's start signal reaches this actor.
    fn on_start(&mut self, ctx: &mut Context<Self::Message>);

    /// Called for every delivered application message.
    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Context<Self::Message>);
}

/// Side-effect buffer handed to each handler invocation: messages to
/// send and edge operations to stage. The scheduler drains it after the
/// handler returns — edge operations are committed first (one atomic
/// [`commit_round`](adn_sim::network::Network::commit_round)), then the
/// outbox is routed.
#[derive(Debug)]
pub struct Context<M> {
    id: NodeId,
    pub(crate) outbox: Vec<(NodeId, M)>,
    pub(crate) activations: Vec<NodeId>,
    pub(crate) deactivations: Vec<NodeId>,
}

impl<M> Context<M> {
    pub(crate) fn new(id: NodeId) -> Self {
        Context {
            id,
            outbox: Vec::new(),
            activations: Vec::new(),
            deactivations: Vec::new(),
        }
    }

    pub(crate) fn reset(&mut self, id: NodeId) {
        self.id = id;
        self.outbox.clear();
        self.activations.clear();
        self.deactivations.clear();
    }

    /// The node this handler is running on.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Queue an application message to `to`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Stage activation of the edge `(self, peer)` (distance-2 rule is
    /// enforced by the network at commit).
    pub fn activate(&mut self, peer: NodeId) {
        self.activations.push(peer);
    }

    /// Stage deactivation of the edge `(self, peer)`.
    pub fn deactivate(&mut self, peer: NodeId) {
        self.deactivations.push(peer);
    }
}

/// What travels through scheduler queues. `Start` and `Ack` are runtime
/// bookkeeping; `App` carries program payloads.
#[derive(Debug, Clone)]
pub enum Envelope<M> {
    /// The root's start signal (engages the actor in the diffusing
    /// computation and triggers [`AsyncProgram::on_start`]).
    Start,
    /// An application message.
    App {
        /// Sending node.
        from: NodeId,
        /// Program payload.
        msg: M,
    },
    /// A Dijkstra–Scholten acknowledgement.
    Ack,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_effects() {
        let mut ctx: Context<u32> = Context::new(NodeId(3));
        assert_eq!(ctx.id(), NodeId(3));
        ctx.send(NodeId(1), 42);
        ctx.activate(NodeId(2));
        ctx.deactivate(NodeId(0));
        assert_eq!(ctx.outbox, vec![(NodeId(1), 42)]);
        assert_eq!(ctx.activations, vec![NodeId(2)]);
        assert_eq!(ctx.deactivations, vec![NodeId(0)]);
        ctx.reset(NodeId(5));
        assert_eq!(ctx.id(), NodeId(5));
        assert!(ctx.outbox.is_empty() && ctx.activations.is_empty());
    }
}
