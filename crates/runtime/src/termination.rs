//! Dijkstra–Scholten termination detection for diffusing computations.
//!
//! The scheduler plays the virtual root: it sends one `Start` to every
//! actor (root deficit `n`) and the computation diffuses from there.
//! Every delivered message engages its receiver (if idle) or earns an
//! immediate acknowledgement (if already engaged); an engaged node keeps
//! a *deficit* — acknowledgements still owed for messages it sent — and
//! signs off to its engagement parent only once its deficit is zero.
//! When the root's deficit reaches zero every node has signed off and,
//! because a sign-off happens strictly after all acknowledgements for a
//! node's own sends have arrived, **no message is in flight**.

use adn_graph::NodeId;

/// Who engaged a node in the diffusing computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsParent {
    /// Engaged by the scheduler's start signal; sign-off decrements the
    /// root deficit directly.
    Root,
    /// Engaged by the first message from this node; sign-off sends it an
    /// acknowledgement.
    Node(NodeId),
}

/// Per-actor Dijkstra–Scholten bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct DsState {
    parent: Option<DsParent>,
    deficit: usize,
}

impl DsState {
    /// Records receipt of an engaging message (a `Start` maps to
    /// `DsParent::Root`, an application message to
    /// `DsParent::Node(sender)`). Returns `true` if the node was idle and
    /// is now engaged with this sender as parent — in that case the
    /// acknowledgement is deferred to [`try_disengage`](Self::try_disengage).
    /// Returns `false` if the node was already engaged: the caller must
    /// acknowledge the sender immediately (after the handler runs).
    pub fn on_receive(&mut self, from: DsParent) -> bool {
        if self.parent.is_none() {
            self.parent = Some(from);
            true
        } else {
            false
        }
    }

    /// Records `count` messages sent: each will eventually be
    /// acknowledged, so the deficit grows.
    pub fn on_sent(&mut self, count: usize) {
        self.deficit += count;
    }

    /// Records one received acknowledgement.
    pub fn on_ack(&mut self) {
        debug_assert!(self.deficit > 0, "ack without outstanding deficit");
        self.deficit = self.deficit.saturating_sub(1);
    }

    /// If the node is engaged with zero deficit it disengages and returns
    /// its parent, which the caller must acknowledge (root sign-offs
    /// decrement the root deficit, node sign-offs become `Ack` messages).
    /// Returns `None` while the node still owes nothing or waits on acks.
    pub fn try_disengage(&mut self) -> Option<DsParent> {
        if self.deficit == 0 {
            self.parent.take()
        } else {
            None
        }
    }

    /// Whether the node is currently engaged.
    pub fn engaged(&self) -> bool {
        self.parent.is_some()
    }

    /// Crash-stops this node's bookkeeping: the deficit is forgiven (acks
    /// owed *to* the node will be dropped by the scheduler) and the
    /// engagement parent, if any, is returned so the scheduler can sign
    /// off on the node's behalf — the diffusing computation must not wait
    /// forever on a node that will never ack.
    pub fn crash(&mut self) -> Option<DsParent> {
        self.deficit = 0;
        self.parent.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engage_ack_disengage_cycle() {
        let mut ds = DsState::default();
        assert!(!ds.engaged());
        // First message engages; second earns an immediate ack.
        assert!(ds.on_receive(DsParent::Root));
        assert!(!ds.on_receive(DsParent::Node(NodeId(4))));
        assert!(ds.engaged());
        // Two sends -> deficit 2; cannot disengage until both acked.
        ds.on_sent(2);
        assert_eq!(ds.try_disengage(), None);
        ds.on_ack();
        assert_eq!(ds.try_disengage(), None);
        ds.on_ack();
        assert_eq!(ds.try_disengage(), Some(DsParent::Root));
        assert!(!ds.engaged());
        // Re-engagement after disengaging picks a fresh parent.
        assert!(ds.on_receive(DsParent::Node(NodeId(1))));
        assert_eq!(ds.try_disengage(), Some(DsParent::Node(NodeId(1))));
    }

    #[test]
    fn idle_node_never_disengages() {
        let mut ds = DsState::default();
        assert_eq!(ds.try_disengage(), None);
    }
}
