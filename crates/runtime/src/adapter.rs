//! Running unmodified synchronous [`NodeProgram`]s on the asynchronous
//! runtime.
//!
//! The adapter simulates lock-step rounds with plain messages: every
//! node sends exactly one envelope per neighbour per round (an empty
//! one if the program addressed that neighbour nothing), buffers
//! out-of-order envelopes, and steps round `r` only once all round-`r`
//! envelopes have arrived. Under *any* delivery order — including the
//! reordering and delay knobs — the per-round inboxes are exactly the
//! synchronous engine's (sender-ascending, per-sender order preserved),
//! so the wrapped program's outcome equals its synchronous outcome; the
//! differential suite in `tests/runtime_model.rs` pins this.
//!
//! The adapter runs a **fixed horizon** of `R` rounds rather than
//! consulting [`NodeProgram::has_terminated`]: a locally-terminated node
//! that stopped sending envelopes would deadlock neighbours still
//! waiting for its round marker. Callers pick `R` at least the
//! synchronous termination round; the engine contract already requires
//! terminated programs' `send`/`step` to be semantic no-ops, so the
//! extra rounds do not change the outcome.
//!
//! Node views are frozen at construction (the `round` scalar is the only
//! field updated), so wrapped programs must not rely on seeing their own
//! edge operations reflected back — suitable for the message-passing
//! algorithms (flooding, counting, election), not for the
//! reconfiguration subroutines, which get native actors instead.

use crate::actor::{AsyncProgram, Context};
use adn_graph::NodeId;
use adn_sim::engine::{NodeProgram, NodeView};

/// One lock-step round's worth of payloads from one neighbour.
#[derive(Debug, Clone)]
pub struct RoundEnvelope<M> {
    /// 1-based round this envelope belongs to.
    pub round: usize,
    /// Payloads, in the sender's emission order (possibly empty — the
    /// envelope then only marks the sender as done with this round).
    pub msgs: Vec<M>,
}

/// Wraps a synchronous [`NodeProgram`] as an [`AsyncProgram`] executing a
/// fixed horizon of lock-step rounds.
pub struct SyncAdapter<P: NodeProgram> {
    program: P,
    view: NodeView,
    horizon: usize,
    /// Next round to step (1-based); `horizon + 1` once done.
    round: usize,
    started: bool,
    /// Per-round arrival buffers: `(sender, payloads)` in arrival order.
    buffers: Vec<Vec<(NodeId, Vec<P::Message>)>>,
}

impl<P: NodeProgram> SyncAdapter<P> {
    /// Wraps `program` with its (frozen) `view`; the adapter will run
    /// `horizon` lock-step rounds.
    pub fn new(program: P, view: NodeView, horizon: usize) -> Self {
        SyncAdapter {
            program,
            view,
            horizon,
            round: 1,
            started: false,
            buffers: vec![Vec::new(); horizon],
        }
    }

    /// The wrapped program (for extracting outcomes after the run).
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Consumes the adapter, returning the wrapped program.
    pub fn into_program(self) -> P {
        self.program
    }

    /// Whether all `horizon` rounds have been stepped.
    pub fn done(&self) -> bool {
        self.round > self.horizon
    }

    /// Emits this node's round-`round` envelopes: one per neighbour,
    /// empty for neighbours the program did not address.
    fn emit_round(&mut self, ctx: &mut Context<RoundEnvelope<P::Message>>) {
        self.view.round = self.round;
        let outbox = self.program.send(&self.view);
        let mut per_neighbor: Vec<(NodeId, Vec<P::Message>)> = self
            .view
            .neighbors
            .iter()
            .map(|&nb| (nb, Vec::new()))
            .collect();
        for (to, msg) in outbox {
            match per_neighbor.iter_mut().find(|(nb, _)| *nb == to) {
                Some((_, msgs)) => msgs.push(msg),
                None => debug_assert!(false, "message addressed to non-neighbour {to:?}"),
            }
        }
        let round = self.round;
        for (nb, msgs) in per_neighbor {
            ctx.send(nb, RoundEnvelope { round, msgs });
        }
    }

    /// Steps every round whose envelopes are complete, in order.
    fn drain_ready(&mut self, ctx: &mut Context<RoundEnvelope<P::Message>>) {
        let degree = self.view.neighbors.len();
        while self.round <= self.horizon && self.buffers[self.round - 1].len() == degree {
            let mut arrivals = std::mem::take(&mut self.buffers[self.round - 1]);
            arrivals.sort_by_key(|(sender, _)| *sender);
            let inbox: Vec<(NodeId, P::Message)> = arrivals
                .into_iter()
                .flat_map(|(sender, msgs)| msgs.into_iter().map(move |m| (sender, m)))
                .collect();
            self.view.round = self.round;
            let decision = self.program.step(&self.view, &inbox);
            for peer in decision.activate {
                ctx.activate(peer);
            }
            for peer in decision.deactivate {
                ctx.deactivate(peer);
            }
            self.round += 1;
            if self.round <= self.horizon {
                self.emit_round(ctx);
            }
        }
    }
}

impl<P> AsyncProgram for SyncAdapter<P>
where
    P: NodeProgram + Send,
    P::Message: Send,
{
    type Message = RoundEnvelope<P::Message>;

    fn on_start(&mut self, ctx: &mut Context<Self::Message>) {
        self.started = true;
        if self.horizon == 0 {
            return;
        }
        self.emit_round(ctx);
        // Zero-degree nodes (and any rounds already fully buffered from
        // neighbours whose start signal overtook ours) can step now.
        self.drain_ready(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Context<Self::Message>) {
        debug_assert!(
            (1..=self.horizon).contains(&msg.round),
            "round {} outside horizon {}",
            msg.round,
            self.horizon
        );
        if msg.round >= 1 && msg.round <= self.horizon {
            self.buffers[msg.round - 1].push((from, msg.msgs));
        }
        if self.started {
            self.drain_ready(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsyncKnobs, SeededScheduler};
    use adn_graph::{generators, NodeId, Uid};
    use adn_sim::engine::NodeDecision;
    use adn_sim::network::Network;

    /// Synchronous "learn the max UID" gossip: each round every node
    /// broadcasts the largest UID it has seen.
    #[derive(Clone)]
    struct MaxGossip {
        best: u64,
        rounds_quiet: usize,
    }

    impl NodeProgram for MaxGossip {
        type Message = u64;
        fn send(&mut self, view: &NodeView) -> Vec<(NodeId, u64)> {
            view.neighbors.iter().map(|&nb| (nb, self.best)).collect()
        }
        fn step(&mut self, _view: &NodeView, inbox: &[(NodeId, u64)]) -> NodeDecision {
            let before = self.best;
            for &(_, v) in inbox {
                self.best = self.best.max(v);
            }
            if self.best == before {
                self.rounds_quiet += 1;
            } else {
                self.rounds_quiet = 0;
            }
            NodeDecision::none()
        }
        fn has_terminated(&self) -> bool {
            false
        }
    }

    fn view_for(graph: &adn_graph::Graph, i: usize) -> NodeView {
        NodeView {
            id: NodeId(i),
            uid: Uid(i as u64 + 1),
            round: 1,
            n: graph.node_count(),
            neighbors: graph.neighbors_slice(NodeId(i)).to_vec(),
            potential_neighbors: graph.potential_neighbors(NodeId(i)),
        }
    }

    #[test]
    fn lockstep_matches_sync_outcome_under_reordering() {
        let n = 12;
        let graph = generators::line(n);
        let horizon = n; // diameter bound: max reaches everyone
        for seed in [3u64, 17, 99] {
            let mut network = Network::new(graph.clone());
            let mut adapters: Vec<SyncAdapter<MaxGossip>> = (0..n)
                .map(|i| {
                    SyncAdapter::new(
                        MaxGossip {
                            best: i as u64 + 1,
                            rounds_quiet: 0,
                        },
                        view_for(&graph, i),
                        horizon,
                    )
                })
                .collect();
            let knobs = AsyncKnobs {
                reorder_window: 4,
                max_link_delay: 3,
                asymmetric_delay: true,
            };
            let report = SeededScheduler::new(seed)
                .with_knobs(knobs)
                .run(&mut network, &mut adapters)
                .expect("run");
            assert_eq!(report.in_flight_at_detection, 0);
            for adapter in &adapters {
                assert!(adapter.done());
                assert_eq!(adapter.program().best, n as u64, "seed {seed}");
            }
        }
    }

    #[test]
    fn zero_horizon_quiesces_immediately() {
        let graph = generators::line(3);
        let mut network = Network::new(graph.clone());
        let mut adapters: Vec<SyncAdapter<MaxGossip>> = (0..3)
            .map(|i| {
                SyncAdapter::new(
                    MaxGossip {
                        best: 1,
                        rounds_quiet: 0,
                    },
                    view_for(&graph, i),
                    0,
                )
            })
            .collect();
        let report = SeededScheduler::new(0)
            .run(&mut network, &mut adapters)
            .expect("run");
        assert_eq!(report.app_messages, 0);
    }
}
