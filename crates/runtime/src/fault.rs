//! Armed fault plans for the asynchronous schedulers.
//!
//! The synchronous DST adversary perturbs executions between rounds; the
//! asynchronous runtime has no rounds, so faults are scheduled against the
//! only clock a run has — the **delivery-step counter**. A [`FaultPlan`]
//! is a step-sorted list of crash/join events; the seeded scheduler fires
//! every event whose step has been reached *before* the next delivery, so
//! a plan is part of the deterministic replay state: the same
//! `(seed, knobs, plan)` triple reproduces the same execution byte for
//! byte.
//!
//! Crash semantics follow the synchronous harness: the network severs all
//! incident edges and drops the node's staged operations, and the
//! scheduler additionally keeps Dijkstra–Scholten sound — the crashed
//! node's deficit is forgiven, its engagement parent is signed off on its
//! behalf, later application messages addressed to it are acknowledged by
//! the scheduler (so live senders' deficits still drain), and acks headed
//! to it are dropped. Termination detection therefore neither hangs on a
//! crashed node's unacked sends nor fires while a live-destined message
//! is in flight.

use adn_graph::NodeId;

/// One adversarial event, fired when the run's delivery-step counter
/// reaches [`FaultEvent::at_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Delivery step (cumulative across phases) at which the event fires.
    pub at_step: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// The adversarial operations a runtime fault plan can deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash-stop a node: sever its edges, forgive its Dijkstra–Scholten
    /// deficit, and acknowledge its mail on its behalf from then on.
    Crash(NodeId),
    /// Append a fresh, isolated node (churn). The joiner has no actor and
    /// stays invisible until an algorithm is taught to greet it.
    Join,
}

/// A step-sorted schedule of [`FaultEvent`]s for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash of `node` at delivery step `at_step`.
    pub fn crash_at(mut self, at_step: usize, node: NodeId) -> Self {
        self.push(FaultEvent {
            at_step,
            kind: FaultKind::Crash(node),
        });
        self
    }

    /// Adds a churn join at delivery step `at_step`.
    pub fn join_at(mut self, at_step: usize) -> Self {
        self.push(FaultEvent {
            at_step,
            kind: FaultKind::Join,
        });
        self
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    fn push(&mut self, event: FaultEvent) {
        // Keep firing order stable: sort by step, ties in insertion order.
        let pos = self
            .events
            .iter()
            .position(|e| e.at_step > event.at_step)
            .unwrap_or(self.events.len());
        self.events.insert(pos, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_kept_step_sorted() {
        let plan = FaultPlan::new()
            .crash_at(30, NodeId(2))
            .join_at(10)
            .crash_at(10, NodeId(1));
        let steps: Vec<usize> = plan.events().iter().map(|e| e.at_step).collect();
        assert_eq!(steps, vec![10, 10, 30]);
        // Ties fire in insertion order.
        assert_eq!(plan.events()[0].kind, FaultKind::Join);
        assert_eq!(plan.events()[1].kind, FaultKind::Crash(NodeId(1)));
    }
}
