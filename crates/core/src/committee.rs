//! The shared committee-forest layer.
//!
//! All three committee-based algorithms of the paper (GraphToStar,
//! GraphToWreath, GraphToThinWreath) run the same structural loop: nodes
//! are partitioned into committees led by their maximum-UID member,
//! committees select larger neighbouring committees over the *committee
//! adjacency* of the current network, the selection edges form a forest,
//! and every tree of the forest merges into its root. Before this module,
//! each algorithm rebuilt that scaffolding per phase out of
//! `BTreeMap<NodeId, Committee>` / nested-`BTreeMap` adjacency maps; now
//! the partition lives in one arena — the [`CommitteeForest`] — with dense
//! [`CommitteeId`] slots, flat membership columns, and a sort-based
//! [`CommitteeAdjacency`] builder shared by every algorithm.
//!
//! Determinism contract: every accessor iterates in ascending slot order,
//! and committee leaders never migrate between slots (an absorbing
//! committee keeps its leader; a merged-away slot dies), so ascending
//! *slot* order is ascending *leader* order — exactly the `BTreeMap`
//! iteration order the algorithms relied on. The seeded DST sweep renders
//! byte-identically across the representations, which the stress replay
//! gate (`report -- --replay <seed>`) checks end to end.

use adn_graph::{Graph, NodeId, Uid, UidMap};
use adn_sim::EdgeDelta;

/// Dense index of a committee slot in a [`CommitteeForest`] arena.
///
/// Slots are allocated once (one per initial node) and marked dead when
/// their committee merges away; ids are never reused, so a `CommitteeId`
/// observed in one phase stays valid (alive or dead) for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommitteeId(pub usize);

impl CommitteeId {
    /// The slot index as a plain `usize` (for indexing parallel columns).
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for CommitteeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The arena-backed committee partition of the tracked vertex set.
///
/// Structure-of-arrays: `committee_of` maps every tracked node to its
/// slot, `leader`/`members` are per-slot columns, and `live` is the
/// sorted list of alive slots, maintained incrementally across merges so
/// a phase never rescans the arena to find the survivors.
///
/// The *member order* discipline is the caller's: GraphToStar appends in
/// merge order (see [`CommitteeForest::absorb`] for why that order is
/// load-bearing), the wreath engine stores ring order (see
/// [`CommitteeForest::replace_members`]).
#[derive(Debug, Clone)]
pub struct CommitteeForest {
    /// Slot of the committee each tracked node belongs to. Nodes beyond
    /// this column (joined mid-run by a DST churn fault) belong to no
    /// committee and are invisible to the reconfiguration.
    committee_of: Vec<CommitteeId>,
    /// Leader of each slot.
    leader: Vec<NodeId>,
    /// Ordered member list of each slot (empty once the slot is dead).
    members: Vec<Vec<NodeId>>,
    /// Liveness of each slot.
    alive: Vec<bool>,
    /// Alive slots, ascending — the iteration spine of every phase.
    live: Vec<CommitteeId>,
}

impl CommitteeForest {
    /// The initial partition: node `i` alone in committee slot `i`, led by
    /// itself.
    pub fn singletons(n: usize) -> Self {
        CommitteeForest {
            committee_of: (0..n).map(CommitteeId).collect(),
            leader: (0..n).map(NodeId).collect(),
            members: (0..n).map(|i| vec![NodeId(i)]).collect(),
            alive: vec![true; n],
            live: (0..n).map(CommitteeId).collect(),
        }
    }

    /// Number of nodes tracked by the partition (the initial vertex set;
    /// churned-in nodes are beyond it).
    pub fn tracked_nodes(&self) -> usize {
        self.committee_of.len()
    }

    /// Number of slots in the arena (alive or dead).
    pub fn slot_count(&self) -> usize {
        self.alive.len()
    }

    /// Number of alive committees.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The alive committee slots, ascending.
    pub fn live_ids(&self) -> &[CommitteeId] {
        &self.live
    }

    /// True while the slot's committee has not merged away.
    pub fn is_alive(&self, c: CommitteeId) -> bool {
        self.alive[c.index()]
    }

    /// The leader of committee `c`.
    pub fn leader(&self, c: CommitteeId) -> NodeId {
        self.leader[c.index()]
    }

    /// The ordered member list of committee `c`.
    pub fn members(&self, c: CommitteeId) -> &[NodeId] {
        &self.members[c.index()]
    }

    /// The committee of node `u`, or `None` when `u` is beyond the tracked
    /// vertex set (a churned-in node).
    pub fn committee_of(&self, u: NodeId) -> Option<CommitteeId> {
        self.committee_of.get(u.index()).copied()
    }

    /// The leader of the committee `u` belongs to.
    ///
    /// # Panics
    ///
    /// Panics when `u` is beyond the tracked vertex set.
    pub fn leader_of(&self, u: NodeId) -> NodeId {
        self.leader[self.committee_of[u.index()].index()]
    }

    fn remove_live(&mut self, c: CommitteeId) {
        let pos = self
            .live
            .binary_search(&c)
            .expect("committee is alive exactly once");
        self.live.remove(pos);
    }

    /// Merges committee `dying` into `absorbing`: the dying members are
    /// appended to the absorbing member list **in merge order** and
    /// re-homed; the absorbing committee keeps its leader and the dying
    /// slot dies. GraphToStar's merge discipline.
    ///
    /// Member lists deliberately keep this concatenation order rather than
    /// being re-sorted: the order in which a committee's members stage
    /// their edge operations is observable when a stage call errors
    /// mid-phase (under adversarial faults the *first* failing operation
    /// aborts the phase), and the old `BTreeMap` + `extend` representation
    /// staged in exactly this order. Re-sorting would change which
    /// operation fails first and break byte-identical stress replays.
    ///
    /// # Panics
    ///
    /// Panics if either slot is dead or the two are the same.
    pub fn absorb(&mut self, dying: CommitteeId, absorbing: CommitteeId) {
        assert_ne!(dying, absorbing, "a committee cannot absorb itself");
        assert!(self.alive[dying.index()], "dying committee must be alive");
        assert!(
            self.alive[absorbing.index()],
            "absorbing committee must be alive"
        );
        let incoming = std::mem::take(&mut self.members[dying.index()]);
        for &u in &incoming {
            self.committee_of[u.index()] = absorbing;
        }
        self.members[absorbing.index()].extend(incoming);
        self.alive[dying.index()] = false;
        self.remove_live(dying);
    }

    /// Replaces the member list of committee `c` wholesale (the wreath
    /// engine installs the freshly merged ring this way) and re-homes every
    /// listed node to `c`. Slots whose members were taken over must be
    /// retired separately with [`CommitteeForest::retire`].
    ///
    /// # Panics
    ///
    /// Panics if `c` is dead or `members` is empty.
    pub fn replace_members(&mut self, c: CommitteeId, members: Vec<NodeId>) {
        assert!(self.alive[c.index()], "cannot repopulate a dead committee");
        assert!(!members.is_empty(), "a committee keeps at least one member");
        for &u in &members {
            self.committee_of[u.index()] = c;
        }
        self.members[c.index()] = members;
    }

    /// Marks committee `c` dead without touching `committee_of` — its
    /// members must already have been re-homed (by
    /// [`CommitteeForest::replace_members`] on the absorbing slot).
    ///
    /// # Panics
    ///
    /// Panics if `c` is already dead.
    pub fn retire(&mut self, c: CommitteeId) {
        assert!(self.alive[c.index()], "committee retired twice");
        self.alive[c.index()] = false;
        self.members[c.index()].clear();
        self.remove_live(c);
    }

    /// Builds the committee adjacency of the current `graph`: for each
    /// ordered pair of distinct neighbouring committees `(a, b)`, the
    /// lexicographically smallest bridge `(x, y)` with `x ∈ a`, `y ∈ b`.
    ///
    /// This is the builder previously copy-pasted between `graph_to_star`
    /// and `graph_to_wreath` as a nested
    /// `BTreeMap<NodeId, BTreeMap<NodeId, (NodeId, NodeId)>>`; here it is
    /// one flat row collection + sort + dedup, with per-committee row
    /// ranges resolved by a counting pass. Edges with an endpoint beyond
    /// the tracked vertex set (churned-in nodes) are skipped, exactly as
    /// before.
    pub fn committee_adjacency(&self, graph: &Graph) -> CommitteeAdjacency {
        let tracked = self.committee_of.len();
        let mut raw: Vec<(usize, usize, NodeId, NodeId)> = Vec::new();
        for e in graph.edges() {
            // `e.b` is the larger endpoint, so checking it covers both.
            if e.b.index() >= tracked {
                continue;
            }
            let ca = self.committee_of[e.a.index()].index();
            let cb = self.committee_of[e.b.index()].index();
            if ca == cb {
                continue;
            }
            raw.push((ca, cb, e.a, e.b));
            raw.push((cb, ca, e.b, e.a));
        }
        // Sorting by (committee, other, x, y) puts the smallest bridge of
        // every ordered pair first; dedup keeps exactly that row.
        raw.sort_unstable();
        raw.dedup_by(|next, prev| next.0 == prev.0 && next.1 == prev.1);
        let slots = self.slot_count();
        let mut offsets = vec![0usize; slots + 1];
        for r in &raw {
            offsets[r.0 + 1] += 1;
        }
        for i in 0..slots {
            offsets[i + 1] += offsets[i];
        }
        let rows = raw
            .into_iter()
            .map(|(_, other, x, y)| CommitteeNeighbor {
                other: CommitteeId(other),
                bridge_local: x,
                bridge_remote: y,
            })
            .collect();
        CommitteeAdjacency { rows, offsets }
    }
}

/// One neighbouring committee in a [`CommitteeAdjacency`] row range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitteeNeighbor {
    /// The neighbouring committee.
    pub other: CommitteeId,
    /// Bridge endpoint inside the committee the row belongs to.
    pub bridge_local: NodeId,
    /// Bridge endpoint inside `other` (adjacent to `bridge_local`).
    pub bridge_remote: NodeId,
}

/// The committee-level adjacency of one network snapshot: a flat,
/// row-sorted columnar structure (rows ordered by committee, then by
/// neighbouring committee) with per-slot offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitteeAdjacency {
    rows: Vec<CommitteeNeighbor>,
    /// `rows[offsets[c]..offsets[c + 1]]` are the neighbours of slot `c`,
    /// ascending by `other`.
    offsets: Vec<usize>,
}

impl CommitteeAdjacency {
    /// The neighbours of committee `c`, ascending by neighbour slot, each
    /// with its lexicographically smallest bridge.
    pub fn neighbors(&self, c: CommitteeId) -> &[CommitteeNeighbor] {
        &self.rows[self.offsets[c.index()]..self.offsets[c.index() + 1]]
    }

    /// Total number of (ordered) committee adjacency rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The selection rule every committee algorithm shares: among the
    /// neighbouring committees whose leader UID is **strictly larger**
    /// than `c`'s and that satisfy `eligible`, pick the one with the
    /// largest leader UID and return it with its bridge. UIDs are unique,
    /// so the maximum is unambiguous; with no strictly-larger eligible
    /// neighbour, `c` is a root this phase and `None` is returned.
    pub fn select_largest_uid_neighbor<F>(
        &self,
        c: CommitteeId,
        forest: &CommitteeForest,
        uids: &UidMap,
        mut eligible: F,
    ) -> Option<(CommitteeId, NodeId, NodeId)>
    where
        F: FnMut(CommitteeId) -> bool,
    {
        let my_uid = uids.uid(forest.leader(c));
        let mut best: Option<(Uid, CommitteeId, NodeId, NodeId)> = None;
        for row in self.neighbors(c) {
            let other_uid = uids.uid(forest.leader(row.other));
            if other_uid > my_uid
                && eligible(row.other)
                && best.as_ref().is_none_or(|&(b, _, _, _)| other_uid > b)
            {
                best = Some((other_uid, row.other, row.bridge_local, row.bridge_remote));
            }
        }
        best.map(|(_, target, x, y)| (target, x, y))
    }
}

/// One directed cross-committee bridge: `(committee, other committee,
/// local endpoint, remote endpoint)`. Sorted order puts the smallest
/// bridge of every ordered committee pair first — the same invariant the
/// from-scratch builder sorts into existence per phase.
type BridgeRow = (usize, usize, NodeId, NodeId);

/// The incrementally maintained committee adjacency.
///
/// The from-scratch builder ([`CommitteeForest::committee_adjacency`])
/// rescans every edge of the graph once per phase. This tracker instead
/// consumes the edge deltas drained from the committee tap of the
/// network's round-event bus
/// ([`adn_sim::Network::set_edge_delta_tracking`]) plus the forest's merge
/// events — discovered by diffing a committee snapshot against the forest
/// — so a phase pays for what *changed* rather than for the whole edge
/// set.
///
/// The state is one flat sorted row vector holding **every**
/// cross-committee bridge (not just the smallest per pair), so deleting a
/// recorded bridge reveals the runner-up without a rescan; deltas are
/// applied as a sort-plus-one-merge-pass batch, the `adn_graph::Graph`
/// adjacency discipline. Materialized rows are identical to the
/// from-scratch builder's; the algorithms debug-assert that differential
/// every phase ([`IncrementalAdjacency::refresh`]) and
/// `tests/committee_model.rs` pins it under adversarial fault sequences.
#[derive(Debug, Clone)]
pub struct IncrementalAdjacency {
    /// The tracker's snapshot of every tracked node's committee; diffed
    /// against the forest at sync time to discover re-homed nodes.
    committee_of: Vec<CommitteeId>,
    /// Every cross-committee bridge, both directions, sorted.
    rows: Vec<BridgeRow>,
    /// Batch staging and merge scratch, reused across syncs.
    adds: Vec<BridgeRow>,
    dels: Vec<BridgeRow>,
    merge_scratch: Vec<BridgeRow>,
    rehomed_mask: Vec<bool>,
}

impl IncrementalAdjacency {
    /// Builds the tracker from scratch over the current graph (the one
    /// full edge scan of the run; every later phase syncs deltas).
    pub fn new(forest: &CommitteeForest, graph: &Graph) -> Self {
        let committee_of = forest.committee_of.clone();
        let tracked = committee_of.len();
        let mut tracker = IncrementalAdjacency {
            rehomed_mask: vec![false; tracked],
            committee_of,
            rows: Vec::new(),
            adds: Vec::new(),
            dels: Vec::new(),
            merge_scratch: Vec::new(),
        };
        tracker.rebuild(forest, graph);
        tracker
    }

    /// Stages both directed rows of `{u, v}` under the given committee
    /// snapshot into `out`, unless the edge is invisible to the adjacency
    /// (an untracked churned-in endpoint, or an intra-committee edge).
    fn stage(committee_of: &[CommitteeId], out: &mut Vec<BridgeRow>, u: NodeId, v: NodeId) {
        let tracked = committee_of.len();
        if u.index() >= tracked || v.index() >= tracked {
            return;
        }
        let cu = committee_of[u.index()].index();
        let cv = committee_of[v.index()].index();
        if cu == cv {
            return;
        }
        out.push((cu, cv, u, v));
        out.push((cv, cu, v, u));
    }

    /// Applies everything that changed since the last sync: the edge
    /// deltas, classified under the *old* committee snapshot (the
    /// partition the stored rows were classified under — forest updates
    /// and edge operations may interleave arbitrarily between syncs), and
    /// the merge events, discovered by diffing the snapshot against the
    /// forest and re-classifying every current edge incident to a
    /// re-homed node. The staged additions and removals are then spliced
    /// into the sorted row vector with one counting merge that touches
    /// only the staged keys (untouched runs are bulk-copied).
    ///
    /// When the pending change volume rivals the edge count — a
    /// mass-merge phase on a sparse graph re-homes most nodes — patching
    /// costs more than scanning, so the tracker falls back to a from-
    /// scratch row rebuild for that sync. Both paths produce identical
    /// rows; the cutover only picks the cheaper one.
    pub fn sync(&mut self, forest: &CommitteeForest, graph: &Graph, deltas: &[EdgeDelta]) {
        let tracked = self.committee_of.len();
        let mut any_rehomed = false;
        let mut rehomed_degree = 0usize;
        for i in 0..tracked {
            let moved = forest.committee_of[i] != self.committee_of[i];
            self.rehomed_mask[i] = moved;
            if moved {
                any_rehomed = true;
                rehomed_degree += graph.degree(NodeId(i));
            }
        }
        if deltas.len() + rehomed_degree >= graph.edge_count() / 2 {
            self.rebuild(forest, graph);
            return;
        }
        for d in deltas {
            let out = if d.added {
                &mut self.adds
            } else {
                &mut self.dels
            };
            Self::stage(&self.committee_of, out, d.edge.a, d.edge.b);
        }
        // Re-homed nodes: remove their incident rows under the old
        // snapshot, re-add them under the new one. An edge with both
        // endpoints re-homed is processed only at its lower-index
        // endpoint; the snapshot advances only after staging, so every
        // staged row sees a consistent classification for both endpoints.
        if any_rehomed {
            for i in 0..tracked {
                if !self.rehomed_mask[i] {
                    continue;
                }
                let u = NodeId(i);
                for &v in graph.neighbors_slice(u) {
                    if v.index() < tracked && self.rehomed_mask[v.index()] && v.index() < i {
                        continue; // staged when v was processed
                    }
                    Self::stage(&self.committee_of, &mut self.dels, u, v);
                    Self::stage(&forest.committee_of, &mut self.adds, u, v);
                }
            }
            for i in 0..tracked {
                if self.rehomed_mask[i] {
                    self.committee_of[i] = forest.committee_of[i];
                }
            }
        }
        if self.adds.is_empty() && self.dels.is_empty() {
            return;
        }
        self.adds.sort_unstable();
        self.dels.sort_unstable();
        // Counting splice merge: per distinct *staged* row, presence is
        // `current + additions - removals` (an edge toggled within the
        // window stages matching rows in both columns and cancels out).
        // Only the staged keys are resolved element-by-element; the
        // untouched runs between them — the overwhelming majority on a
        // steady-state sync of a handful of deltas — are located with a
        // binary search and bulk-copied, so a sync costs
        // O(changes · log rows) plus one memcpy of the row vector instead
        // of an element-wise walk of every row.
        self.merge_scratch.clear();
        self.merge_scratch
            .reserve(self.rows.len() + self.adds.len());
        let (rows, adds, dels) = (&self.rows, &self.adds, &self.dels);
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        while j < adds.len() || k < dels.len() {
            let key = match (adds.get(j), dels.get(k)) {
                (Some(&a), Some(&d)) => a.min(d),
                (Some(&a), None) => a,
                (None, Some(&d)) => d,
                (None, None) => unreachable!("loop condition"),
            };
            let run = rows[i..].partition_point(|r| *r < key);
            self.merge_scratch.extend_from_slice(&rows[i..i + run]);
            i += run;
            let mut count = 0isize;
            while rows.get(i) == Some(&key) {
                count += 1;
                i += 1;
            }
            while adds.get(j) == Some(&key) {
                count += 1;
                j += 1;
            }
            while dels.get(k) == Some(&key) {
                count -= 1;
                k += 1;
            }
            debug_assert!(
                (0..=1).contains(&count),
                "bridge row {key:?} has net multiplicity {count}"
            );
            if count > 0 {
                self.merge_scratch.push(key);
            }
        }
        self.merge_scratch.extend_from_slice(&rows[i..]);
        self.adds.clear();
        self.dels.clear();
        std::mem::swap(&mut self.rows, &mut self.merge_scratch);
    }

    /// From-scratch row rebuild under the forest's current partition (the
    /// cutover path of [`IncrementalAdjacency::sync`] for phases where
    /// most of the edge set changed classification).
    fn rebuild(&mut self, forest: &CommitteeForest, graph: &Graph) {
        let tracked = self.committee_of.len();
        self.committee_of.copy_from_slice(&forest.committee_of);
        self.rows.clear();
        for e in graph.edges() {
            // `e.b` is the larger endpoint, so checking it covers both.
            if e.b.index() >= tracked {
                continue;
            }
            let cu = self.committee_of[e.a.index()].index();
            let cv = self.committee_of[e.b.index()].index();
            if cu == cv {
                continue;
            }
            self.rows.push((cu, cv, e.a, e.b));
            self.rows.push((cv, cu, e.b, e.a));
        }
        self.rows.sort_unstable();
    }

    /// Materializes the current committee adjacency — one pass over the
    /// bridge rows (the first row of every ordered pair group is its
    /// smallest bridge), with rows and offsets identical to
    /// [`CommitteeForest::committee_adjacency`].
    pub fn rows(&self, forest: &CommitteeForest) -> CommitteeAdjacency {
        let slots = forest.slot_count();
        let mut offsets = vec![0usize; slots + 1];
        let mut out: Vec<CommitteeNeighbor> = Vec::new();
        let mut idx = 0usize;
        while idx < self.rows.len() {
            let (c, other, x, y) = self.rows[idx];
            offsets[c + 1] += 1;
            out.push(CommitteeNeighbor {
                other: CommitteeId(other),
                bridge_local: x,
                bridge_remote: y,
            });
            idx += 1;
            while idx < self.rows.len() && self.rows[idx].0 == c && self.rows[idx].1 == other {
                idx += 1;
            }
        }
        for i in 0..slots {
            offsets[i + 1] += offsets[i];
        }
        CommitteeAdjacency { rows: out, offsets }
    }

    /// Syncs and materializes in one step, debug-asserting the
    /// differential against the from-scratch builder (debug builds pay
    /// the rebuild, release builds trust the tracker).
    pub fn refresh(
        &mut self,
        forest: &CommitteeForest,
        graph: &Graph,
        deltas: &[EdgeDelta],
    ) -> CommitteeAdjacency {
        self.sync(forest, graph, deltas);
        let adjacency = self.rows(forest);
        debug_assert_eq!(
            adjacency,
            forest.committee_adjacency(graph),
            "incremental committee adjacency diverged from the from-scratch builder"
        );
        adjacency
    }
}

/// The per-phase selection forest: every committee optionally selects a
/// parent (a strictly larger-UID neighbour), the edges form a forest, and
/// each tree merges into its root. Children lists, the root list and the
/// root of every slot are resolved once at construction (one pass + path
/// memoisation) instead of the per-query pointer chasing the wreath engine
/// used to do.
#[derive(Debug, Clone)]
pub struct SelectionForest {
    parent: Vec<Option<CommitteeId>>,
    children: Vec<Vec<CommitteeId>>,
    roots: Vec<CommitteeId>,
    root: Vec<CommitteeId>,
}

impl SelectionForest {
    /// Builds the forest from `(child, parent)` selection pairs (at most
    /// one per child). Roots are the alive committees that selected no
    /// parent, ascending; children lists are ascending by child.
    ///
    /// Selection chains are acyclic by construction (UIDs strictly
    /// increase along them); a malformed cyclic input is tolerated by
    /// bounding the root chase at the arena size, mirroring the guard of
    /// the old per-query chaser.
    pub fn new(forest: &CommitteeForest, edges: &[(CommitteeId, CommitteeId)]) -> Self {
        let slots = forest.slot_count();
        let mut parent: Vec<Option<CommitteeId>> = vec![None; slots];
        let mut children: Vec<Vec<CommitteeId>> = vec![Vec::new(); slots];
        for &(child, p) in edges {
            debug_assert!(parent[child.index()].is_none(), "one selection per child");
            parent[child.index()] = Some(p);
        }
        // Ascending child order within every children list.
        for &cid in forest.live_ids() {
            if let Some(p) = parent[cid.index()] {
                children[p.index()].push(cid);
            }
        }
        let roots: Vec<CommitteeId> = forest
            .live_ids()
            .iter()
            .copied()
            .filter(|c| parent[c.index()].is_none())
            .collect();
        // Resolve the root of every alive slot, memoising along the chase.
        let mut root: Vec<CommitteeId> = (0..slots).map(CommitteeId).collect();
        let mut resolved = vec![false; slots];
        for &r in &roots {
            resolved[r.index()] = true;
        }
        let mut path: Vec<CommitteeId> = Vec::new();
        for &cid in forest.live_ids() {
            if resolved[cid.index()] {
                continue;
            }
            path.clear();
            let mut c = cid;
            let mut guard = 0usize;
            while !resolved[c.index()] {
                path.push(c);
                match parent[c.index()] {
                    Some(p) => c = p,
                    None => break,
                }
                guard += 1;
                if guard > slots {
                    break; // malformed cycle: stop where the old guard did
                }
            }
            let r = if resolved[c.index()] {
                root[c.index()]
            } else {
                c
            };
            for &on_path in &path {
                root[on_path.index()] = r;
                resolved[on_path.index()] = true;
            }
        }
        SelectionForest {
            parent,
            children,
            roots,
            root,
        }
    }

    /// The roots of the forest (alive committees that selected no parent),
    /// ascending.
    pub fn roots(&self) -> &[CommitteeId] {
        &self.roots
    }

    /// The committees that selected `c` as their parent, ascending.
    pub fn children(&self, c: CommitteeId) -> &[CommitteeId] {
        &self.children[c.index()]
    }

    /// True when at least one committee selected `c`.
    pub fn has_children(&self, c: CommitteeId) -> bool {
        !self.children[c.index()].is_empty()
    }

    /// The parent `c` selected, if any.
    pub fn parent(&self, c: CommitteeId) -> Option<CommitteeId> {
        self.parent[c.index()]
    }

    /// The root of the selection tree containing `c`.
    pub fn root_of(&self, c: CommitteeId) -> CommitteeId {
        self.root[c.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::generators;

    fn cid(i: usize) -> CommitteeId {
        CommitteeId(i)
    }

    #[test]
    fn singletons_partition_every_node() {
        let f = CommitteeForest::singletons(5);
        assert_eq!(f.live_count(), 5);
        assert_eq!(f.tracked_nodes(), 5);
        for i in 0..5 {
            assert_eq!(f.committee_of(NodeId(i)), Some(cid(i)));
            assert_eq!(f.leader(cid(i)), NodeId(i));
            assert_eq!(f.members(cid(i)), &[NodeId(i)]);
            assert!(f.is_alive(cid(i)));
        }
        assert_eq!(f.committee_of(NodeId(5)), None, "untracked node");
    }

    #[test]
    fn absorb_merges_membership_and_kills_the_dying_slot() {
        let mut f = CommitteeForest::singletons(6);
        f.absorb(cid(0), cid(3));
        f.absorb(cid(5), cid(3));
        f.absorb(cid(3), cid(1));
        assert_eq!(f.live_ids(), &[cid(1), cid(2), cid(4)]);
        assert_eq!(
            f.members(cid(1)),
            &[NodeId(1), NodeId(3), NodeId(0), NodeId(5)],
            "member lists keep the historical merge order"
        );
        for u in [0usize, 1, 3, 5] {
            assert_eq!(f.committee_of(NodeId(u)), Some(cid(1)));
            assert_eq!(f.leader_of(NodeId(u)), NodeId(1));
        }
        assert!(!f.is_alive(cid(3)));
        assert_eq!(f.live_count(), 3);
    }

    #[test]
    fn replace_members_and_retire_model_a_ring_merge() {
        let mut f = CommitteeForest::singletons(4);
        // Slot 2 absorbs everyone in splice order 2, 0, 3, 1 (ring order,
        // deliberately unsorted).
        let ring = vec![NodeId(2), NodeId(0), NodeId(3), NodeId(1)];
        f.replace_members(cid(2), ring.clone());
        for c in [cid(0), cid(1), cid(3)] {
            f.retire(c);
        }
        assert_eq!(f.live_ids(), &[cid(2)]);
        assert_eq!(f.members(cid(2)), &ring[..], "ring order preserved");
        for u in 0..4 {
            assert_eq!(f.committee_of(NodeId(u)), Some(cid(2)));
        }
    }

    #[test]
    fn adjacency_matches_the_nested_btreemap_builder_shape() {
        // Line 0-1-2-3 with committees {0,1} and {2,3}: one committee pair,
        // bridged by (1, 2).
        let g = generators::line(4);
        let mut f = CommitteeForest::singletons(4);
        f.absorb(cid(0), cid(1));
        f.absorb(cid(3), cid(2));
        let adj = f.committee_adjacency(&g);
        assert_eq!(adj.row_count(), 2);
        let rows = adj.neighbors(cid(1));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].other, cid(2));
        assert_eq!(
            (rows[0].bridge_local, rows[0].bridge_remote),
            (NodeId(1), NodeId(2))
        );
        let back = adj.neighbors(cid(2));
        assert_eq!(
            (back[0].bridge_local, back[0].bridge_remote),
            (NodeId(2), NodeId(1))
        );
        // Dead slots have no rows.
        assert!(adj.neighbors(cid(0)).is_empty());
    }

    #[test]
    fn adjacency_picks_the_lexicographically_smallest_bridge() {
        // Two parallel bridges between {0,1} and {2,3}: (1,2) and (0,3).
        // The smallest (x, y) per direction wins: (0, 3) for c0 -> c1
        // (0 < 1), and (2, 1) for c1 -> c0 (both bridges start at their
        // smaller local endpoint; (2, 1) < (3, 0)).
        let g = Graph::from_edges(
            4,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(2), NodeId(3)),
                (NodeId(1), NodeId(2)),
                (NodeId(0), NodeId(3)),
            ],
        )
        .unwrap();
        let mut f = CommitteeForest::singletons(4);
        f.absorb(cid(1), cid(0));
        f.absorb(cid(3), cid(2));
        let adj = f.committee_adjacency(&g);
        let row = &adj.neighbors(cid(0))[0];
        assert_eq!(
            (row.bridge_local, row.bridge_remote),
            (NodeId(0), NodeId(3))
        );
        let row = &adj.neighbors(cid(2))[0];
        assert_eq!(
            (row.bridge_local, row.bridge_remote),
            (NodeId(2), NodeId(1))
        );
    }

    #[test]
    fn adjacency_skips_untracked_churned_nodes() {
        let mut g = generators::line(3);
        let joined = g.add_node();
        g.add_edge(NodeId(0), joined).unwrap();
        let f = CommitteeForest::singletons(3);
        let adj = f.committee_adjacency(&g);
        // Rows only among the 3 tracked singletons: (0,1) and (1,2).
        assert_eq!(adj.row_count(), 4);
        assert!(adj.neighbors(cid(0)).iter().all(|r| r.other.index() < 3));
    }

    #[test]
    fn selection_forest_resolves_roots_children_and_levels() {
        let f = CommitteeForest::singletons(7);
        // 1 -> 0, 2 -> 0, 4 -> 2, 5 -> 4; 3 and 6 are isolated roots.
        let edges = vec![
            (cid(1), cid(0)),
            (cid(2), cid(0)),
            (cid(4), cid(2)),
            (cid(5), cid(4)),
        ];
        let sel = SelectionForest::new(&f, &edges);
        assert_eq!(sel.roots(), &[cid(0), cid(3), cid(6)]);
        assert_eq!(sel.children(cid(0)), &[cid(1), cid(2)]);
        assert_eq!(sel.children(cid(2)), &[cid(4)]);
        assert!(sel.has_children(cid(4)));
        assert!(!sel.has_children(cid(1)));
        for c in [cid(0), cid(1), cid(2), cid(4), cid(5)] {
            assert_eq!(sel.root_of(c), cid(0), "{c}");
        }
        assert_eq!(sel.root_of(cid(3)), cid(3));
        assert_eq!(sel.parent(cid(5)), Some(cid(4)));
        assert_eq!(sel.parent(cid(0)), None);
    }

    #[test]
    fn display_and_index_roundtrip() {
        assert_eq!(cid(7).to_string(), "c7");
        assert_eq!(cid(7).index(), 7);
    }
}
