//! Lower-bound machinery (Section 6, Appendix D).
//!
//! The paper proves three lower bounds for the Depth-`log n` Tree problem:
//!
//! * **Ω(log n) rounds** for any (even centralized) strategy when the
//!   initial network is a spanning line (Lemma 6.1 / D.2), because the
//!   *potential* `PO_{u,v}` between the two endpoints starts at `n - 1`
//!   and can at best halve per round (edge activations) plus decrease by
//!   one (information propagation).
//! * **Ω(n) total activations and Ω(n / log n) activations per round**
//!   for any centralized strategy running in `O(log n)` rounds
//!   (Lemma 6.2 / D.3–D.4).
//! * **Ω(n log n) total activations** for any *distributed*
//!   comparison-based algorithm running in `O(log n)` rounds, via the
//!   increasing-order ring construction (Theorem 6.4 / D.12): nodes in
//!   corresponding states must behave identically, so whenever one node of
//!   the symmetric section activates an edge, Θ(n) of them do, and at
//!   least `log n` such *live* rounds are needed.
//!
//! This module provides the potential function of Definition D.1, the
//! closed-form bounds used by the experiment tables, and the
//! increasing-order-ring experiment that demonstrates the Θ(n) vs
//! Θ(n log n) separation between the centralized and distributed settings
//! empirically (experiment F7).

use adn_graph::properties::ceil_log2;
use adn_graph::traversal::bfs_distances;
use adn_graph::{Graph, NodeId};

/// The potential `PO_{u,v}` of Definition D.1: the minimum, over all nodes
/// `w` that currently know `UID_u` (given by `knowers`), of the distance
/// between `w` and `v` in `graph`.
///
/// Returns `None` if no knower can reach `v` (disconnected).
pub fn potential(graph: &Graph, knowers: &[NodeId], v: NodeId) -> Option<usize> {
    let dist = bfs_distances(graph, v);
    knowers
        .iter()
        .filter_map(|w| dist.get(w.index()).copied().flatten())
        .min()
}

/// Best-case evolution of the potential on a spanning line (Lemma D.2):
/// starting from `n - 1`, in every round the potential can at best be
/// halved (by activating edges along the whole shortest path) and then
/// reduced by one more (by propagating the UID one hop). Returns the
/// number of rounds needed to bring it down to `log2 n`, which is a lower
/// bound on the running time of *any* strategy solving Depth-`log n` Tree
/// from a spanning line.
pub fn line_time_lower_bound(n: usize) -> usize {
    if n <= 2 {
        return 0;
    }
    let target = ceil_log2(n).max(1);
    let mut potential = n - 1;
    let mut rounds = 0usize;
    while potential > target {
        // Halve (edge activations along the path) then subtract one
        // (information propagation) — the most optimistic round possible.
        potential = potential.div_ceil(2).saturating_sub(1).max(1);
        rounds += 1;
    }
    rounds
}

/// Lemma D.3: any strategy solving Depth-`log n` Tree on a spanning line in
/// `O(log n)` rounds must activate at least `n - 1 - 2·log n` edges.
pub fn centralized_total_activation_lower_bound(n: usize) -> usize {
    (n.saturating_sub(1)).saturating_sub(2 * ceil_log2(n.max(2)))
}

/// Lemma D.4: dividing the total-activation lower bound by the `O(log n)`
/// round budget gives the per-round lower bound `Ω(n / log n)`.
pub fn centralized_per_round_activation_lower_bound(n: usize) -> usize {
    let rounds = ceil_log2(n.max(2)).max(1);
    centralized_total_activation_lower_bound(n) / rounds
}

/// Theorem 6.4 (asymptotic form): any distributed comparison-based
/// algorithm solving Depth-`log n` Tree in `O(log n)` time on the
/// increasing-order ring performs at least on the order of `n · log n`
/// edge activations. The proof shows that at least `log n` rounds must be
/// *live* (a node of the symmetric section activates an edge) and that in
/// a live round all `Θ(n)` nodes still in corresponding states activate
/// simultaneously; the explicit constant below is the conservative
/// `(n - 2·log n) · log n / 4` used by the comparison tables.
pub fn distributed_total_activation_lower_bound(n: usize) -> usize {
    let logn = ceil_log2(n.max(2)).max(1);
    n.saturating_sub(2 * logn) * logn / 4
}

/// Nodes `i` and `j` of an increasing-order ring are in *corresponding
/// states* after `k` active rounds as long as neither of their
/// `k`-expo-neighbourhoods (Definition D.10) contains both the minimum-UID
/// and the maximum-UID node. This predicate is used by the
/// symmetry-tracking experiment.
pub fn in_corresponding_states(n: usize, i: usize, j: usize, k: usize) -> bool {
    if n < 4 {
        return false;
    }
    let radius = 1usize << k.min(63);
    let covers_extremes = |x: usize| {
        // Positions of the minimum (0) and maximum (n - 1) UID holders on
        // the increasing-order ring.
        ring_distance(n, x, 0) <= radius && ring_distance(n, x, n - 1) <= radius
    };
    !covers_extremes(i) && !covers_extremes(j)
}

/// Distance between positions `a` and `b` on a ring of `n` nodes.
pub fn ring_distance(n: usize, a: usize, b: usize) -> usize {
    let d = a.abs_diff(b) % n;
    d.min(n - d)
}

/// Number of nodes of an increasing-order ring of size `n` that are still
/// in corresponding states (pairwise symmetric) after `k` active rounds:
/// those whose `k`-expo-neighbourhood does not contain both extremes.
pub fn symmetric_section_size(n: usize, k: usize) -> usize {
    (0..n)
        .filter(|&i| {
            let radius = 1usize << k.min(63);
            !(ring_distance(n, i, 0) <= radius && ring_distance(n, i, n - 1) <= radius)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::generators;

    #[test]
    fn potential_matches_definition() {
        let g = generators::line(6);
        // Only node 0 knows the UID: potential to node 5 is the full
        // distance 5.
        assert_eq!(potential(&g, &[NodeId(0)], NodeId(5)), Some(5));
        // If node 3 also knows it, the potential drops to 2.
        assert_eq!(potential(&g, &[NodeId(0), NodeId(3)], NodeId(5)), Some(2));
        // Knower equal to the destination: potential 0.
        assert_eq!(potential(&g, &[NodeId(5)], NodeId(5)), Some(0));
        // Disconnected case.
        let mut h = generators::line(4);
        h.remove_edge(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(potential(&h, &[NodeId(0)], NodeId(3)), None);
    }

    #[test]
    fn time_lower_bound_is_logarithmic() {
        for &n in &[8usize, 64, 256, 1024, 4096] {
            let lb = line_time_lower_bound(n);
            let logn = ceil_log2(n);
            // The bound is Θ(log n): between log n - log log n - 2 and log n.
            assert!(lb <= logn, "n={n}: bound {lb} exceeds log n");
            assert!(
                lb + ceil_log2(logn.max(2)) + 2 >= logn,
                "n={n}: bound {lb} too weak"
            );
        }
        assert_eq!(line_time_lower_bound(2), 0);
    }

    #[test]
    fn centralized_bounds_scale_linearly() {
        assert!(centralized_total_activation_lower_bound(1024) >= 1000);
        assert!(centralized_total_activation_lower_bound(4) <= 3);
        let per_round = centralized_per_round_activation_lower_bound(1024);
        assert!(per_round >= 100, "per-round bound {per_round}");
        assert!(per_round <= 1024 / 10 + 20);
    }

    #[test]
    fn distributed_bound_dominates_centralized_bound() {
        for &n in &[64usize, 256, 1024, 4096] {
            assert!(
                distributed_total_activation_lower_bound(n)
                    > centralized_total_activation_lower_bound(n),
                "n={n}: the distributed bound must be asymptotically larger"
            );
        }
        // Shape: Θ(n log n), i.e. super-linear.
        let r1 = distributed_total_activation_lower_bound(1 << 10) as f64 / (1 << 10) as f64;
        let r2 = distributed_total_activation_lower_bound(1 << 14) as f64 / (1 << 14) as f64;
        assert!(r2 > r1 * 1.2);
    }

    #[test]
    fn ring_distance_and_corresponding_states() {
        assert_eq!(ring_distance(10, 1, 9), 2);
        assert_eq!(ring_distance(10, 0, 5), 5);
        assert_eq!(ring_distance(10, 7, 7), 0);
        // Right after the start (k = 0) almost every node is symmetric.
        assert!(symmetric_section_size(64, 0) >= 60);
        // After log n active rounds the symmetric section has collapsed.
        assert_eq!(symmetric_section_size(64, 7), 0);
        // The antipodal node stays symmetric the longest.
        let n = 64;
        assert!(in_corresponding_states(n, n / 2, n / 2 + 1, 3));
        assert!(
            !in_corresponding_states(n, 0, 1, 3),
            "node 0 sees both extremes quickly"
        );
    }

    #[test]
    fn symmetric_section_shrinks_geometrically() {
        let n = 1024;
        let mut previous = symmetric_section_size(n, 0);
        for k in 1..10 {
            let now = symmetric_section_size(n, k);
            assert!(now <= previous);
            previous = now;
        }
    }
}
