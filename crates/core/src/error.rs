//! Error type shared by the algorithms in this crate.

use adn_runtime::RuntimeError;
use adn_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors raised by the transformation algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A model violation or round-limit error raised by the simulator.
    Sim(SimError),
    /// The input network does not satisfy the algorithm's precondition
    /// (for example, a disconnected initial network, or a non-line input
    /// to `LineToCompleteBinaryTree`).
    InvalidInput {
        /// Human-readable description of the violated precondition.
        reason: String,
    },
    /// The algorithm did not converge within its internal phase budget.
    /// This indicates a bug (the algorithms are proven to terminate) and
    /// is surfaced as an error rather than a panic so that property tests
    /// can report the offending instance.
    DidNotConverge {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// The phase budget that was exhausted.
        phase_limit: usize,
    },
    /// An internal structural invariant did not hold (a committee scan or
    /// ring lookup came up empty). Unreachable in the fault-free model;
    /// under out-of-model perturbation it is surfaced as a clean error so
    /// adversarial stress runs record a `Failed` outcome rather than a
    /// panic.
    BrokenInvariant {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Which invariant was violated.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulator error: {e}"),
            CoreError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            CoreError::DidNotConverge {
                algorithm,
                phase_limit,
            } => write!(
                f,
                "{algorithm} did not converge within {phase_limit} phases"
            ),
            CoreError::BrokenInvariant { algorithm, detail } => {
                write!(f, "{algorithm} structural invariant violated: {detail}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(value: SimError) -> Self {
        CoreError::Sim(value)
    }
}

impl From<RuntimeError> for CoreError {
    fn from(value: RuntimeError) -> Self {
        match value {
            RuntimeError::Sim(e) => CoreError::Sim(e),
            other => CoreError::BrokenInvariant {
                algorithm: "adn-runtime",
                detail: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::NodeId;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(SimError::SelfLoop { node: NodeId(1) });
        assert!(e.to_string().contains("simulator error"));
        assert!(Error::source(&e).is_some());
        let e = CoreError::InvalidInput {
            reason: "disconnected".into(),
        };
        assert!(e.to_string().contains("disconnected"));
        assert!(Error::source(&e).is_none());
        let e = CoreError::DidNotConverge {
            algorithm: "GraphToStar",
            phase_limit: 42,
        };
        assert!(e.to_string().contains("GraphToStar"));
        assert!(e.to_string().contains("42"));
        let e = CoreError::BrokenInvariant {
            algorithm: "GraphToWreath",
            detail: "attach node n3 is not on the merged ring".into(),
        };
        assert!(e.to_string().contains("structural invariant"));
        assert!(e.to_string().contains("n3"));
        assert!(Error::source(&e).is_none());
    }
}
