//! **GraphToStar** (Section 3): the edge-optimal algorithm for general
//! graphs.
//!
//! The nodes are partitioned into *committees*, each internally organised
//! as a star whose centre is the committee's leader (the maximum-UID node
//! of the committee). Committees repeatedly select the largest-UID
//! neighbouring committee and merge into it; chains of selections form
//! trees of committees which are collapsed with the `TreeToStar` idea
//! applied at committee granularity (the *pulling* mode). When a single
//! committee remains, its leader is the network-wide maximum-UID node
//! `u_max`, and one final phase deactivates every remaining edge except the
//! star edges, solving Depth-1 Tree.
//!
//! Complexity (Theorem 3.8), all verified by the tests and the benchmark
//! harness: `O(log n)` rounds, at most `2n` active edges per round, an
//! optimal `O(n log n)` total edge activations, and (necessarily) a linear
//! maximum degree at the star centre.

use crate::algorithm::RunConfig;
use crate::committee::{CommitteeForest, CommitteeId, IncrementalAdjacency};
use crate::{CoreError, TransformationOutcome};
use adn_graph::{Edge, Graph, NodeId, UidMap};
use adn_sim::Network;

/// The mode a committee executes in during a phase (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Looking for a larger neighbouring committee to join.
    Selection,
    /// Merging into the committee led by the given node in this phase.
    Merging { into: NodeId },
    /// Climbing the tree of selections towards its root. `attach` is the
    /// node (in the committee above us) that our leader currently holds an
    /// activated edge to; it is the parent committee's leader when we first
    /// enter pulling mode, and is advanced one hop towards the tree's root
    /// every phase (TreeToStar applied at committee granularity).
    Pulling { attach: NodeId },
    /// Selected by others; waiting for them to merge into us.
    Waiting,
}

/// A pending round-B hop: `(selector leader, target leader, helper edge)`.
type PendingHop = (NodeId, NodeId, Option<(NodeId, NodeId)>);

/// A structural committee invariant did not hold (a merge target or
/// attach node fell outside the tracked vertex set). Unreachable in the
/// fault-free model; surfaced as a clean error (instead of the `expect`
/// panics this engine used to carry) so adversarial stress runs record a
/// `Failed` outcome rather than a `Panicked` one.
fn invariant_error(detail: String) -> CoreError {
    CoreError::BrokenInvariant {
        algorithm: "GraphToStar",
        detail,
    }
}

/// Result of the selection step of a phase.
#[derive(Debug, Clone)]
struct Selection {
    selector: CommitteeId,
    target: CommitteeId,
    /// Bridge nodes: `x` in the selector committee adjacent to `y` in the
    /// target committee.
    bridge_x: NodeId,
    bridge_y: NodeId,
}

/// Runs GraphToStar on `initial` with the given UID assignment.
///
/// # Errors
///
/// * [`CoreError::InvalidInput`] for empty or disconnected initial
///   networks.
/// * [`CoreError::DidNotConverge`] / [`CoreError::Sim`] on implementation
///   bugs (the algorithm is deterministic and proven to terminate).
#[deprecated(
    since = "0.2.0",
    note = "use adn_core::algorithm::GraphToStar (ReconfigurationAlgorithm) or the Experiment builder"
)]
pub fn run_graph_to_star(
    initial: &Graph,
    uids: &UidMap,
) -> Result<TransformationOutcome, CoreError> {
    let mut network = Network::new(initial.clone());
    execute(&mut network, uids, &RunConfig::traced())
}

/// Executes GraphToStar on `network` (trait entry point; see
/// [`crate::algorithm::GraphToStar`]).
pub(crate) fn execute(
    network: &mut Network,
    uids: &UidMap,
    config: &RunConfig,
) -> Result<TransformationOutcome, CoreError> {
    let initial = network.graph().clone();
    let n = initial.node_count();
    if n == 0 {
        return Err(CoreError::InvalidInput {
            reason: "the initial network must contain at least one node".into(),
        });
    }
    if uids.len() != n {
        return Err(CoreError::InvalidInput {
            reason: "one UID per node is required".into(),
        });
    }
    if !adn_graph::traversal::is_connected(&initial) {
        return Err(CoreError::InvalidInput {
            reason: "GraphToStar requires a connected initial network".into(),
        });
    }
    if !config.engine.is_synchronous() {
        return crate::subroutines::runtime_committee::run_runtime_star(network, uids, config);
    }

    network.set_trace_enabled(config.trace.is_per_round());
    // The incremental adjacency consumes the committee tap of the
    // network's round-event bus (and the forest's merges) instead of
    // rebuilding from the edge set every phase. The tap is armed before
    // the first operation so no delta is missed, and disarmed on *every*
    // exit path — error returns included — so a caller's network is
    // never left accumulating deltas.
    network.set_edge_delta_tracking(true);
    let result = run_phases(network, uids, config, &initial, n);
    network.set_edge_delta_tracking(false);
    result
}

/// The phase loop of [`execute`], split out so the edge-delta hook is
/// disarmed on every exit path (the engine's `run_rounds` discipline).
fn run_phases(
    network: &mut Network,
    uids: &UidMap,
    config: &RunConfig,
    initial: &Graph,
    n: usize,
) -> Result<TransformationOutcome, CoreError> {
    let mut state = State::new(initial);
    let mut committees_per_phase = Vec::new();
    let mut phases = 0usize;
    let phase_limit = 40 * adn_graph::properties::ceil_log2(n.max(2)) + 80;

    while state.forest.live_count() > 1 {
        phases += 1;
        config.check_round_budget(network)?;
        if phases > phase_limit {
            return Err(CoreError::DidNotConverge {
                algorithm: "GraphToStar",
                phase_limit,
            });
        }
        committees_per_phase.push(state.forest.live_count());
        network.note_groups_alive(state.forest.live_count());
        state.run_phase(network, uids)?;
    }

    // Termination phase: keep only the star edges.
    let leader = state.forest.leader(state.forest.live_ids()[0]);
    if n > 1 {
        config.check_round_budget(network)?;
        network.note_groups_alive(1);
        let graph = network.graph().clone();
        for e in graph.edges() {
            if e.a != leader && e.b != leader {
                network.stage_deactivation(e.a, e.b)?;
            }
        }
        network.commit_round();
        // The paper charges 2 rounds for the termination phase (detection +
        // clean-up); charge the detection round explicitly.
        network.advance_idle_rounds(1);
        phases += 1;
        committees_per_phase.push(1);
    }

    config.check_round_budget(network)?;
    debug_assert_eq!(Some(leader), uids.max_uid_node());
    let mut outcome = TransformationOutcome::from_network(leader, network);
    outcome.phases = phases;
    outcome.committees_per_phase = committees_per_phase;
    Ok(outcome)
}

struct State {
    /// The arena-backed committee partition. Leaders never migrate between
    /// slots in this algorithm (an absorbing committee keeps its leader),
    /// so ascending slot order is ascending leader order — the iteration
    /// order the old `BTreeMap<NodeId, Committee>` provided.
    forest: CommitteeForest,
    /// Delta-driven committee adjacency, synced at every phase start from
    /// the network's edge deltas and the forest's merges.
    adjacency: IncrementalAdjacency,
    /// Per-slot mode column, parallel to the forest arena.
    mode: Vec<Mode>,
    /// Edges of the initial network (never deactivated before termination).
    initial_edges: Graph,
}

impl State {
    fn new(initial: &Graph) -> Self {
        let n = initial.node_count();
        let forest = CommitteeForest::singletons(n);
        let adjacency = IncrementalAdjacency::new(&forest, initial);
        State {
            forest,
            adjacency,
            mode: vec![Mode::Selection; n],
            initial_edges: initial.clone(),
        }
    }

    fn run_phase(&mut self, network: &mut Network, uids: &UidMap) -> Result<(), CoreError> {
        let deltas = network.take_edge_deltas();
        let adjacency = self
            .adjacency
            .refresh(&self.forest, network.graph(), &deltas);
        let start_mode: Vec<Mode> = self.mode.clone();
        let slots = self.forest.slot_count();

        // ------------------------------------------------------------------
        // 1. Selection decisions (no edge operations yet).
        // ------------------------------------------------------------------
        let mut selections: Vec<Selection> = Vec::new();
        let mut did_select = vec![false; slots];
        let mut selected_by = vec![false; slots];
        for &cid in self.forest.live_ids() {
            if self.mode[cid.index()] != Mode::Selection {
                continue;
            }
            // Only committees not already committed to a merge or climb
            // are selectable targets.
            let candidate = adjacency.select_largest_uid_neighbor(cid, &self.forest, uids, |o| {
                !matches!(
                    start_mode[o.index()],
                    Mode::Pulling { .. } | Mode::Merging { .. }
                )
            });
            if let Some((target, x, y)) = candidate {
                did_select[cid.index()] = true;
                selected_by[target.index()] = true;
                selections.push(Selection {
                    selector: cid,
                    target,
                    bridge_x: x,
                    bridge_y: y,
                });
            }
        }

        // ------------------------------------------------------------------
        // 2. Edge operations: round A then round B.
        // ------------------------------------------------------------------
        // Selection round A: the selector's leader connects towards the
        // target committee (helper edge e1, or directly the leader-leader
        // edge when it is already at distance <= 2). `pending_b` collects
        // the round-B second hops.
        let mut pending_b: Vec<PendingHop> = Vec::new();
        let mut wave_acts: Vec<adn_sim::WaveActivation> = Vec::new();
        let mut wave_drops: Vec<Edge> = Vec::new();
        for sel in &selections {
            let u = self.forest.leader(sel.selector);
            let v = self.forest.leader(sel.target);
            let x = sel.bridge_x;
            let y = sel.bridge_y;
            if network.graph().has_edge(u, v) {
                // Already adjacent (for example both singletons joined by an
                // initial edge): nothing to activate.
                continue;
            }
            if u == x || y == v {
                // The leader-leader edge is one hop away: witness y (if the
                // selector's leader is the bridge) or witness x (if the
                // bridge lands on the target leader).
                wave_acts.push(adn_sim::WaveActivation {
                    initiator: u,
                    target: v,
                    witness: if u == x { y } else { x },
                });
                continue;
            }
            // General case: helper edge e1 = (u, y) via witness x now, then
            // the leader-leader edge via witness y in round B.
            wave_acts.push(adn_sim::WaveActivation {
                initiator: u,
                target: y,
                witness: x,
            });
            pending_b.push((u, v, Some((u, y))));
        }

        // Merging committees: every member joins the target leader's star.
        let mut merges: Vec<(CommitteeId, CommitteeId)> = Vec::new(); // (dying, absorbing)
        for &cid in self.forest.live_ids() {
            if let Mode::Merging { into } = self.mode[cid.index()] {
                let leader = self.forest.leader(cid);
                let into_cid = self
                    .forest
                    .committee_of(into)
                    .ok_or_else(|| invariant_error(format!("merge target {into} is untracked")))?;
                merges.push((cid, into_cid));
                for &x in self.forest.members(cid) {
                    if x == leader {
                        continue;
                    }
                    // The dying committee's leader sits on both the star
                    // edge (x, leader) and the leader-leader edge
                    // (leader, into) from the selection phase.
                    wave_acts.push(adn_sim::WaveActivation {
                        initiator: x,
                        target: into,
                        witness: leader,
                    });
                    if !self.initial_edges.has_edge(x, leader) {
                        wave_drops.push(Edge::new(x, leader));
                    }
                }
            }
        }

        // Pulling committees: climb one level of the committee tree
        // (TreeToStar applied to committees). The climb target is the next
        // node up the selection tree as it stood at the beginning of the
        // phase: the attach node's committee leader if we are attached to
        // an ordinary member, otherwise whatever our attach leader itself
        // points upwards to (its merge target or its own attach node).
        let mut climbs: Vec<(CommitteeId, NodeId)> = Vec::new(); // (committee, new attach node)
        for &cid in self.forest.live_ids() {
            if let Mode::Pulling { attach } = self.mode[cid.index()] {
                let leader = self.forest.leader(cid);
                let attach_cid = self
                    .forest
                    .committee_of(attach)
                    .ok_or_else(|| invariant_error(format!("attach node {attach} is untracked")))?;
                let attach_leader = self.forest.leader(attach_cid);
                let target = if attach != attach_leader {
                    // Hop from an ex-leader member to its current leader.
                    attach_leader
                } else {
                    match start_mode[attach_cid.index()] {
                        Mode::Merging { into } => into,
                        Mode::Pulling { attach: up } => up,
                        // The attach committee is a root (waiting or back in
                        // selection): stay put, we merge into it next phase.
                        _ => attach,
                    }
                };
                if target != attach {
                    // The attach node supports both the old (leader,
                    // attach) edge and the upward (attach, target) edge.
                    wave_acts.push(adn_sim::WaveActivation {
                        initiator: leader,
                        target,
                        witness: attach,
                    });
                    if !self.initial_edges.has_edge(leader, attach) {
                        wave_drops.push(Edge::new(leader, attach));
                    }
                }
                climbs.push((cid, target));
            }
        }

        network.stage_jump_wave(&wave_acts, &wave_drops)?;
        let summary_a = network.commit_round();

        // Round B: second selection hop, witnessed by the round-A helper
        // endpoint `y` (adjacent to `u` via the helper edge and to `v`
        // inside the target committee).
        wave_acts.clear();
        wave_drops.clear();
        let mut any_b = false;
        for (u, v, helper) in &pending_b {
            let witness = helper.map_or(*u, |(_, y)| y);
            wave_acts.push(adn_sim::WaveActivation {
                initiator: *u,
                target: *v,
                witness,
            });
            if let Some((a, b)) = helper {
                if !self.initial_edges.has_edge(*a, *b) {
                    wave_drops.push(Edge::new(*a, *b));
                }
            }
            any_b = true;
        }
        network.stage_jump_wave(&wave_acts, &wave_drops)?;
        if any_b || !selections.is_empty() {
            // A selection phase always costs 2 rounds (Lemma 3.7), even if
            // the second hop happened to be unnecessary for some selectors.
            network.commit_round();
        } else if summary_a.activations == 0 && summary_a.deactivations == 0 {
            // A phase with no edge operations at all (pure mode
            // transitions) still costs a round of communication.
            network.advance_idle_rounds(1);
        }

        // ------------------------------------------------------------------
        // 3. Apply merges to the committee structure.
        // ------------------------------------------------------------------
        for &(dying, absorbing) in &merges {
            self.forest.absorb(dying, absorbing);
        }

        // ------------------------------------------------------------------
        // 4. Mode transitions for the next phase.
        // ------------------------------------------------------------------
        // Pulling committees first (their new attach nodes were computed
        // above). If the attach node is now the leader of a root committee
        // (waiting / back in selection), we merge into it next phase;
        // otherwise we keep pulling.
        for (cid, new_attach) in climbs {
            let attach_cid = self
                .forest
                .committee_of(new_attach)
                .ok_or_else(|| invariant_error(format!("attach node {new_attach} is untracked")))?;
            let attach_is_root_leader = new_attach == self.forest.leader(attach_cid)
                && matches!(
                    self.mode[attach_cid.index()],
                    Mode::Waiting | Mode::Selection
                );
            self.mode[cid.index()] = if attach_is_root_leader {
                Mode::Merging { into: new_attach }
            } else {
                Mode::Pulling { attach: new_attach }
            };
        }

        // Selector committees.
        for sel in &selections {
            let target_selected = did_select[sel.target.index()];
            let target_leader = self.forest.leader(sel.target);
            self.mode[sel.selector.index()] = if target_selected {
                Mode::Pulling {
                    attach: target_leader,
                }
            } else {
                Mode::Merging {
                    into: target_leader,
                }
            };
        }

        // Committees that did not select: Waiting / Selection transitions.
        let mut has_children = vec![false; slots];
        for &cid in self.forest.live_ids() {
            let parent = match self.mode[cid.index()] {
                Mode::Merging { into } => Some(into),
                Mode::Pulling { attach } => Some(attach),
                _ => None,
            };
            if let Some(p) = parent {
                let pc = self
                    .forest
                    .committee_of(p)
                    .ok_or_else(|| invariant_error(format!("parent node {p} is untracked")))?;
                has_children[pc.index()] = true;
            }
        }
        for &cid in self.forest.live_ids() {
            match self.mode[cid.index()] {
                Mode::Merging { .. } | Mode::Pulling { .. } => {}
                Mode::Selection | Mode::Waiting => {
                    self.mode[cid.index()] =
                        if selected_by[cid.index()] || has_children[cid.index()] {
                            Mode::Waiting
                        } else {
                            Mode::Selection
                        };
                }
            }
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::properties::{ceil_log2, is_star, star_center};
    use adn_graph::{generators, GraphFamily, UidAssignment};

    fn check_outcome(initial: &Graph, uids: &UidMap, outcome: &TransformationOutcome) {
        let n = initial.node_count();
        // Depth-1 Tree: the final network is a spanning star...
        assert!(
            is_star(&outcome.final_graph),
            "final graph is not a star (n={n})"
        );
        // ...centred at the elected leader, which is the max-UID node.
        assert_eq!(star_center(&outcome.final_graph), Some(outcome.leader));
        assert_eq!(Some(outcome.leader), uids.max_uid_node());
        // Final diameter 2 (for n >= 3).
        if n >= 3 {
            assert_eq!(outcome.final_diameter(), Some(2));
        }
    }

    fn run_on(initial: &Graph, uids: &UidMap) -> Result<TransformationOutcome, CoreError> {
        let mut network = Network::new(initial.clone());
        execute(&mut network, uids, &RunConfig::traced())
    }

    fn run(initial: &Graph, assignment: UidAssignment) -> (UidMap, TransformationOutcome) {
        let uids = UidMap::new(initial.node_count(), assignment);
        let outcome = run_on(initial, &uids).expect("GraphToStar must succeed");
        (uids, outcome)
    }

    #[test]
    fn solves_depth_1_tree_on_lines() {
        for &n in &[2usize, 3, 4, 7, 8, 16, 31, 64, 100, 128] {
            let g = generators::line(n);
            let (uids, outcome) = run(&g, UidAssignment::Sequential);
            check_outcome(&g, &uids, &outcome);
        }
    }

    #[test]
    fn solves_depth_1_tree_on_rings_and_stars_and_grids() {
        for g in [
            generators::ring(30),
            generators::star(30),
            generators::grid(5, 6),
            generators::complete_binary_tree(31),
        ] {
            let (uids, outcome) = run(&g, UidAssignment::Sequential);
            check_outcome(&g, &uids, &outcome);
            let (uids, outcome) = run(&g, UidAssignment::Reversed);
            check_outcome(&g, &uids, &outcome);
        }
    }

    #[test]
    fn solves_depth_1_tree_on_random_graphs_with_random_uids() {
        for seed in 0..6u64 {
            let g = generators::random_connected(50, 0.08, seed);
            let (uids, outcome) = run(&g, UidAssignment::RandomPermutation { seed });
            check_outcome(&g, &uids, &outcome);
        }
    }

    #[test]
    fn solves_depth_1_tree_on_all_families() {
        for family in GraphFamily::ALL {
            let g = family.generate(40, 11);
            let (uids, outcome) = run(&g, UidAssignment::RandomPermutation { seed: 5 });
            check_outcome(&g, &uids, &outcome);
        }
    }

    #[test]
    fn time_is_logarithmic() {
        for &n in &[16usize, 64, 256] {
            let g = generators::line(n);
            let (_, outcome) = run(&g, UidAssignment::RandomPermutation { seed: 2 });
            // Theorem 3.8: O(log n) rounds. Generous constant: 12.
            assert!(
                outcome.rounds <= 12 * ceil_log2(n) + 12,
                "n={n}: rounds {} not O(log n)",
                outcome.rounds
            );
            // Phases are O(log n) too.
            assert!(outcome.phases <= 8 * ceil_log2(n) + 8);
        }
    }

    #[test]
    fn edge_complexity_matches_theorem_3_8() {
        for &n in &[32usize, 64, 128, 256] {
            let g = generators::line(n);
            let (_, outcome) = run(&g, UidAssignment::RandomPermutation { seed: 3 });
            let m = &outcome.metrics;
            // O(n log n) total activations, generous constant 4.
            assert!(
                m.total_activations <= 4 * n * ceil_log2(n).max(1),
                "n={n}: {} activations",
                m.total_activations
            );
            // At most 2n activated (non-initial) edges alive at any time.
            assert!(
                m.max_activated_edges <= 2 * n,
                "n={n}: {} active activated edges",
                m.max_activated_edges
            );
            // Each node activates at most one edge per round.
            assert!(m.max_node_activations_in_round <= 1);
        }
    }

    #[test]
    fn committee_count_decays_to_one() {
        let g = generators::random_connected(80, 0.05, 4);
        let (_, outcome) = run(&g, UidAssignment::RandomPermutation { seed: 4 });
        let counts = &outcome.committees_per_phase;
        assert_eq!(counts.first(), Some(&80));
        assert_eq!(counts.last(), Some(&1));
        // Monotonically non-increasing.
        for w in counts.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn network_stays_connected_throughout() {
        // Connectivity preservation: the final graph must span all nodes; a
        // disconnection could never be repaired by distance-2 activations,
        // so a connected final star certifies connectivity was preserved.
        let g = generators::barbell(8, 6);
        let (uids, outcome) = run(&g, UidAssignment::Sequential);
        check_outcome(&g, &uids, &outcome);
        assert!(adn_graph::traversal::is_connected(&outcome.final_graph));
    }

    #[test]
    fn rejects_invalid_inputs() {
        let uids = UidMap::new(0, UidAssignment::Sequential);
        assert!(matches!(
            run_on(&Graph::new(0), &uids),
            Err(CoreError::InvalidInput { .. })
        ));
        let mut g = generators::line(6);
        g.remove_edge(NodeId(2), NodeId(3)).unwrap();
        let uids = UidMap::new(6, UidAssignment::Sequential);
        assert!(matches!(
            run_on(&g, &uids),
            Err(CoreError::InvalidInput { .. })
        ));
        let uids = UidMap::new(5, UidAssignment::Sequential);
        assert!(matches!(
            run_on(&generators::line(6), &uids),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrapper_still_works() {
        let g = generators::ring(12);
        let uids = UidMap::new(12, UidAssignment::Sequential);
        let outcome = run_graph_to_star(&g, &uids).unwrap();
        check_outcome(&g, &uids, &outcome);
        // The wrapper preserves the old always-traced behaviour.
        assert!(!outcome.trace.is_empty());
    }

    #[test]
    fn single_node_and_pair() {
        let (uids, outcome) = run(&Graph::new(1), UidAssignment::Sequential);
        assert_eq!(outcome.leader, uids.max_uid_node().unwrap());
        assert_eq!(outcome.final_graph.edge_count(), 0);

        let (uids, outcome) = run(&generators::line(2), UidAssignment::Sequential);
        check_outcome(&generators::line(2), &uids, &outcome);
    }
}
