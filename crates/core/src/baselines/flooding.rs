//! Token dissemination by flooding over the static initial network.
//!
//! Every node starts with one token (its UID). In every round, every node
//! sends the set of tokens it knows to all of its neighbours. No edges are
//! ever activated, so the edge complexity is zero — but the running time
//! is the eccentricity of the slowest node, i.e. `Θ(diameter)` rounds,
//! which on the paper's worst-case inputs (spanning lines) is `Θ(n)`.
//! This is the "strategies that do not modify the input network" baseline
//! of Section 1.2, used by experiment T8.

use crate::algorithm::{EngineMode, RunConfig};
use crate::{CoreError, TransformationOutcome};
use adn_graph::{Graph, NodeId, Uid, UidMap};
use adn_runtime::flood::flood_actors;
use adn_runtime::{FreeScheduler, SeededScheduler};
use adn_sim::engine::{run_programs, EngineConfig, NodeDecision, NodeProgram, NodeView};
use adn_sim::Network;

/// The old name of the flooding result. Flooding now reports through the
/// shared outcome type; token counts live in
/// [`TransformationOutcome::tokens_per_node`].
#[deprecated(
    since = "0.2.0",
    note = "folded into TransformationOutcome (see the tokens_per_node field)"
)]
pub type FloodingOutcome = TransformationOutcome;

struct FloodNode {
    /// Known tokens, kept sorted and duplicate-free — inbound messages
    /// are themselves sorted (clones of a sender's `known`), so absorbing
    /// one is a two-pointer union instead of per-token tree inserts. The
    /// contents and order are identical to the old `BTreeSet` form.
    known: Vec<Uid>,
    scratch: Vec<Uid>,
    /// A node terminates when it has seen `n` tokens (it knows `n` here,
    /// as in the paper's ThinWreath assumption) — `n` is read from the
    /// view.
    done: bool,
}

impl FloodNode {
    /// Merges the sorted `tokens` into the sorted `known` set.
    fn absorb(&mut self, tokens: &[Uid]) {
        debug_assert!(tokens.windows(2).all(|w| w[0] < w[1]));
        self.scratch.clear();
        self.scratch.reserve(self.known.len() + tokens.len());
        let (a, b) = (&self.known, tokens);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    self.scratch.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    self.scratch.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    self.scratch.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        self.scratch.extend_from_slice(&a[i..]);
        self.scratch.extend_from_slice(&b[j..]);
        std::mem::swap(&mut self.known, &mut self.scratch);
    }
}

impl NodeProgram for FloodNode {
    type Message = Vec<Uid>;

    fn send(&mut self, view: &NodeView) -> Vec<(NodeId, Self::Message)> {
        view.neighbors
            .iter()
            .map(|&v| (v, self.known.clone()))
            .collect()
    }

    fn step(&mut self, view: &NodeView, inbox: &[(NodeId, Self::Message)]) -> NodeDecision {
        for (_, tokens) in inbox {
            self.absorb(tokens);
        }
        if self.known.len() >= view.n {
            self.done = true;
        }
        NodeDecision::none()
    }

    fn has_terminated(&self) -> bool {
        self.done
    }
}

/// Floods all tokens over the static graph until every node holds every
/// token. The returned outcome's `tokens_per_node` field records how many
/// tokens each node ended with (all `n` on success) and `leader` is the
/// maximum-UID node elected as a by-product of full dissemination.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] for disconnected graphs (flooding
/// would never complete) and propagates simulator errors.
#[deprecated(
    since = "0.2.0",
    note = "use adn_core::algorithm::Flooding (ReconfigurationAlgorithm) or the Experiment builder"
)]
pub fn run_flooding(graph: &Graph, uids: &UidMap) -> Result<TransformationOutcome, CoreError> {
    flood(graph, uids)
}

/// Non-deprecated internal entry used by the task layer.
pub(crate) fn flood(graph: &Graph, uids: &UidMap) -> Result<TransformationOutcome, CoreError> {
    let mut network = Network::new(graph.clone());
    execute(&mut network, uids, &RunConfig::default())
}

/// Executes flooding on `network` (trait entry point; see
/// [`crate::algorithm::Flooding`]).
pub(crate) fn execute(
    network: &mut Network,
    uids: &UidMap,
    config: &RunConfig,
) -> Result<TransformationOutcome, CoreError> {
    if !adn_graph::traversal::is_connected(network.graph()) {
        return Err(CoreError::InvalidInput {
            reason: "flooding requires a connected network".into(),
        });
    }
    let n = network.node_count();
    if uids.len() != n {
        return Err(CoreError::InvalidInput {
            reason: "one UID per node is required".into(),
        });
    }
    if !config.engine.is_synchronous() {
        return execute_async(network, uids, config);
    }
    network.set_trace_enabled(config.trace.is_per_round());
    let mut programs: Vec<FloodNode> = (0..n)
        .map(|i| FloodNode {
            known: vec![uids.uid(NodeId(i))],
            scratch: Vec::new(),
            done: n == 1,
        })
        .collect();
    let engine = EngineConfig {
        max_rounds: config.engine_round_cap(network, 2 * n + 4),
        record_trace: config.trace.is_per_round(),
    };
    run_programs(network, &mut programs, uids, &engine)?;
    config.check_round_budget(network)?;
    let leader = uids.max_uid_node().ok_or_else(|| CoreError::InvalidInput {
        reason: "empty network".into(),
    })?;
    let mut outcome = TransformationOutcome::from_network(leader, network);
    outcome.tokens_per_node = programs.iter().map(|p| p.known.len()).collect();
    Ok(outcome)
}

/// Flooding on the asynchronous actor runtime: delta-forwarding actors
/// (each token hop carries only newly learned tokens) driven by the
/// scheduler selected in [`RunConfig::engine`]. The outcome's token sets
/// equal the synchronous ones — token merging is confluent, so the final
/// state is delivery-order independent — while `rounds` stays 0 (no edge
/// operations, no round counter) and the runtime report lands in
/// [`TransformationOutcome::runtime`].
fn execute_async(
    network: &mut Network,
    uids: &UidMap,
    config: &RunConfig,
) -> Result<TransformationOutcome, CoreError> {
    let mut actors = flood_actors(network.graph(), uids);
    let report = match config.engine {
        EngineMode::Seeded { seed } => SeededScheduler::new(seed)
            .with_knobs(config.async_knobs())
            .run(network, &mut actors),
        EngineMode::Free { threads } => FreeScheduler::new(threads).run(network, &mut actors),
        EngineMode::Synchronous => unreachable!("dispatched from execute"),
    }
    .map_err(|e| match e {
        adn_runtime::RuntimeError::Sim(sim) => CoreError::Sim(sim),
        other => CoreError::InvalidInput {
            reason: format!("asynchronous flooding failed: {other}"),
        },
    })?;
    let leader = uids.max_uid_node().ok_or_else(|| CoreError::InvalidInput {
        reason: "empty network".into(),
    })?;
    let mut outcome = TransformationOutcome::from_network(leader, network);
    outcome.tokens_per_node = actors.iter().map(|a| a.known().len()).collect();
    outcome.runtime = Some(report);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::{generators, UidAssignment};

    #[test]
    fn flooding_on_a_line_takes_diameter_rounds() {
        let n = 40;
        let g = generators::line(n);
        let uids = UidMap::new(n, UidAssignment::Sequential);
        let outcome = flood(&g, &uids).unwrap();
        // The two endpoints are at distance n-1, so n-1 rounds are needed
        // (plus potentially one detection round).
        assert!(outcome.rounds >= n - 1);
        assert!(outcome.rounds <= n + 1);
        assert!(outcome.tokens_per_node.iter().all(|&t| t == n));
        assert_eq!(outcome.metrics.total_activations, 0);
        assert_eq!(outcome.leader, NodeId(n - 1));
        // Flooding never reconfigures: the final network is the initial one.
        assert_eq!(&outcome.final_graph, &g);
    }

    #[test]
    fn flooding_on_a_star_is_fast() {
        let n = 40;
        let g = generators::star(n);
        let uids = UidMap::new(n, UidAssignment::Sequential);
        let outcome = flood(&g, &uids).unwrap();
        assert!(outcome.rounds <= 3);
        assert!(outcome.tokens_per_node.iter().all(|&t| t == n));
    }

    #[test]
    fn rejects_disconnected_graphs() {
        let mut g = generators::line(5);
        g.remove_edge(NodeId(1), NodeId(2)).unwrap();
        let uids = UidMap::new(5, UidAssignment::Sequential);
        assert!(matches!(
            flood(&g, &uids),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn single_node_is_instant() {
        let g = Graph::new(1);
        let uids = UidMap::new(1, UidAssignment::Sequential);
        let outcome = flood(&g, &uids).unwrap();
        assert_eq!(outcome.tokens_per_node, vec![1]);
    }
}
