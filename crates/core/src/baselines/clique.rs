//! The clique-formation baseline (Section 1.2).
//!
//! In every round, every node activates an edge with each of its potential
//! neighbours (nodes at distance 2). Since the neighbourhood at least
//! doubles every round, a spanning clique `K_n` is formed in `O(log n)`
//! rounds; from the clique, any global computation or any target network
//! is one round away. The point of the paper is that this straw-man is
//! *edge-inefficient*: `Θ(n²)` total activations, `Θ(n²)` concurrently
//! active edges and degree `Θ(n)` — which is exactly what the experiments
//! driven by this module demonstrate.

use crate::algorithm::RunConfig;
use crate::{CoreError, TransformationOutcome};
use adn_graph::{Graph, NodeId, UidMap};
use adn_sim::engine::{run_programs, EngineConfig, NodeDecision, NodeProgram, NodeView};
use adn_sim::Network;

/// Node program: activate edges to all potential neighbours each round;
/// terminate when no potential neighbours remain (the clique is complete
/// from this node's perspective).
struct CliqueNode {
    done: bool,
}

impl NodeProgram for CliqueNode {
    type Message = ();

    fn send(&mut self, _view: &NodeView) -> Vec<(NodeId, ())> {
        Vec::new()
    }

    fn step(&mut self, view: &NodeView, _inbox: &[(NodeId, ())]) -> NodeDecision {
        if view.potential_neighbors.is_empty() {
            self.done = true;
            return NodeDecision::none();
        }
        NodeDecision {
            activate: view.potential_neighbors.clone(),
            deactivate: Vec::new(),
        }
    }

    fn has_terminated(&self) -> bool {
        self.done
    }
}

/// Runs clique formation from `initial` until the spanning clique is
/// complete. The elected leader is the maximum-UID node (from the clique,
/// electing it takes a single round of local comparison, which is included
/// in the reported round count by the termination-detection round).
///
/// # Errors
///
/// Returns an error if the initial graph is disconnected (the clique can
/// then never span the network) or on simulator round-limit violations.
#[deprecated(
    since = "0.2.0",
    note = "use adn_core::algorithm::CliqueFormation (ReconfigurationAlgorithm) or the Experiment builder"
)]
pub fn run_clique_formation(
    initial: &Graph,
    uids: &UidMap,
) -> Result<TransformationOutcome, CoreError> {
    let mut network = Network::new(initial.clone());
    execute(&mut network, uids, &RunConfig::traced())
}

/// Executes clique formation on `network` (trait entry point; see
/// [`crate::algorithm::CliqueFormation`]).
pub(crate) fn execute(
    network: &mut Network,
    uids: &UidMap,
    config: &RunConfig,
) -> Result<TransformationOutcome, CoreError> {
    config.require_sync_engine("CliqueFormation")?;
    if !adn_graph::traversal::is_connected(network.graph()) {
        return Err(CoreError::InvalidInput {
            reason: "clique formation requires a connected initial network".into(),
        });
    }
    let n = network.node_count();
    if uids.len() != n {
        return Err(CoreError::InvalidInput {
            reason: "one UID per node is required".into(),
        });
    }
    network.set_trace_enabled(config.trace.is_per_round());
    let mut programs: Vec<CliqueNode> = (0..n).map(|_| CliqueNode { done: false }).collect();
    let engine = EngineConfig {
        max_rounds: config
            .engine_round_cap(network, 4 * adn_graph::properties::ceil_log2(n.max(2)) + 16),
        record_trace: config.trace.is_per_round(),
    };
    run_programs(network, &mut programs, uids, &engine)?;
    config.check_round_budget(network)?;
    let leader = uids.max_uid_node().ok_or_else(|| CoreError::InvalidInput {
        reason: "empty network".into(),
    })?;
    Ok(TransformationOutcome::from_network(leader, network))
}

/// Runs clique formation and then, in one additional round, prunes the
/// clique down to `target` (any graph over the same vertex set), exactly
/// as Section 1.2 describes ("transforming into any desired target network
/// `G_f` through eliminating the edges in `E(K_n) \ E(G_f)`").
///
/// # Errors
///
/// As [`run_clique_formation`]; additionally if `target` has a different
/// node count.
pub fn run_clique_then_prune(
    initial: &Graph,
    uids: &UidMap,
    target: &Graph,
) -> Result<TransformationOutcome, CoreError> {
    if target.node_count() != initial.node_count() {
        return Err(CoreError::InvalidInput {
            reason: "target must have the same vertex set as the initial network".into(),
        });
    }
    let mut network = Network::new(initial.clone());
    let mut outcome = execute(&mut network, uids, &RunConfig::traced())?;
    // One more round: drop every edge not in the target.
    let mut network = Network::new(outcome.final_graph.clone());
    for e in outcome.final_graph.edges() {
        if !target.has_edge(e.a, e.b) {
            network.stage_deactivation(e.a, e.b)?;
        }
    }
    // Edges of the target missing from the clique cannot exist (the clique
    // has them all), so activation is never needed here.
    network.commit_round();
    let prune_metrics = network.metrics().clone();
    outcome.metrics.absorb_sequential(&prune_metrics);
    outcome.rounds += prune_metrics.rounds;
    outcome.final_graph = network.graph().clone();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::properties::ceil_log2;
    use adn_graph::{generators, UidAssignment};

    fn run_clique(initial: &Graph, uids: &UidMap) -> Result<TransformationOutcome, CoreError> {
        let mut network = Network::new(initial.clone());
        execute(&mut network, uids, &RunConfig::traced())
    }

    #[test]
    fn forms_a_clique_in_log_rounds() {
        for &n in &[4usize, 8, 16, 32, 50] {
            let g = generators::line(n);
            let uids = UidMap::new(n, UidAssignment::Sequential);
            let outcome = run_clique(&g, &uids).unwrap();
            // Final graph is the complete graph.
            assert_eq!(outcome.final_graph.edge_count(), n * (n - 1) / 2, "n={n}");
            // Rounds are logarithmic: the neighbourhood at least doubles.
            assert!(
                outcome.rounds <= ceil_log2(n) + 2,
                "n={n}: rounds {}",
                outcome.rounds
            );
            // Edge complexity is quadratic — the whole point of the paper.
            assert!(outcome.metrics.total_activations >= n * (n - 1) / 2 - g.edge_count());
            assert_eq!(outcome.metrics.max_total_degree, n - 1);
            assert_eq!(outcome.leader, NodeId(n - 1));
        }
    }

    #[test]
    fn works_from_various_families() {
        for family in [
            generators::ring(20),
            generators::random_tree(20, 3),
            generators::grid(4, 5),
        ] {
            let n = family.node_count();
            let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 1 });
            let outcome = run_clique(&family, &uids).unwrap();
            assert_eq!(outcome.final_graph.edge_count(), n * (n - 1) / 2);
            assert_eq!(Some(outcome.leader), uids.max_uid_node());
        }
    }

    #[test]
    fn prune_reaches_any_target() {
        let n = 24;
        let g = generators::ring(n);
        let uids = UidMap::new(n, UidAssignment::Sequential);
        let target = generators::star(n);
        let outcome = run_clique_then_prune(&g, &uids, &target).unwrap();
        assert_eq!(outcome.final_graph, target);
        // The pruning round deactivated Θ(n²) edges.
        assert!(outcome.metrics.total_deactivations >= n * (n - 1) / 2 - (n - 1) - n);
    }

    #[test]
    fn rejects_disconnected_inputs_and_mismatched_targets() {
        let mut g = generators::line(6);
        g.remove_edge(NodeId(2), NodeId(3)).unwrap();
        let uids = UidMap::new(6, UidAssignment::Sequential);
        assert!(matches!(
            run_clique(&g, &uids),
            Err(CoreError::InvalidInput { .. })
        ));
        let ok = generators::line(6);
        assert!(matches!(
            run_clique_then_prune(&ok, &uids, &generators::star(5)),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn single_node_terminates_immediately() {
        let g = Graph::new(1);
        let uids = UidMap::new(1, UidAssignment::Sequential);
        let outcome = run_clique(&g, &uids).unwrap();
        assert_eq!(outcome.rounds, 1);
        assert_eq!(outcome.metrics.total_activations, 0);
    }
}
