//! Baseline strategies the paper compares against.
//!
//! * [`clique`] — the clique-formation strategy of Section 1.2: every node
//!   activates edges to all of its potential neighbours every round, which
//!   forms `K_n` in `O(log n)` rounds but costs `Θ(n²)` activations,
//!   `Θ(n²)` active edges and `Θ(n)` degree.
//! * [`flooding`] — plain information flooding over the (static) initial
//!   network: no edge activations at all, but `Θ(diameter)` rounds, which
//!   is `Θ(n)` in the worst case.

pub mod clique;
pub mod flooding;

#[allow(deprecated)]
pub use clique::run_clique_formation;
pub use clique::run_clique_then_prune;
#[allow(deprecated)]
pub use flooding::{run_flooding, FloodingOutcome};
