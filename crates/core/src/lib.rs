//! # adn-core — algorithms from the paper
//!
//! This crate contains the reproduction of every algorithm in
//! *"Distributed Computation and Reconfiguration in Actively Dynamic
//! Networks"* (Michail, Skretas, Spirakis — PODC 2020):
//!
//! * [`algorithm`] — the unified entry point: the
//!   [`ReconfigurationAlgorithm`] trait, the shared [`RunConfig`] and the
//!   [`registry`] enumerating every strategy below.
//! * [`committee`] — the shared committee-forest layer: the arena-backed
//!   partition ([`committee::CommitteeForest`]), the flat committee
//!   adjacency builder and the per-phase selection forest that all three
//!   committee algorithms run on.
//! * [`subroutines`] — the basic building blocks of Section 2.3 and the
//!   appendix: `TreeToStar`, `LineToCompleteBinaryTree` (synchronous and
//!   asynchronous wake-up variants) and the complete-`k`-ary-tree
//!   generalisation used by `GraphToThinWreath`.
//! * [`baselines`] — the clique-formation strategy of Section 1.2 and
//!   plain flooding, both implemented as strictly local
//!   [`adn_sim::engine::NodeProgram`]s.
//! * [`graph_to_star`] — **GraphToStar** (Section 3): `O(log n)` time,
//!   `O(n log n)` total activations, `O(n)` active edges per round,
//!   spanning-star target (Depth-1 tree).
//! * [`graph_to_wreath`] — **GraphToWreath** (Section 4): bounded degree,
//!   `O(log² n)` time, `O(n log² n)` activations, complete-binary-tree
//!   target (Depth-`log n` tree).
//! * [`graph_to_thin_wreath`] — **GraphToThinWreath** (Section 5):
//!   polylogarithmic degree, `o(log² n)` time, complete
//!   polylog-degree-tree target.
//! * [`centralized`] — the centralized strategies of Section 6/Appendix D:
//!   `CutInHalf` on a spanning line and the spanning-tree → Euler-tour →
//!   virtual-ring strategy achieving `Θ(n)` total activations
//!   (Theorem 6.3).
//! * [`lower_bounds`] — the potential-function machinery
//!   (Definition D.1) and the increasing-order-ring experiment behind the
//!   Ω(log n) / Ω(n) / Ω(n log n) lower bounds of Section 6.
//! * [`tasks`] — the distributed tasks of Section 2.2 layered on top of
//!   the transformation: leader election, token dissemination and global
//!   function computation.
//!
//! Every edge operation performed by any algorithm goes through the
//! validated [`adn_sim::Network`] API, so the distance-2 activation rule is
//! enforced and the paper's edge-complexity measures are metered exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod baselines;
pub mod centralized;
pub mod committee;
pub mod error;
pub mod graph_to_star;
pub mod graph_to_thin_wreath;
pub mod graph_to_wreath;
pub mod lower_bounds;
pub mod outcome;
pub mod subroutines;
pub mod tasks;

pub use algorithm::{
    registry, AlgorithmSpec, CentralizedConfig, ReconfigurationAlgorithm, RunConfig, TraceLevel,
};
pub use error::CoreError;
pub use outcome::TransformationOutcome;
