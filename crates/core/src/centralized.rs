//! Centralized transformation strategies (Section 6, Appendix D).
//!
//! These strategies have global knowledge of the network and a central
//! controller deciding every node's actions. They serve two roles in the
//! paper and in this reproduction:
//!
//! 1. [`run_cut_in_half_on_line`] is the `CutInHalf` algorithm: on a
//!    spanning line it reaches diameter `O(log n)` in `log n` rounds with
//!    only `Θ(n)` total edge activations — establishing that the
//!    centralized optimum for total activations is linear (tight against
//!    Lemma 6.2 / D.3).
//! 2. [`run_centralized_general`] is the strategy of Theorem 6.3 / D.5 for
//!    arbitrary connected graphs: compute a spanning tree, walk an Euler
//!    tour to obtain a *virtual ring* of at most `2n` positions, and run
//!    `CutInHalf` on it. It shows the `Θ(n)`-activation bound holds for
//!    every initial network, which is the baseline our distributed
//!    algorithms are compared against in experiment F6/F7 (they must pay
//!    an extra `Θ(log n)` factor — Theorem 6.4).

use crate::algorithm::{CentralizedConfig, RunConfig};
use crate::{CoreError, TransformationOutcome};
use adn_graph::traversal::{bfs_spanning_tree, euler_tour};
use adn_graph::{Graph, NodeId, UidMap};
use adn_sim::Network;

/// Runs `CutInHalf` on a network whose initial graph is a spanning line
/// given by `line` (consecutive entries adjacent). In round `i` it
/// activates the edges `(u_j, u_{j + 2^i})` for every `j` that is a
/// multiple of `2^i`, doubling the reachable distance each round.
///
/// Returns the outcome with the line's first node as root/leader.
///
/// # Errors
///
/// [`CoreError::InvalidInput`] if `line` is not a path of the network.
#[deprecated(
    since = "0.2.0",
    note = "use adn_core::algorithm::CentralizedCutInHalf (ReconfigurationAlgorithm) or the Experiment builder"
)]
pub fn run_cut_in_half_on_line(
    initial: &Graph,
    line: &[NodeId],
) -> Result<TransformationOutcome, CoreError> {
    if line.is_empty() {
        return Err(CoreError::InvalidInput {
            reason: "line must be non-empty".into(),
        });
    }
    for w in line.windows(2) {
        if !initial.has_edge(w[0], w[1]) {
            return Err(CoreError::InvalidInput {
                reason: format!("line nodes {} and {} are not adjacent", w[0], w[1]),
            });
        }
    }
    let mut network = Network::new(initial.clone());
    cut_in_half(&mut network, line, &RunConfig::default())?;
    Ok(TransformationOutcome::from_network(line[0], &mut network))
}

/// Executes `CutInHalf` on `network`, whose current snapshot must be a
/// spanning line; the line order is recovered by walking from an endpoint
/// and the first node of the walk becomes the root/leader (trait entry
/// point; see [`crate::algorithm::CentralizedCutInHalf`]).
pub(crate) fn execute_cut_in_half(
    network: &mut Network,
    uids: &UidMap,
    config: &RunConfig,
) -> Result<TransformationOutcome, CoreError> {
    config.require_sync_engine("Centralized CutInHalf")?;
    let graph = network.graph().clone();
    let n = graph.node_count();
    if n == 0 {
        return Err(CoreError::InvalidInput {
            reason: "the initial network must contain at least one node".into(),
        });
    }
    if uids.len() != n {
        return Err(CoreError::InvalidInput {
            reason: "one UID per node is required".into(),
        });
    }
    if !adn_graph::properties::is_line(&graph) {
        return Err(CoreError::InvalidInput {
            reason: "CutInHalf requires a spanning line as the initial network".into(),
        });
    }
    let order = line_order(&graph);
    network.set_trace_enabled(config.trace.is_per_round());
    cut_in_half(network, &order, config)?;
    config.check_round_budget(network)?;
    Ok(TransformationOutcome::from_network(order[0], network))
}

/// Recovers the path order of a spanning line, starting at the
/// smallest-index endpoint (for `n == 1`, the single node).
fn line_order(graph: &Graph) -> Vec<NodeId> {
    let n = graph.node_count();
    if n <= 1 {
        return (0..n).map(NodeId).collect();
    }
    let start = graph
        .nodes()
        .find(|&u| graph.degree(u) == 1)
        .expect("a line with n >= 2 has an endpoint");
    let mut order = Vec::with_capacity(n);
    let mut prev: Option<NodeId> = None;
    let mut current = start;
    loop {
        order.push(current);
        let next = graph.neighbors(current).find(|&v| Some(v) != prev);
        match next {
            Some(v) => {
                prev = Some(current);
                current = v;
            }
            None => break,
        }
    }
    debug_assert_eq!(order.len(), n, "walk covered the whole line");
    order
}

/// The virtual-line `CutInHalf` core: positions along `order` (which may
/// repeat nodes, as in an Euler tour) are connected at doubling distances.
/// Activations between positions that map to the same node or to already
/// adjacent nodes are skipped (they cost nothing).
fn cut_in_half(
    network: &mut Network,
    order: &[NodeId],
    config: &RunConfig,
) -> Result<(), CoreError> {
    let len = order.len();
    let mut step = 1usize;
    while step < len.saturating_sub(1) {
        config.check_round_budget(network)?;
        let hop = step * 2;
        let mut staged_any = false;
        let mut j = 0usize;
        while j + hop < len {
            let a = order[j];
            let b = order[j + hop];
            if a != b && !network.graph().has_edge(a, b) {
                network.stage_activation(a, b)?;
                staged_any = true;
            }
            j += hop;
        }
        if staged_any {
            network.commit_round();
        } else {
            // The round still elapses even if every doubling edge happened
            // to exist already (e.g. repeated Euler-tour nodes).
            network.advance_idle_rounds(1);
        }
        step = hop;
    }
    Ok(())
}

/// The general centralized strategy of Theorem 6.3: spanning tree → Euler
/// tour → virtual ring → `CutInHalf`, followed (optionally) by a single
/// clean-up round that prunes the graph down to a BFS tree rooted at
/// `root`, yielding a Depth-`O(log n)` tree.
///
/// # Errors
///
/// [`CoreError::InvalidInput`] for disconnected graphs.
#[deprecated(
    since = "0.2.0",
    note = "use adn_core::algorithm::CentralizedGeneral with RunConfig::with_centralized(CentralizedConfig)"
)]
pub fn run_centralized_general(
    initial: &Graph,
    uids: &UidMap,
    prune_to_tree: bool,
) -> Result<TransformationOutcome, CoreError> {
    let target = if prune_to_tree {
        CentralizedConfig::PruneToTree
    } else {
        CentralizedConfig::LowDiameter
    };
    let mut network = Network::new(initial.clone());
    execute_general(&mut network, uids, target, &RunConfig::default())
}

/// Executes the general centralized strategy on `network` (trait entry
/// point; see [`crate::algorithm::CentralizedGeneral`]).
pub(crate) fn execute_general(
    network: &mut Network,
    uids: &UidMap,
    target: CentralizedConfig,
    config: &RunConfig,
) -> Result<TransformationOutcome, CoreError> {
    config.require_sync_engine("Centralized (Euler + CutInHalf)")?;
    let initial = network.graph().clone();
    let n = initial.node_count();
    if n == 0 {
        return Err(CoreError::InvalidInput {
            reason: "the initial network must contain at least one node".into(),
        });
    }
    if uids.len() != n {
        return Err(CoreError::InvalidInput {
            reason: "one UID per node is required".into(),
        });
    }
    if !adn_graph::traversal::is_connected(&initial) {
        return Err(CoreError::InvalidInput {
            reason: "the centralized strategy requires a connected network".into(),
        });
    }
    let root = uids.max_uid_node().ok_or_else(|| CoreError::InvalidInput {
        reason: "one UID per node is required".into(),
    })?;
    let tree = bfs_spanning_tree(&initial, root).expect("connected graph has a spanning tree");
    let tour = euler_tour(&tree);

    network.set_trace_enabled(config.trace.is_per_round());
    cut_in_half(network, &tour, config)?;

    if target == CentralizedConfig::PruneToTree && n > 1 {
        config.check_round_budget(network)?;
        // One clean-up round: keep only a BFS tree of the current
        // low-diameter graph rooted at `root`. The network can only be
        // disconnected here if the environment (a DST fault) severed it
        // mid-run; surface that as a clean error, not a panic.
        let bfs =
            bfs_spanning_tree(network.graph(), root).ok_or_else(|| CoreError::InvalidInput {
                reason: "network disconnected before the prune round (environment fault)"
                    .to_string(),
            })?;
        let keep = bfs.to_graph();
        let current = network.graph().clone();
        for e in current.edges() {
            if !keep.has_edge(e.a, e.b) {
                network.stage_deactivation(e.a, e.b)?;
            }
        }
        network.commit_round();
    }

    config.check_round_budget(network)?;
    Ok(TransformationOutcome::from_network(root, network))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::properties::ceil_log2;
    use adn_graph::traversal::diameter;
    use adn_graph::{generators, GraphFamily, UidAssignment};

    fn run_general(
        initial: &Graph,
        uids: &UidMap,
        target: CentralizedConfig,
    ) -> Result<TransformationOutcome, CoreError> {
        let mut network = Network::new(initial.clone());
        execute_general(&mut network, uids, target, &RunConfig::default())
    }

    fn run_cut(initial: &Graph, uids: &UidMap) -> Result<TransformationOutcome, CoreError> {
        let mut network = Network::new(initial.clone());
        execute_cut_in_half(&mut network, uids, &RunConfig::default())
    }

    #[test]
    fn cut_in_half_reaches_log_diameter_with_linear_activations() {
        for &n in &[8usize, 16, 64, 128, 256, 500] {
            let g = generators::line(n);
            let uids = UidMap::new(n, UidAssignment::Sequential);
            let outcome = run_cut(&g, &uids).unwrap();
            // Θ(n) total activations (in fact < n).
            assert!(
                outcome.metrics.total_activations <= n,
                "n={n}: {} activations",
                outcome.metrics.total_activations
            );
            // O(log n) rounds.
            assert!(outcome.rounds <= ceil_log2(n) + 1, "n={n}");
            // O(log n) final diameter.
            let d = diameter(&outcome.final_graph).unwrap();
            assert!(d <= 2 * ceil_log2(n) + 2, "n={n}: diameter {d}");
        }
    }

    #[test]
    fn cut_in_half_rejects_non_lines() {
        let g = generators::ring(5);
        let uids = UidMap::new(5, UidAssignment::Sequential);
        assert!(matches!(
            run_cut(&g, &uids),
            Err(CoreError::InvalidInput { .. })
        ));
        let empty = UidMap::new(0, UidAssignment::Sequential);
        assert!(matches!(
            run_cut(&Graph::new(0), &empty),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_work() {
        let g = generators::line(32);
        let line: Vec<NodeId> = (0..32).map(NodeId).collect();
        let cut = run_cut_in_half_on_line(&g, &line).unwrap();
        assert!(cut.metrics.total_activations <= 32);
        let uids = UidMap::new(32, UidAssignment::Sequential);
        let pruned = run_centralized_general(&g, &uids, true).unwrap();
        assert!(adn_graph::properties::is_tree(&pruned.final_graph));
        let loose = run_centralized_general(&g, &uids, false).unwrap();
        assert!(loose.final_graph.edge_count() >= pruned.final_graph.edge_count());
    }

    #[test]
    fn general_strategy_works_on_all_families() {
        for family in GraphFamily::ALL {
            let g = family.generate(60, 3);
            let n = g.node_count();
            let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 1 });
            let outcome = run_general(&g, &uids, CentralizedConfig::LowDiameter).unwrap();
            // Θ(n) activations: the Euler tour has < 2n positions.
            assert!(
                outcome.metrics.total_activations <= 2 * n,
                "{family}: {} activations for n={n}",
                outcome.metrics.total_activations
            );
            // O(log n) rounds.
            assert!(outcome.rounds <= ceil_log2(2 * n) + 2, "{family}");
            // Low final diameter.
            let d = diameter(&outcome.final_graph).unwrap();
            assert!(d <= 3 * ceil_log2(n.max(2)) + 3, "{family}: diameter {d}");
        }
    }

    #[test]
    fn pruned_variant_yields_a_low_depth_tree() {
        let g = generators::line(200);
        let uids = UidMap::new(200, UidAssignment::Sequential);
        let outcome = run_general(&g, &uids, CentralizedConfig::PruneToTree).unwrap();
        assert!(adn_graph::properties::is_tree(&outcome.final_graph));
        let tree =
            adn_graph::RootedTree::from_tree_graph(&outcome.final_graph, outcome.leader).unwrap();
        assert!(tree.depth() <= 3 * ceil_log2(200), "depth {}", tree.depth());
        // Leader is the max UID node (node 199 under Sequential).
        assert_eq!(outcome.leader, NodeId(199));
    }

    #[test]
    fn rejects_disconnected_graphs() {
        let mut g = generators::line(6);
        g.remove_edge(NodeId(1), NodeId(2)).unwrap();
        let uids = UidMap::new(6, UidAssignment::Sequential);
        assert!(matches!(
            run_general(&g, &uids, CentralizedConfig::LowDiameter),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn single_node_is_trivial() {
        let g = Graph::new(1);
        let uids = UidMap::new(1, UidAssignment::Sequential);
        let outcome = run_general(&g, &uids, CentralizedConfig::PruneToTree).unwrap();
        assert_eq!(outcome.metrics.total_activations, 0);
    }
}
