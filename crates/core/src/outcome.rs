//! Common result type for the transformation algorithms.

use adn_graph::{Graph, NodeId};
use adn_sim::{EdgeMetrics, RoundStats};

/// Outcome of one of the paper's transformation algorithms
/// (`GraphToStar`, `GraphToWreath`, `GraphToThinWreath`, clique formation
/// or a centralized strategy).
///
/// Besides the metered execution, it records the two pieces of the
/// Depth-d Tree problem statement: the elected leader (root) and the final
/// reconfigured network.
#[derive(Debug, Clone)]
pub struct TransformationOutcome {
    /// The elected unique leader (the paper's `u_max` for the distributed
    /// algorithms; the chosen root for centralized strategies).
    pub leader: NodeId,
    /// The final network `G_f` produced by the transformation.
    pub final_graph: Graph,
    /// Number of phases executed (0 for algorithms without a phase
    /// structure).
    pub phases: usize,
    /// Rounds consumed (mirrors `metrics.rounds`).
    pub rounds: usize,
    /// The edge-complexity metrics of the execution.
    pub metrics: EdgeMetrics,
    /// Per-phase number of committees alive (empty when not applicable);
    /// drives the committee-decay figure (F4).
    pub committees_per_phase: Vec<usize>,
    /// Optional per-round trace.
    pub trace: Vec<RoundStats>,
}

impl TransformationOutcome {
    /// Final diameter of `G_f` (None if disconnected — which would be an
    /// algorithm bug).
    pub fn final_diameter(&self) -> Option<usize> {
        adn_graph::traversal::diameter(&self.final_graph)
    }

    /// Maximum degree of `G_f`.
    pub fn final_max_degree(&self) -> usize {
        self.final_graph.max_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::generators;

    #[test]
    fn outcome_accessors() {
        let outcome = TransformationOutcome {
            leader: NodeId(0),
            final_graph: generators::star(8),
            phases: 3,
            rounds: 6,
            metrics: EdgeMetrics::default(),
            committees_per_phase: vec![8, 4, 1],
            trace: Vec::new(),
        };
        assert_eq!(outcome.final_diameter(), Some(2));
        assert_eq!(outcome.final_max_degree(), 7);
    }
}
