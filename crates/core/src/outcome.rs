//! Common result type for the transformation algorithms.

use adn_graph::{Graph, NodeId};
use adn_runtime::RuntimeReport;
use adn_sim::{DstReport, EdgeMetrics, Network, RoundStats};

/// Outcome of any registered algorithm (`GraphToStar`, `GraphToWreath`,
/// `GraphToThinWreath`, clique formation, flooding or a centralized
/// strategy).
///
/// Besides the metered execution, it records the two pieces of the
/// Depth-d Tree problem statement: the elected leader (root) and the final
/// reconfigured network. Task-layer by-products (token dissemination) are
/// folded in as well, so one outcome type covers the whole registry.
#[derive(Debug, Clone)]
pub struct TransformationOutcome {
    /// The elected unique leader (the paper's `u_max` for the distributed
    /// algorithms; the chosen root for centralized strategies).
    pub leader: NodeId,
    /// The final network `G_f` produced by the transformation.
    pub final_graph: Graph,
    /// Number of phases executed (0 for algorithms without a phase
    /// structure).
    pub phases: usize,
    /// Rounds consumed (mirrors `metrics.rounds`).
    pub rounds: usize,
    /// The edge-complexity metrics of the execution.
    pub metrics: EdgeMetrics,
    /// Per-phase number of committees alive (empty when not applicable);
    /// drives the committee-decay figure (F4).
    pub committees_per_phase: Vec<usize>,
    /// Optional per-round trace (populated when the run was configured
    /// with `TraceLevel::PerRound`).
    pub trace: Vec<RoundStats>,
    /// Tokens known by each node at the end of a dissemination run
    /// (flooding); empty for algorithms that do not disseminate tokens.
    pub tokens_per_node: Vec<usize>,
    /// Report of the deterministic-simulation-testing layer (fault
    /// schedule + invariant violations), harvested automatically when the
    /// execution ran on a DST-armed network; `None` otherwise.
    pub dst: Option<DstReport>,
    /// Report of the asynchronous runtime (delivery steps, message and
    /// ack counts, termination detection), populated when the run used an
    /// asynchronous [`crate::algorithm::EngineMode`]; `None` for
    /// synchronous executions. Asynchronous runs have no round counter,
    /// so `rounds` then reflects only committed reconfiguration rounds.
    pub runtime: Option<RuntimeReport>,
}

impl TransformationOutcome {
    /// Builds an outcome from a finished execution on `network`: final
    /// snapshot, metrics, rounds and the captured trace are taken from the
    /// network; phase-structure fields start empty and are filled in by
    /// the algorithm when applicable. Taking the outcome ends the capture:
    /// tracing is switched off so later work on the same network does not
    /// silently keep accumulating rounds.
    pub fn from_network(leader: NodeId, network: &mut Network) -> Self {
        network.set_trace_enabled(false);
        TransformationOutcome {
            leader,
            final_graph: network.graph().clone(),
            phases: 0,
            rounds: network.metrics().rounds,
            metrics: network.metrics().clone(),
            committees_per_phase: Vec::new(),
            trace: network.take_trace(),
            tokens_per_node: Vec::new(),
            dst: network.take_dst_report(),
            runtime: None,
        }
    }

    /// Final diameter of `G_f` (None if disconnected — which would be an
    /// algorithm bug).
    pub fn final_diameter(&self) -> Option<usize> {
        adn_graph::traversal::diameter(&self.final_graph)
    }

    /// Maximum degree of `G_f`.
    pub fn final_max_degree(&self) -> usize {
        self.final_graph.max_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::generators;

    #[test]
    fn outcome_accessors() {
        let outcome = TransformationOutcome {
            leader: NodeId(0),
            final_graph: generators::star(8),
            phases: 3,
            rounds: 6,
            metrics: EdgeMetrics::default(),
            committees_per_phase: vec![8, 4, 1],
            trace: Vec::new(),
            tokens_per_node: Vec::new(),
            dst: None,
            runtime: None,
        };
        assert_eq!(outcome.final_diameter(), Some(2));
        assert_eq!(outcome.final_max_degree(), 7);
    }

    #[test]
    fn from_network_mirrors_the_network_state() {
        let mut network = Network::new(generators::line(5));
        network.stage_activation(NodeId(0), NodeId(2)).unwrap();
        network.commit_round();
        let outcome = TransformationOutcome::from_network(NodeId(4), &mut network);
        assert_eq!(outcome.leader, NodeId(4));
        assert_eq!(outcome.rounds, 1);
        assert_eq!(outcome.metrics.total_activations, 1);
        assert!(outcome.final_graph.has_edge(NodeId(0), NodeId(2)));
        assert!(outcome.phases == 0 && outcome.committees_per_phase.is_empty());
        assert!(outcome.tokens_per_node.is_empty());
        assert!(outcome.dst.is_none());
    }
}
