//! Asynchronous `LineToCompleteBinaryTree` (Appendix B), generalised to
//! arbitrary arity.
//!
//! Nodes wake up at different rounds (in the wreath algorithms the wake-up
//! round is the time at which the activation message propagated from an
//! ex-committee leader reaches the node). The paper sequences the pointer
//! jumps of the synchronous subroutine with `EA`/`DEA` activation and
//! deactivation counters so that, despite the staggered wake-ups, the
//! asynchronous execution performs **exactly the same edge activations and
//! deactivations** as the synchronous one (Lemma B.4) and finishes within
//! `O(log n + k)` rounds where `k` is the last wake-up time
//! (Corollary B.5).
//!
//! We implement the same discipline in its extensional form: every node
//! follows its synchronous jump schedule, and a jump is performed in a
//! round only when (i) the node, its current parent and the jump target
//! are awake, (ii) the supporting edge between the current parent and the
//! target is active at the beginning of the round (the distance-2
//! witness), and (iii) no child of the node still needs the edge about to
//! be deactivated — unless that child performs its own jump in the very
//! same round, mirroring the simultaneity of the synchronous execution.
//! These are precisely the constraints the `EA`/`DEA` counters encode; the
//! result is bit-for-bit the synchronous tree, which the tests assert for
//! arbitrary wake-up schedules.

use crate::subroutines::LineScratch;
use crate::CoreError;
use adn_graph::edgeset::SortedEdgeSet;
use adn_graph::{Edge, NodeId, RootedTree};
use adn_sim::Network;

/// Configuration for [`run_async_line_to_tree`].
#[derive(Debug, Clone)]
pub struct AsyncLineConfig {
    /// Maximum number of children per node in the constructed tree.
    pub arity: usize,
    /// Edges that must never be deactivated (ring edges in the wreath
    /// algorithms). A flat sorted set: built once per committee merge,
    /// probed per jump.
    pub protected_edges: SortedEdgeSet,
    /// Wake-up round (1-based, relative to the start of the subroutine)
    /// for each position of the line. Position `i` refers to `line[i]`.
    pub wake_round: Vec<usize>,
}

impl AsyncLineConfig {
    /// Synchronous special case: every node awake from round 1.
    pub fn all_awake(n: usize, arity: usize) -> Self {
        AsyncLineConfig {
            arity,
            protected_edges: SortedEdgeSet::new(),
            wake_round: vec![1; n],
        }
    }

    /// Builder-style setter for the protected edge set.
    pub fn with_protected_edges<I: IntoIterator<Item = Edge>>(mut self, edges: I) -> Self {
        self.protected_edges = edges.into_iter().collect();
        self
    }
}

/// The synchronous jump schedule: for every position, the ordered list of
/// grandparent positions it hops to. Computed by replaying the synchronous
/// subroutine purely on positions (no network). Shared with the actor
/// implementation in [`crate::subroutines::runtime_line_to_tree`].
pub(crate) fn plan_sync_schedule(n: usize, arity: usize) -> Vec<Vec<usize>> {
    let mut schedule: Vec<Vec<usize>> = vec![Vec::new(); n];
    if n <= 1 {
        return schedule;
    }
    let mut parent_pos: Vec<usize> = (0..n).map(|i| i.saturating_sub(1)).collect();
    let mut child_count: Vec<usize> = (0..n).map(|i| usize::from(i + 1 < n)).collect();
    let mut terminated: Vec<bool> = vec![false; n];
    terminated[0] = true;
    loop {
        let begin_child_count = child_count.clone();
        let mut planned_new: Vec<usize> = vec![0; n];
        let mut jumps: Vec<(usize, usize, usize)> = Vec::new();
        for pos in 1..n {
            if terminated[pos] {
                continue;
            }
            let p = parent_pos[pos];
            if p == 0 {
                terminated[pos] = true;
                continue;
            }
            let gp = parent_pos[p];
            if begin_child_count[gp] >= arity {
                terminated[pos] = true;
                continue;
            }
            if begin_child_count[gp] + planned_new[gp] >= arity {
                continue;
            }
            planned_new[gp] += 1;
            jumps.push((pos, p, gp));
        }
        if jumps.is_empty() {
            if terminated.iter().all(|&t| t) {
                break;
            }
            continue;
        }
        for (pos, p, gp) in jumps {
            schedule[pos].push(gp);
            parent_pos[pos] = gp;
            child_count[p] -= 1;
            child_count[gp] += 1;
        }
    }
    schedule
}

/// Runs the asynchronous line-to-tree subroutine.
///
/// Arguments are as in
/// [`run_line_to_tree`](crate::subroutines::run_line_to_tree); the
/// returned tree is again in position space (vertex `i` is `line[i]`).
///
/// # Errors
///
/// * [`CoreError::InvalidInput`] on malformed lines, zero arity, or a
///   `wake_round` vector of the wrong length.
/// * [`CoreError::DidNotConverge`] / [`CoreError::Sim`] on implementation
///   bugs.
pub fn run_async_line_to_tree(
    network: &mut Network,
    line: &[NodeId],
    config: &AsyncLineConfig,
) -> Result<(RootedTree, usize), CoreError> {
    let mut scratch = LineScratch::new();
    run_async_line_to_tree_with_scratch(network, line, config, &mut scratch)
}

/// [`run_async_line_to_tree`] with caller-owned scratch state: the
/// synchronous jump schedule is memoised per (length, arity) and the
/// positional vectors are recycled, so a caller performing many merges
/// (the wreath engine: one tree rebuild per root per phase) pays the
/// planning and allocation cost once per distinct ring size instead of
/// once per merge. Behaviourally identical to the plain entry point.
///
/// # Errors
///
/// As [`run_async_line_to_tree`].
pub fn run_async_line_to_tree_with_scratch(
    network: &mut Network,
    line: &[NodeId],
    config: &AsyncLineConfig,
    scratch: &mut LineScratch,
) -> Result<(RootedTree, usize), CoreError> {
    let n = line.len();
    if n == 0 {
        return Err(CoreError::InvalidInput {
            reason: "line must contain at least one node".into(),
        });
    }
    if config.arity == 0 {
        return Err(CoreError::InvalidInput {
            reason: "arity must be at least 1".into(),
        });
    }
    if config.wake_round.len() != n {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "wake_round has {} entries for a line of {} nodes",
                config.wake_round.len(),
                n
            ),
        });
    }
    scratch.seen.clear();
    scratch.seen.extend_from_slice(line);
    scratch.seen.sort_unstable();
    for w in scratch.seen.windows(2) {
        if w[0] == w[1] {
            return Err(CoreError::InvalidInput {
                reason: format!("node {} appears twice in the line", w[0]),
            });
        }
    }
    for w in line.windows(2) {
        if !network.graph().has_edge(w[0], w[1]) {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "consecutive line nodes {} and {} are not adjacent",
                    w[0], w[1]
                ),
            });
        }
    }
    if n == 1 {
        let tree = RootedTree::from_parents(NodeId(0), vec![None]).expect("trivial tree");
        return Ok((tree, 0));
    }

    let LineScratch {
        schedules,
        parent_pos,
        children,
        jumps_done,
        will_jump,
        movers,
        wave_acts,
        wave_drops,
        ..
    } = scratch;
    let schedule: &[Vec<usize>] = schedules
        .entry((n, config.arity))
        .or_insert_with(|| plan_sync_schedule(n, config.arity));
    parent_pos.clear();
    parent_pos.extend((0..n).map(|i| i.saturating_sub(1)));
    if children.len() < n {
        children.resize_with(n, Vec::new);
    }
    for list in children[..n].iter_mut() {
        list.clear();
    }
    for (i, list) in children[..n.saturating_sub(1)].iter_mut().enumerate() {
        list.push(i + 1);
    }
    jumps_done.clear();
    jumps_done.resize(n, 0);

    let is_done = |jumps_done: &[usize], pos: usize| jumps_done[pos] >= schedule[pos].len();

    let max_wake = config.wake_round.iter().copied().max().unwrap_or(1);
    let round_limit = max_wake + 8 * adn_graph::properties::ceil_log2(n.max(2)) + 32;
    let mut rounds = 0usize;

    while !(1..n).all(|pos| is_done(jumps_done, pos)) {
        rounds += 1;
        if rounds > round_limit {
            return Err(CoreError::DidNotConverge {
                algorithm: "AsyncLineToTree",
                phase_limit: round_limit,
            });
        }
        let awake = |pos: usize| rounds >= config.wake_round[pos];

        // Fixpoint marking of the jumps performed this round: a node may
        // jump if its children either finished, are already ahead, or jump
        // simultaneously (the synchronous-simultaneity case).
        will_jump.clear();
        will_jump.resize(n, false);
        loop {
            let mut changed = false;
            for pos in (1..n).rev() {
                if will_jump[pos] || is_done(jumps_done, pos) || !awake(pos) {
                    continue;
                }
                let cp = parent_pos[pos];
                let gp = schedule[pos][jumps_done[pos]];
                if !awake(cp) || !awake(gp) {
                    continue;
                }
                // Distance-2 witness: the supporting edge (cp, gp) must be
                // active at the beginning of this round.
                if !network.graph().has_edge(line[cp], line[gp]) {
                    continue;
                }
                // Children that still need the (pos, cp) edge must move in
                // the same round.
                let children_ok = children[pos].iter().all(|&c| {
                    is_done(jumps_done, c) || jumps_done[c] > jumps_done[pos] || will_jump[c]
                });
                if !children_ok {
                    continue;
                }
                will_jump[pos] = true;
                changed = true;
            }
            if !changed {
                break;
            }
        }

        movers.clear();
        movers.extend((1..n).filter(|&p| will_jump[p]));
        if movers.is_empty() {
            network.advance_idle_rounds(1);
            continue;
        }
        // Batched wave commit: the supporting edge (cp, gp) was verified
        // active above, so the current parent doubles as the distance-2
        // witness and staging is probe-only.
        wave_acts.clear();
        wave_drops.clear();
        for &pos in movers.iter() {
            let cp = parent_pos[pos];
            let gp = schedule[pos][jumps_done[pos]];
            wave_acts.push(adn_sim::WaveActivation {
                initiator: line[pos],
                target: line[gp],
                witness: line[cp],
            });
            let old_edge = Edge::new(line[pos], line[cp]);
            if !config.protected_edges.contains(&old_edge) {
                wave_drops.push(old_edge);
            }
        }
        network.stage_jump_wave(wave_acts, wave_drops)?;
        network.commit_round();
        for &pos in movers.iter() {
            let cp = parent_pos[pos];
            let gp = schedule[pos][jumps_done[pos]];
            parent_pos[pos] = gp;
            if let Some(at) = children[cp].iter().position(|&c| c == pos) {
                children[cp].swap_remove(at);
            }
            children[gp].push(pos);
            jumps_done[pos] += 1;
        }
    }

    let parents: Vec<Option<NodeId>> = (0..n)
        .map(|pos| {
            if pos == 0 {
                None
            } else {
                Some(NodeId(parent_pos[pos]))
            }
        })
        .collect();
    let tree = RootedTree::from_parents(NodeId(0), parents).expect("valid tree by construction");
    Ok((tree, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subroutines::line_to_tree::{run_line_to_tree, LineToTreeConfig};
    use adn_graph::properties::ceil_log2;
    use adn_graph::rng::DetRng;
    use adn_graph::{generators, NodeId};

    fn identity_line(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn sync_tree(n: usize, arity: usize) -> RootedTree {
        let g = generators::line(n);
        let mut net = Network::new(g);
        let config = LineToTreeConfig {
            arity,
            protected_edges: SortedEdgeSet::new(),
        };
        run_line_to_tree(&mut net, &identity_line(n), &config)
            .unwrap()
            .0
    }

    #[test]
    fn all_awake_matches_synchronous_output() {
        for &n in &[2usize, 5, 8, 16, 33, 64] {
            let g = generators::line(n);
            let mut net = Network::new(g);
            let config = AsyncLineConfig::all_awake(n, 2);
            let (tree, rounds) =
                run_async_line_to_tree(&mut net, &identity_line(n), &config).unwrap();
            assert_eq!(tree, sync_tree(n, 2), "n={n}");
            assert!(rounds <= ceil_log2(n) + 2);
        }
    }

    #[test]
    fn uniform_delay_matches_synchronous_output_shifted_in_time() {
        for &delay in &[3usize, 7] {
            let n = 48;
            let g = generators::line(n);
            let mut net = Network::new(g);
            let config = AsyncLineConfig {
                arity: 2,
                protected_edges: SortedEdgeSet::new(),
                wake_round: vec![delay; n],
            };
            let (tree, rounds) =
                run_async_line_to_tree(&mut net, &identity_line(n), &config).unwrap();
            assert_eq!(tree, sync_tree(n, 2));
            assert!(rounds >= delay);
            assert!(rounds <= delay + ceil_log2(n) + 2);
        }
    }

    #[test]
    fn propagation_wake_schedules_match_synchronous_output() {
        // Wake-up times as produced by the wreath merge: the activation
        // message reaches a node after at most O(log n) rounds.
        for &n in &[8usize, 16, 32, 64] {
            let wake: Vec<usize> = (0..n).map(|i| 1 + (i % (ceil_log2(n).max(1)))).collect();
            let g = generators::line(n);
            let mut net = Network::new(g);
            let config = AsyncLineConfig {
                arity: 2,
                protected_edges: SortedEdgeSet::new(),
                wake_round: wake,
            };
            let (tree, rounds) =
                run_async_line_to_tree(&mut net, &identity_line(n), &config).unwrap();
            // Lemma B.4: identical final tree.
            assert_eq!(tree, sync_tree(n, 2), "n={n}");
            // Corollary B.5: O(log n + k) rounds.
            assert!(rounds <= 4 * ceil_log2(n) + 8, "n={n}: rounds {rounds}");
            assert!(net.metrics().max_total_degree <= 4);
        }
    }

    #[test]
    fn random_wake_schedules_match_synchronous_output() {
        let mut rng = DetRng::seed_from_u64(7);
        for &n in &[16usize, 40, 64] {
            for _ in 0..4 {
                let max_delay = ceil_log2(n) + 3;
                let wake: Vec<usize> = (0..n).map(|_| 1 + rng.gen_range(0, max_delay)).collect();
                let g = generators::line(n);
                let mut net = Network::new(g);
                let config = AsyncLineConfig {
                    arity: 2,
                    protected_edges: SortedEdgeSet::new(),
                    wake_round: wake.clone(),
                };
                let (tree, rounds) =
                    run_async_line_to_tree(&mut net, &identity_line(n), &config).unwrap();
                // Lemma B.4: identical to the synchronous execution.
                assert_eq!(tree, sync_tree(n, 2), "n={n}, wake={wake:?}");
                // Corollary B.5: O(log n + k).
                assert!(rounds <= 4 * ceil_log2(n) + 2 * max_delay + 8);
                assert!(net.metrics().max_total_degree <= 4, "n={n}, wake={wake:?}");
            }
        }
    }

    #[test]
    fn polylog_arity_async_matches_sync() {
        let n = 128;
        let arity = ceil_log2(n);
        let wake: Vec<usize> = (0..n).map(|i| 1 + i % 5).collect();
        let g = generators::line(n);
        let mut net = Network::new(g);
        let config = AsyncLineConfig {
            arity,
            protected_edges: SortedEdgeSet::new(),
            wake_round: wake,
        };
        let (tree, _) = run_async_line_to_tree(&mut net, &identity_line(n), &config).unwrap();
        assert_eq!(tree, sync_tree(n, arity));
        for u in (0..n).map(NodeId) {
            assert!(tree.child_count(u) <= arity);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = generators::line(4);
        let mut net = Network::new(g);
        assert!(matches!(
            run_async_line_to_tree(&mut net, &[], &AsyncLineConfig::all_awake(0, 2)),
            Err(CoreError::InvalidInput { .. })
        ));
        assert!(matches!(
            run_async_line_to_tree(
                &mut net,
                &identity_line(4),
                &AsyncLineConfig::all_awake(3, 2) // wrong wake length
            ),
            Err(CoreError::InvalidInput { .. })
        ));
        assert!(matches!(
            run_async_line_to_tree(
                &mut net,
                &identity_line(4),
                &AsyncLineConfig::all_awake(4, 0)
            ),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn protected_edges_survive_async_run() {
        let n = 24;
        let g = generators::line(n);
        let protected: SortedEdgeSet = g.edges().collect();
        let mut net = Network::new(g.clone());
        let config = AsyncLineConfig {
            arity: 2,
            protected_edges: protected,
            wake_round: (0..n).map(|i| 1 + i % 3).collect(),
        };
        let _ = run_async_line_to_tree(&mut net, &identity_line(n), &config).unwrap();
        for e in g.edges() {
            assert!(net.graph().has_edge(e.a, e.b));
        }
    }
}
