//! Basic subroutines (Section 2.3 and Appendices A–C).
//!
//! * [`tree_to_star`] — `TreeToStar`: any rooted tree becomes a spanning
//!   star centred at the root in `⌈log d⌉` rounds (Proposition 2.1).
//! * [`line_to_tree`] — the synchronous `LineToCompleteBinaryTree`
//!   (Proposition 2.2) generalised to arbitrary arity `k`; `k = 2` is the
//!   paper's binary variant, `k = ⌈log n⌉` is the
//!   `LineToCompletePolylogarithmicTree` used by `GraphToThinWreath`.
//! * [`async_line_to_tree`] — the asynchronous wake-up variant
//!   (Appendix B), which the wreath algorithms run after merging rings.

pub mod async_line_to_tree;
pub mod line_to_tree;
pub mod tree_to_star;

pub use async_line_to_tree::{run_async_line_to_tree, AsyncLineConfig};
pub use line_to_tree::{run_line_to_tree, LineToTreeConfig};
pub use tree_to_star::run_tree_to_star;
