//! Basic subroutines (Section 2.3 and Appendices A–C).
//!
//! * [`tree_to_star`] — `TreeToStar`: any rooted tree becomes a spanning
//!   star centred at the root in `⌈log d⌉` rounds (Proposition 2.1).
//! * [`line_to_tree`] — the synchronous `LineToCompleteBinaryTree`
//!   (Proposition 2.2) generalised to arbitrary arity `k`; `k = 2` is the
//!   paper's binary variant, `k = ⌈log n⌉` is the
//!   `LineToCompletePolylogarithmicTree` used by `GraphToThinWreath`.
//! * [`async_line_to_tree`] — the asynchronous wake-up variant
//!   (Appendix B), which the wreath algorithms run after merging rings.
//! * [`runtime_line_to_tree`] — the same subroutine as message-driven
//!   actors on the `adn-runtime` schedulers (no round loop at all).
//! * [`runtime_committee`] — the committee algorithms (`GraphToStar`, the
//!   wreath family) as message-driven actors on the same schedulers, with
//!   armed fault plans.

pub mod async_line_to_tree;
pub mod line_to_tree;
pub mod runtime_committee;
pub mod runtime_line_to_tree;
pub mod tree_to_star;

pub use async_line_to_tree::{
    run_async_line_to_tree, run_async_line_to_tree_with_scratch, AsyncLineConfig,
};
pub use line_to_tree::{run_line_to_tree, run_line_to_tree_with_scratch, LineToTreeConfig};
pub use runtime_committee::{
    run_runtime_star, run_runtime_star_faulted, run_runtime_wreath, run_runtime_wreath_faulted,
};
pub use runtime_line_to_tree::{
    run_runtime_line_to_tree_free, run_runtime_line_to_tree_seeded, TreeActor, TreeMsg,
};
pub use tree_to_star::run_tree_to_star;

use std::collections::BTreeMap;

/// Reusable scratch state for repeated line-to-tree runs.
///
/// The wreath engine rebuilds a tree over every merged ring, once per
/// selection-tree root per phase; before this scratch existed, every such
/// rebuild re-planned the synchronous jump schedule from nothing and
/// allocated fresh positional state. One `LineScratch` threaded through a
/// whole execution memoises the schedules — they are pure functions of
/// `(line length, arity)`, and early phases merge many same-sized rings —
/// and recycles the positional vectors across merges.
///
/// Purely an allocation/memoisation cache: runs with and without a shared
/// scratch are behaviourally identical.
#[derive(Debug, Default)]
pub struct LineScratch {
    /// Memoised synchronous jump schedules, keyed by (line length, arity).
    pub(crate) schedules: BTreeMap<(usize, usize), Vec<Vec<usize>>>,
    /// Current parent of every position.
    pub(crate) parent_pos: Vec<usize>,
    /// Children of every position (order-insensitive membership lists).
    pub(crate) children: Vec<Vec<usize>>,
    /// Number of schedule jumps each position has performed.
    pub(crate) jumps_done: Vec<usize>,
    /// Per-round jump marks (async fixpoint pass).
    pub(crate) will_jump: Vec<bool>,
    /// Per-round mover list (async commit pass).
    pub(crate) movers: Vec<usize>,
    /// Line-validation scratch (duplicate detection by sort).
    pub(crate) seen: Vec<adn_graph::NodeId>,
    /// Child counts (synchronous variant).
    pub(crate) child_count: Vec<usize>,
    /// Termination flags (synchronous variant).
    pub(crate) terminated: Vec<bool>,
    /// Per-round wave column: witnessed activations for `stage_jump_wave`.
    pub(crate) wave_acts: Vec<adn_sim::WaveActivation>,
    /// Per-round wave column: deactivations for `stage_jump_wave`.
    pub(crate) wave_drops: Vec<adn_graph::Edge>,
}

impl LineScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        LineScratch::default()
    }
}
