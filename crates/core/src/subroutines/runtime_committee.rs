//! Committee algorithms (`GraphToStar`, the wreath family) as
//! message-driven actors on the `adn-runtime` schedulers.
//!
//! The synchronous engines run a phase as a handful of lock-step rounds:
//! gossip the committee neighbourhood, let every leader decide, execute
//! the edge operations, transition modes. This module re-expresses each
//! phase as a sequence of **asynchronous mini-phases** separated by
//! Dijkstra–Scholten quiescence barriers (the schedulers' `run_phased`
//! entry points):
//!
//! 1. **Gossip** — every node sends its committee's `(leader, mode)` to
//!    each graph neighbour, so leaders later see exactly the committee
//!    adjacency the synchronous engines compute centrally.
//! 2. **Report** — members forward their gossip observations to their
//!    leader.
//! 3. **Decide** — leaders reproduce the synchronous selection rule
//!    (largest-UID strictly-larger neighbouring committee, with the
//!    lexicographically smallest bridge) from the reports alone and stage
//!    the first wave of edge operations; merging leaders instruct their
//!    members by message.
//! 4. **Execution mini-phases** — the remaining edge-operation waves
//!    (the star's round-B hop and deferred deactivations, the wreath's
//!    per-level splice rounds), each planned by a deterministic driver
//!    between barriers and carried out by the owning actors.
//!
//! The driver is plain in-process orchestration state (the committee
//! forest, the mode column, the wreath's ring splicing): it runs *between*
//! barriers, never inside the asynchronous execution, and mirrors the
//! synchronous transition rules verbatim. Because every decision is made
//! either on a complete message set (after a barrier) or by a
//! commutative rule, the resulting committee structures — final graph,
//! phase count, committees per phase — **equal the synchronous engines'
//! on delay-free and adversarial schedules alike**, which the
//! differential tests in `tests/runtime_model.rs` pin for both schedulers.
//!
//! Inside a wreath phase the merged rings are rebuilt into trees with the
//! actor-based [`runtime_line_to_tree`](super::runtime_line_to_tree)
//! subroutine, nested under the same scheduler family (seeded sub-seeds
//! are split deterministically from the master seed, so seeded replay
//! stays byte-identical).
//!
//! **Armed faults:** the seeded entry points accept a
//! [`FaultPlan`]; crashes sever a node mid-run and the protocols then
//! either complete or fail with a clean [`CoreError`] (no panic, no
//! hang — the phase limit and the scheduler's step budget bound every
//! execution). A crash plan makes the run diverge from the synchronous
//! baseline by design; the fault plan is consulted only by the *outer*
//! scheduler, between deliveries of the committee protocol itself.

use crate::algorithm::{EngineMode, RunConfig};
use crate::committee::{CommitteeForest, CommitteeId, SelectionForest};
use crate::graph_to_wreath::WreathConfig;
use crate::subroutines::{
    run_runtime_line_to_tree_free, run_runtime_line_to_tree_seeded, LineToTreeConfig,
};
use crate::{CoreError, TransformationOutcome};
use adn_graph::edgeset::SortedEdgeSet;
use adn_graph::properties::ceil_log2;
use adn_graph::{Edge, Graph, NodeId, Uid, UidMap};
use adn_runtime::{
    AsyncKnobs, AsyncProgram, Context, FaultPlan, FreeScheduler, RuntimeReport, SeededScheduler,
};
use adn_sim::Network;
use std::mem;
use std::sync::Arc;

/// A committee mode as carried on the wire (the star engine's `Mode`,
/// made `Copy` for gossip payloads). The wreath engine gossips
/// `Selection` for everyone — its selection rule ignores modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireMode {
    Selection,
    Merging(NodeId),
    Pulling(NodeId),
    Waiting,
}

/// One gossip observation: node `x` saw neighbour `y`, which reported
/// belonging to the committee led by `y_leader` currently in `y_mode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BridgeInfo {
    x: NodeId,
    y: NodeId,
    y_leader: NodeId,
    y_mode: WireMode,
}

/// Messages of the committee protocols.
#[derive(Debug, Clone)]
enum CommitteeMsg {
    /// Gossip: "I belong to the committee led by `leader`, in `mode`."
    Bridge { leader: NodeId, mode: WireMode },
    /// A member forwards its gossip observations to its leader.
    Report { bridges: Vec<BridgeInfo> },
    /// A merging leader instructs a member to join `into`'s star.
    MergeOp { into: NodeId },
}

/// Which mini-phase the actor runs when the scheduler starts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mini {
    Idle,
    Gossip,
    Report,
    StarDecide,
    StarHopB,
    Deact,
    WreathDecide,
    Exec,
}

/// One node of a committee protocol. The driver feeds the per-phase
/// inputs (leader, mode, neighbour snapshot) between barriers; within a
/// mini-phase the actor acts on messages alone.
struct CommitteeActor {
    uids: Arc<UidMap>,
    initial: Arc<Graph>,
    // Driver-fed inputs.
    mini: Mini,
    leader: NodeId,
    mode: WireMode,
    neighbors: Vec<NodeId>,
    members: Vec<NodeId>,
    assigned_acts: Vec<NodeId>,
    assigned_deacts: Vec<NodeId>,
    // Protocol state accumulated within a phase.
    bridges: Vec<BridgeInfo>,
    reports: Vec<BridgeInfo>,
    // Decision artifacts the driver reads after barriers.
    selection: Option<(NodeId, NodeId, NodeId)>,
    climb: Option<NodeId>,
    pending_b: Option<(NodeId, Option<NodeId>)>,
    pending_deacts: Vec<NodeId>,
}

impl CommitteeActor {
    fn new(id: usize, uids: &Arc<UidMap>, initial: &Arc<Graph>) -> Self {
        CommitteeActor {
            uids: Arc::clone(uids),
            initial: Arc::clone(initial),
            mini: Mini::Idle,
            leader: NodeId(id),
            mode: WireMode::Selection,
            neighbors: Vec::new(),
            members: Vec::new(),
            assigned_acts: Vec::new(),
            assigned_deacts: Vec::new(),
            bridges: Vec::new(),
            reports: Vec::new(),
            selection: None,
            climb: None,
            pending_b: None,
            pending_deacts: Vec::new(),
        }
    }

    fn clear_phase_state(&mut self) {
        self.members.clear();
        self.assigned_acts.clear();
        self.assigned_deacts.clear();
        self.bridges.clear();
        self.reports.clear();
        self.selection = None;
        self.climb = None;
        self.pending_b = None;
        self.pending_deacts.clear();
    }

    /// The synchronous selection rule, recomputed from reports: the
    /// largest-UID committee strictly above our own among the gossiped
    /// neighbours (filtered by the star's eligibility when `star_rules`),
    /// bridged by the lexicographically smallest `(x, y)` pair — exactly
    /// `CommitteeAdjacency::select_largest_uid_neighbor`. Every clause is
    /// order-independent, so the free scheduler's nondeterministic report
    /// arrival order cannot change the outcome.
    fn decide_selection(&self, me: NodeId, star_rules: bool) -> Option<(NodeId, NodeId, NodeId)> {
        let my_uid = self.uids.uid(me);
        let mut best: Option<(Uid, NodeId)> = None;
        for e in &self.reports {
            if e.y_leader == self.leader {
                continue; // intra-committee edge
            }
            if star_rules && matches!(e.y_mode, WireMode::Merging(_) | WireMode::Pulling(_)) {
                continue; // committed committees are not selectable targets
            }
            let uid = self.uids.uid(e.y_leader);
            if uid <= my_uid {
                continue;
            }
            if best.is_none_or(|(b, _)| uid > b) {
                best = Some((uid, e.y_leader));
            }
        }
        let (_, v) = best?;
        let (x, y) = self
            .reports
            .iter()
            .filter(|e| e.y_leader == v)
            .map(|e| (e.x, e.y))
            .min()?;
        Some((v, x, y))
    }

    /// The star leader's decision step (the synchronous round A, minus
    /// the deactivations, which wait for the dedicated `Deact` barrier so
    /// no activation witness disappears early).
    fn star_decide(&mut self, ctx: &mut Context<CommitteeMsg>) {
        let me = ctx.id();
        match self.mode {
            WireMode::Selection => {
                let Some((v, x, y)) = self.decide_selection(me, true) else {
                    return;
                };
                self.selection = Some((v, x, y));
                if self.neighbors.contains(&v) {
                    return; // already adjacent: nothing to activate
                }
                if me == x || y == v {
                    ctx.activate(v);
                    return;
                }
                // General case: helper edge (me, y) now, leader-leader
                // edge via witness y in the hop-B mini-phase.
                ctx.activate(y);
                self.pending_b = Some((v, Some(y)));
            }
            WireMode::Merging(into) => {
                for i in 0..self.members.len() {
                    let m = self.members[i];
                    if m != me {
                        ctx.send(m, CommitteeMsg::MergeOp { into });
                    }
                }
            }
            WireMode::Pulling(attach) => {
                // Any gossip entry for the attach node carries the same
                // `(leader, mode)` payload, so the pick is value-unique.
                let Some(e) = self.reports.iter().find(|e| e.y == attach).copied() else {
                    return; // degraded (faults): stay attached
                };
                let target = if attach != e.y_leader {
                    e.y_leader
                } else {
                    match e.y_mode {
                        WireMode::Merging(into) => into,
                        WireMode::Pulling(up) => up,
                        _ => attach,
                    }
                };
                if target != attach {
                    ctx.activate(target);
                    if !self.initial.has_edge(me, attach) {
                        self.pending_deacts.push(attach);
                    }
                }
                self.climb = Some(target);
            }
            WireMode::Waiting => {}
        }
    }
}

impl AsyncProgram for CommitteeActor {
    type Message = CommitteeMsg;

    fn on_start(&mut self, ctx: &mut Context<Self::Message>) {
        match self.mini {
            Mini::Idle => {}
            Mini::Gossip => {
                for i in 0..self.neighbors.len() {
                    let nb = self.neighbors[i];
                    ctx.send(
                        nb,
                        CommitteeMsg::Bridge {
                            leader: self.leader,
                            mode: self.mode,
                        },
                    );
                }
            }
            Mini::Report => {
                if ctx.id() == self.leader {
                    let mut own = mem::take(&mut self.bridges);
                    self.reports.append(&mut own);
                } else if !self.bridges.is_empty() {
                    let bridges = mem::take(&mut self.bridges);
                    ctx.send(self.leader, CommitteeMsg::Report { bridges });
                }
            }
            Mini::StarDecide => {
                if ctx.id() == self.leader {
                    self.star_decide(ctx);
                }
            }
            Mini::StarHopB => {
                if let Some((v, helper)) = self.pending_b.take() {
                    ctx.activate(v);
                    if let Some(y) = helper {
                        if !self.initial.has_edge(ctx.id(), y) {
                            self.pending_deacts.push(y);
                        }
                    }
                }
            }
            Mini::Deact => {
                for p in mem::take(&mut self.pending_deacts) {
                    ctx.deactivate(p);
                }
            }
            Mini::WreathDecide => {
                if ctx.id() == self.leader {
                    self.selection = self.decide_selection(ctx.id(), false);
                }
            }
            Mini::Exec => {
                for p in mem::take(&mut self.assigned_acts) {
                    ctx.activate(p);
                }
                for p in mem::take(&mut self.assigned_deacts) {
                    ctx.deactivate(p);
                }
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Context<Self::Message>) {
        match msg {
            CommitteeMsg::Bridge { leader, mode } => {
                self.bridges.push(BridgeInfo {
                    x: ctx.id(),
                    y: from,
                    y_leader: leader,
                    y_mode: mode,
                });
            }
            CommitteeMsg::Report { bridges } => {
                self.reports.extend(bridges);
            }
            CommitteeMsg::MergeOp { into } => {
                ctx.activate(into);
                if !self.initial.has_edge(ctx.id(), self.leader) {
                    self.pending_deacts.push(self.leader);
                }
            }
        }
    }
}

fn invariant(algorithm: &'static str, detail: String) -> CoreError {
    CoreError::BrokenInvariant { algorithm, detail }
}

fn build_actors(n: usize, uids: &UidMap, initial: &Graph) -> Vec<CommitteeActor> {
    let uids = Arc::new(uids.clone());
    let initial = Arc::new(initial.clone());
    (0..n)
        .map(|i| CommitteeActor::new(i, &uids, &initial))
        .collect()
}

/// Feeds every committee member its phase inputs and arms the gossip
/// mini-phase. All nodes belong to some live committee, so this covers
/// the whole actor array.
fn prep_gossip<F: Fn(CommitteeId) -> WireMode>(
    forest: &CommitteeForest,
    network: &Network,
    actors: &mut [CommitteeActor],
    mode_of: F,
) {
    let graph = network.graph();
    for &cid in forest.live_ids() {
        let leader = forest.leader(cid);
        let mode = mode_of(cid);
        for &m in forest.members(cid) {
            if m.index() >= actors.len() {
                continue;
            }
            let a = &mut actors[m.index()];
            a.clear_phase_state();
            a.leader = leader;
            a.mode = mode;
            a.neighbors.clear();
            a.neighbors.extend_from_slice(graph.neighbors_slice(m));
            a.mini = Mini::Gossip;
        }
        if leader.index() < actors.len() {
            actors[leader.index()].members = forest.members(cid).to_vec();
        }
    }
}

fn set_mini(actors: &mut [CommitteeActor], mini: Mini) {
    for a in actors.iter_mut() {
        a.mini = mini;
    }
}

/// Hands a pre-planned operation list to its owning actors and arms one
/// execution barrier (all guards were evaluated by the driver against
/// the snapshot the synchronous engine would have used).
fn assign_ops(
    actors: &mut [CommitteeActor],
    acts: &[(NodeId, NodeId)],
    deacts: &[(NodeId, NodeId)],
) {
    for a in actors.iter_mut() {
        a.assigned_acts.clear();
        a.assigned_deacts.clear();
        a.mini = Mini::Exec;
    }
    for &(a, b) in acts {
        if a.index() < actors.len() {
            actors[a.index()].assigned_acts.push(b);
        }
    }
    for &(a, b) in deacts {
        if a.index() < actors.len() {
            actors[a.index()].assigned_deacts.push(b);
        }
    }
}

// ---------------------------------------------------------------------------
// GraphToStar driver
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StarStage {
    Begin,
    Gossip,
    Report,
    Decide,
    HopB,
    Deact,
    Done,
}

/// The deterministic between-barriers orchestrator of the star phases.
/// Mirrors `graph_to_star::State::run_phase` clause for clause.
struct StarDriver<'a> {
    run: &'a RunConfig,
    n: usize,
    forest: CommitteeForest,
    mode: Vec<WireMode>,
    phases: usize,
    committees_per_phase: Vec<usize>,
    phase_limit: usize,
    stage: StarStage,
}

impl<'a> StarDriver<'a> {
    fn new(run: &'a RunConfig, n: usize) -> Self {
        StarDriver {
            run,
            n,
            forest: CommitteeForest::singletons(n),
            mode: vec![WireMode::Selection; n],
            phases: 0,
            committees_per_phase: Vec::new(),
            phase_limit: 40 * ceil_log2(n.max(2)) + 80,
            stage: StarStage::Begin,
        }
    }

    /// Called by the scheduler before every mini-phase. Returns `false`
    /// when the protocol has quiesced.
    fn step(
        &mut self,
        network: &mut Network,
        actors: &mut [CommitteeActor],
    ) -> Result<bool, CoreError> {
        loop {
            match self.stage {
                StarStage::Begin => {
                    if self.forest.live_count() <= 1 {
                        if self.n > 1 {
                            self.run.check_round_budget(network)?;
                            self.prep_termination(network, actors);
                            self.phases += 1;
                            self.committees_per_phase.push(1);
                            self.stage = StarStage::Done;
                            return Ok(true);
                        }
                        self.stage = StarStage::Done;
                        return Ok(false);
                    }
                    self.phases += 1;
                    self.run.check_round_budget(network)?;
                    if self.phases > self.phase_limit {
                        return Err(CoreError::DidNotConverge {
                            algorithm: "GraphToStar",
                            phase_limit: self.phase_limit,
                        });
                    }
                    self.committees_per_phase.push(self.forest.live_count());
                    let mode = &self.mode;
                    prep_gossip(&self.forest, network, actors, |cid| mode[cid.index()]);
                    self.stage = StarStage::Gossip;
                    return Ok(true);
                }
                StarStage::Gossip => {
                    set_mini(actors, Mini::Report);
                    self.stage = StarStage::Report;
                    return Ok(true);
                }
                StarStage::Report => {
                    set_mini(actors, Mini::StarDecide);
                    self.stage = StarStage::Decide;
                    return Ok(true);
                }
                StarStage::Decide => {
                    set_mini(actors, Mini::StarHopB);
                    self.stage = StarStage::HopB;
                    return Ok(true);
                }
                StarStage::HopB => {
                    set_mini(actors, Mini::Deact);
                    self.stage = StarStage::Deact;
                    return Ok(true);
                }
                StarStage::Deact => {
                    self.finish_phase(actors)?;
                    self.stage = StarStage::Begin;
                }
                StarStage::Done => return Ok(false),
            }
        }
    }

    /// The synchronous termination phase: deactivate every non-star edge,
    /// each assigned to its first endpoint.
    fn prep_termination(&self, network: &Network, actors: &mut [CommitteeActor]) {
        let leader = self.forest.leader(self.forest.live_ids()[0]);
        let deacts: Vec<(NodeId, NodeId)> = network
            .graph()
            .edges()
            .filter(|e| e.a != leader && e.b != leader)
            .map(|e| (e.a, e.b))
            .collect();
        assign_ops(actors, &[], &deacts);
    }

    /// Bookkeeping after the deactivation barrier: harvest the leaders'
    /// decisions and replay the synchronous merge/transition rules.
    fn finish_phase(&mut self, actors: &[CommitteeActor]) -> Result<(), CoreError> {
        let slots = self.forest.slot_count();
        let mut selections: Vec<(CommitteeId, CommitteeId)> = Vec::new();
        let mut did_select = vec![false; slots];
        let mut selected_by = vec![false; slots];
        for &cid in self.forest.live_ids() {
            if self.mode[cid.index()] != WireMode::Selection {
                continue;
            }
            let leader = self.forest.leader(cid);
            if let Some((v, _x, _y)) = actors[leader.index()].selection {
                let target = self.forest.committee_of(v).ok_or_else(|| {
                    invariant("GraphToStar", format!("selection target {v} is untracked"))
                })?;
                did_select[cid.index()] = true;
                selected_by[target.index()] = true;
                selections.push((cid, target));
            }
        }

        let mut merges: Vec<(CommitteeId, CommitteeId)> = Vec::new();
        for &cid in self.forest.live_ids() {
            if let WireMode::Merging(into) = self.mode[cid.index()] {
                let into_cid = self.forest.committee_of(into).ok_or_else(|| {
                    invariant("GraphToStar", format!("merge target {into} is untracked"))
                })?;
                merges.push((cid, into_cid));
            }
        }

        let mut climbs: Vec<(CommitteeId, NodeId)> = Vec::new();
        for &cid in self.forest.live_ids() {
            if let WireMode::Pulling(attach) = self.mode[cid.index()] {
                let leader = self.forest.leader(cid);
                // Degraded (faulted) committees recorded no climb: stay put.
                climbs.push((cid, actors[leader.index()].climb.unwrap_or(attach)));
            }
        }

        for &(dying, absorbing) in &merges {
            self.forest.absorb(dying, absorbing);
        }

        for (cid, new_attach) in climbs {
            let attach_cid = self.forest.committee_of(new_attach).ok_or_else(|| {
                invariant(
                    "GraphToStar",
                    format!("attach node {new_attach} is untracked"),
                )
            })?;
            let attach_is_root_leader = new_attach == self.forest.leader(attach_cid)
                && matches!(
                    self.mode[attach_cid.index()],
                    WireMode::Waiting | WireMode::Selection
                );
            self.mode[cid.index()] = if attach_is_root_leader {
                WireMode::Merging(new_attach)
            } else {
                WireMode::Pulling(new_attach)
            };
        }

        for &(selector, target) in &selections {
            let target_leader = self.forest.leader(target);
            self.mode[selector.index()] = if did_select[target.index()] {
                WireMode::Pulling(target_leader)
            } else {
                WireMode::Merging(target_leader)
            };
        }

        let mut has_children = vec![false; slots];
        for &cid in self.forest.live_ids() {
            let parent = match self.mode[cid.index()] {
                WireMode::Merging(into) => Some(into),
                WireMode::Pulling(attach) => Some(attach),
                _ => None,
            };
            if let Some(p) = parent {
                let pc = self.forest.committee_of(p).ok_or_else(|| {
                    invariant("GraphToStar", format!("parent node {p} is untracked"))
                })?;
                has_children[pc.index()] = true;
            }
        }
        for &cid in self.forest.live_ids() {
            match self.mode[cid.index()] {
                WireMode::Merging(_) | WireMode::Pulling(_) => {}
                WireMode::Selection | WireMode::Waiting => {
                    self.mode[cid.index()] =
                        if selected_by[cid.index()] || has_children[cid.index()] {
                            WireMode::Waiting
                        } else {
                            WireMode::Selection
                        };
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Wreath driver
// ---------------------------------------------------------------------------

/// Which scheduler family drives the run (and its nested line-to-tree
/// rebuilds).
#[derive(Debug, Clone, Copy)]
enum NestedEngine {
    Seeded { seed: u64 },
    Free { threads: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WreathStage {
    Begin,
    Gossip,
    Report,
    Decide,
    PlanLevel,
    LevelA,
    LevelB,
    LevelC,
    Cleanup,
    Done,
}

/// The between-barriers orchestrator of the wreath phases. Mirrors
/// `graph_to_wreath::run_phases` clause for clause: ring splicing is
/// planned level by level, each level's round A / round B+clean-up pair
/// becomes three barriers (activations, activations, deactivations), and
/// the merged rings are rebuilt with the nested runtime line-to-tree.
struct WreathDriver<'a> {
    run: &'a RunConfig,
    wreath: &'a WreathConfig,
    initial: &'a Graph,
    n: usize,
    nested: NestedEngine,
    knobs: AsyncKnobs,
    forest: CommitteeForest,
    tree_edges: Vec<Vec<Edge>>,
    tree_depth: Vec<usize>,
    ring_succ: Vec<NodeId>,
    ring_mark: Vec<(u64, CommitteeId)>,
    ring_len: Vec<usize>,
    merged_line: Vec<Vec<NodeId>>,
    epoch: u64,
    phases: usize,
    committees_per_phase: Vec<usize>,
    phase_limit: usize,
    stage: WreathStage,
    // Per-phase merge state.
    selected: Vec<Option<(CommitteeId, NodeId, NodeId)>>,
    sel: Option<SelectionForest>,
    frontier: Vec<CommitteeId>,
    stale_tree_edges: Vec<Edge>,
    merged_any: bool,
    // Per-level operation lists (synchronous round-B semantics).
    round_b: Vec<(NodeId, NodeId)>,
    helpers: Vec<(NodeId, NodeId)>,
    deactivate: Vec<(NodeId, NodeId)>,
    deacts_c: Vec<(NodeId, NodeId)>,
}

impl<'a> WreathDriver<'a> {
    fn new(
        run: &'a RunConfig,
        wreath: &'a WreathConfig,
        initial: &'a Graph,
        n: usize,
        nested: NestedEngine,
        knobs: AsyncKnobs,
    ) -> Self {
        WreathDriver {
            run,
            wreath,
            initial,
            n,
            nested,
            knobs,
            forest: CommitteeForest::singletons(n),
            tree_edges: vec![Vec::new(); n],
            tree_depth: vec![0; n],
            ring_succ: (0..n).map(NodeId).collect(),
            ring_mark: vec![(0, CommitteeId(0)); n],
            ring_len: vec![0; n],
            merged_line: vec![Vec::new(); n],
            epoch: 0,
            phases: 0,
            committees_per_phase: Vec::new(),
            phase_limit: 20 * ceil_log2(n.max(2)) + 40,
            stage: WreathStage::Begin,
            selected: Vec::new(),
            sel: None,
            frontier: Vec::new(),
            stale_tree_edges: Vec::new(),
            merged_any: false,
            round_b: Vec::new(),
            helpers: Vec::new(),
            deactivate: Vec::new(),
            deacts_c: Vec::new(),
        }
    }

    fn invariant(&self, detail: String) -> CoreError {
        invariant(self.wreath.name, detail)
    }

    fn step(
        &mut self,
        network: &mut Network,
        actors: &mut [CommitteeActor],
    ) -> Result<bool, CoreError> {
        loop {
            match self.stage {
                WreathStage::Begin => {
                    if self.forest.live_count() <= 1 {
                        if self.n > 1 {
                            self.run.check_round_budget(network)?;
                            self.prep_termination(network, actors);
                            self.phases += 1;
                            self.committees_per_phase.push(1);
                            self.stage = WreathStage::Done;
                            return Ok(true);
                        }
                        self.stage = WreathStage::Done;
                        return Ok(false);
                    }
                    self.phases += 1;
                    self.run.check_round_budget(network)?;
                    if self.phases > self.phase_limit {
                        return Err(CoreError::DidNotConverge {
                            algorithm: self.wreath.name,
                            phase_limit: self.phase_limit,
                        });
                    }
                    self.committees_per_phase.push(self.forest.live_count());
                    prep_gossip(&self.forest, network, actors, |_| WireMode::Selection);
                    self.stage = WreathStage::Gossip;
                    return Ok(true);
                }
                WreathStage::Gossip => {
                    set_mini(actors, Mini::Report);
                    self.stage = WreathStage::Report;
                    return Ok(true);
                }
                WreathStage::Report => {
                    set_mini(actors, Mini::WreathDecide);
                    self.stage = WreathStage::Decide;
                    return Ok(true);
                }
                WreathStage::Decide => {
                    if !self.harvest_selection(actors)? {
                        // No committee found a larger neighbour this phase;
                        // retry (the phase was already counted, mirroring
                        // the synchronous idle-and-continue).
                        self.stage = WreathStage::Begin;
                        continue;
                    }
                    self.stage = WreathStage::PlanLevel;
                }
                WreathStage::PlanLevel => {
                    let level = self.compute_level()?;
                    if level.is_empty() {
                        if !self.merged_any {
                            self.sel = None;
                            self.stage = WreathStage::Begin;
                            continue;
                        }
                        self.materialize_rings()?;
                        let cleanup = self.plan_cleanup(network)?;
                        if cleanup.is_empty() {
                            self.rebuild_and_retire(network)?;
                            self.stage = WreathStage::Begin;
                            continue;
                        }
                        assign_ops(actors, &[], &cleanup);
                        self.stage = WreathStage::Cleanup;
                        return Ok(true);
                    }
                    self.merged_any = true;
                    let acts_a = self.plan_splices(network, level)?;
                    assign_ops(actors, &acts_a, &[]);
                    self.stage = WreathStage::LevelA;
                    return Ok(true);
                }
                WreathStage::LevelA => {
                    // Post-round-A snapshot: plan the round-B activations
                    // and the deferred deactivations with the synchronous
                    // round-B guards.
                    let graph = network.graph();
                    let mut acts_b: Vec<(NodeId, NodeId)> = Vec::new();
                    for &(a, b) in &self.round_b {
                        if a != b && !graph.has_edge(a, b) {
                            acts_b.push((a, b));
                        }
                    }
                    self.deacts_c.clear();
                    for &(a, b) in &self.helpers {
                        if !self.initial.has_edge(a, b) && graph.has_edge(a, b) {
                            self.deacts_c.push((a, b));
                        }
                    }
                    for &(a, b) in &self.deactivate {
                        if !self.initial.has_edge(a, b) {
                            self.deacts_c.push((a, b));
                        }
                    }
                    assign_ops(actors, &acts_b, &[]);
                    self.stage = WreathStage::LevelB;
                    return Ok(true);
                }
                WreathStage::LevelB => {
                    let deacts = mem::take(&mut self.deacts_c);
                    assign_ops(actors, &[], &deacts);
                    self.stage = WreathStage::LevelC;
                    return Ok(true);
                }
                WreathStage::LevelC => {
                    self.stage = WreathStage::PlanLevel;
                }
                WreathStage::Cleanup => {
                    self.rebuild_and_retire(network)?;
                    self.stage = WreathStage::Begin;
                }
                WreathStage::Done => return Ok(false),
            }
        }
    }

    /// Harvests the leaders' selections; returns `false` when no
    /// committee selected. On success the selection forest and the ring
    /// splice state are initialised.
    fn harvest_selection(&mut self, actors: &[CommitteeActor]) -> Result<bool, CoreError> {
        let slots = self.forest.slot_count();
        self.selected = vec![None; slots];
        let mut sel_edges: Vec<(CommitteeId, CommitteeId)> = Vec::new();
        for &cid in self.forest.live_ids() {
            let leader = self.forest.leader(cid);
            if let Some((v, x, y)) = actors[leader.index()].selection {
                let target = self
                    .forest
                    .committee_of(v)
                    .ok_or_else(|| self.invariant(format!("selection target {v} is untracked")))?;
                self.selected[cid.index()] = Some((target, x, y));
                sel_edges.push((cid, target));
            }
        }
        if sel_edges.is_empty() {
            return Ok(false);
        }
        let sel = SelectionForest::new(&self.forest, &sel_edges);
        self.epoch += 1;
        for &r in sel.roots() {
            if !sel.has_children(r) {
                continue;
            }
            let members = self.forest.members(r);
            for w in members.windows(2) {
                self.ring_succ[w[0].index()] = w[1];
            }
            self.ring_succ[members[members.len() - 1].index()] = members[0];
            for &u in members {
                self.ring_mark[u.index()] = (self.epoch, r);
            }
            self.ring_len[r.index()] = members.len();
        }
        self.stale_tree_edges.clear();
        self.merged_any = false;
        self.frontier = sel.roots().to_vec();
        self.sel = Some(sel);
        Ok(true)
    }

    /// The next BFS level of the selection forest under the current
    /// frontier: `(root, child, bridge x, attach y)` tuples.
    fn compute_level(&self) -> Result<Vec<(CommitteeId, CommitteeId, NodeId, NodeId)>, CoreError> {
        let sel = self
            .sel
            .as_ref()
            .ok_or_else(|| self.invariant("level planning without a selection forest".into()))?;
        let mut level: Vec<(CommitteeId, CommitteeId, NodeId, NodeId)> = Vec::new();
        for &p in &self.frontier {
            for &c in sel.children(p) {
                let (_, x, y) = self.selected[c.index()].ok_or_else(|| {
                    self.invariant(format!(
                        "committee {c} has a parent but no recorded selection"
                    ))
                })?;
                level.push((sel.root_of(p), c, x, y));
            }
        }
        Ok(level)
    }

    /// Plans one splice level (the synchronous group chaining, verbatim):
    /// fills the round-B / helper / deactivate lists, advances the ring
    /// pointers, and returns the round-A activation list with its guard
    /// evaluated against the current (pre-level) snapshot.
    fn plan_splices(
        &mut self,
        network: &Network,
        level: Vec<(CommitteeId, CommitteeId, NodeId, NodeId)>,
    ) -> Result<Vec<(NodeId, NodeId)>, CoreError> {
        let mut grouped = level.clone();
        grouped.sort_by_key(|&(root, _, _, y)| (root, y));

        let mut round_a: Vec<(NodeId, NodeId)> = Vec::new();
        self.round_b.clear();
        self.helpers.clear();
        self.deactivate.clear();

        let mut g = 0usize;
        while g < grouped.len() {
            let (root, _, _, y) = grouped[g];
            let mut g_end = g + 1;
            while g_end < grouped.len() && grouped[g_end].0 == root && grouped[g_end].3 == y {
                g_end += 1;
            }
            let group = &grouped[g..g_end];
            g = g_end;
            if self.ring_mark[y.index()] != (self.epoch, root) {
                return Err(self.invariant(format!(
                    "attach node {y} is not on the merged ring of {root}"
                )));
            }
            let succ_after_y = self.ring_succ[y.index()];
            let len_before = self.ring_len[root.index()];
            let mut prev_end: NodeId = y;
            let mut segment_len = 0usize;
            for &(_, child, x, _) in group {
                let child_ring = self.forest.members(child);
                let x_pos = child_ring.iter().position(|&u| u == x).ok_or_else(|| {
                    self.invariant(format!(
                        "bridge node {x} is not on the ring of committee {child}"
                    ))
                })?;
                let m = child_ring.len();
                if prev_end == y {
                    // Bridge edge (y, x): already active (initial edge).
                } else {
                    self.helpers.push((prev_end, y));
                    self.round_b.push((prev_end, x));
                }
                if m >= 3 {
                    self.deactivate.push((x, child_ring[(x_pos + m - 1) % m]));
                }
                self.stale_tree_edges
                    .extend(self.tree_edges[child.index()].iter().copied());
                let mut cursor = prev_end;
                for k in 0..m {
                    let node = child_ring[(x_pos + k) % m];
                    self.ring_succ[cursor.index()] = node;
                    self.ring_mark[node.index()] = (self.epoch, root);
                    cursor = node;
                }
                prev_end = cursor;
                segment_len += m;
            }
            if len_before >= 2 {
                self.helpers.push((prev_end, y));
                self.round_b.push((prev_end, succ_after_y));
                self.deactivate.push((y, succ_after_y));
            } else {
                round_a.push((prev_end, y));
            }
            self.ring_succ[prev_end.index()] = succ_after_y;
            self.ring_len[root.index()] = len_before + segment_len;
        }

        self.frontier = level.iter().map(|&(_, c, _, _)| c).collect();

        let graph = network.graph();
        let mut acts_a: Vec<(NodeId, NodeId)> = Vec::new();
        for &(a, b) in round_a.iter().chain(self.helpers.iter()) {
            if a != b && !graph.has_edge(a, b) {
                acts_a.push((a, b));
            }
        }
        Ok(acts_a)
    }

    /// Walks the successor maps into per-root merged rings, rotated to
    /// start at each root's leader (the synchronous materialization).
    fn materialize_rings(&mut self) -> Result<(), CoreError> {
        let sel = self
            .sel
            .as_ref()
            .ok_or_else(|| self.invariant("materialize without a selection forest".into()))?;
        for &root in sel.roots() {
            if !sel.has_children(root) {
                continue;
            }
            let leader = self.forest.leader(root);
            if self.ring_mark[leader.index()] != (self.epoch, root) {
                return Err(invariant(
                    self.wreath.name,
                    format!("leader {leader} is not on the merged ring of {root}"),
                ));
            }
            let m = self.ring_len[root.index()];
            let line = &mut self.merged_line[root.index()];
            line.clear();
            let mut cur = leader;
            for _ in 0..m {
                line.push(cur);
                cur = self.ring_succ[cur.index()];
            }
            if cur != leader {
                return Err(invariant(
                    self.wreath.name,
                    format!("merged ring of {root} did not close at its leader"),
                ));
            }
        }
        Ok(())
    }

    /// The stale-tree-edge clean-up list (synchronous guards: not an
    /// initial edge, not on a surviving ring, still present).
    fn plan_cleanup(&mut self, network: &Network) -> Result<Vec<(NodeId, NodeId)>, CoreError> {
        let sel = self
            .sel
            .as_ref()
            .ok_or_else(|| self.invariant("cleanup without a selection forest".into()))?;
        for &root in sel.roots() {
            if sel.has_children(root) {
                self.stale_tree_edges
                    .extend(self.tree_edges[root.index()].iter().copied());
            }
        }
        let mut ring_edge_vec: Vec<Edge> = Vec::new();
        for &root in sel.roots() {
            let ring: &[NodeId] = if sel.has_children(root) {
                &self.merged_line[root.index()]
            } else {
                self.forest.members(root)
            };
            for w in ring.windows(2) {
                ring_edge_vec.push(Edge::new(w[0], w[1]));
            }
            if ring.len() >= 3 {
                ring_edge_vec.push(Edge::new(ring[ring.len() - 1], ring[0]));
            }
        }
        let ring_edges = SortedEdgeSet::from_vec(ring_edge_vec);
        let graph = network.graph();
        Ok(self
            .stale_tree_edges
            .iter()
            .filter(|e| {
                !self.initial.has_edge(e.a, e.b)
                    && !ring_edges.contains(e)
                    && graph.has_edge(e.a, e.b)
            })
            .map(|e| (e.a, e.b))
            .collect())
    }

    /// Rebuilds an `arity`-ary tree over every merged ring with the
    /// nested runtime line-to-tree (ring edges protected), re-homes the
    /// members and retires the committees that merged away.
    fn rebuild_and_retire(&mut self, network: &mut Network) -> Result<(), CoreError> {
        let sel = self
            .sel
            .take()
            .ok_or_else(|| self.invariant("rebuild without a selection forest".into()))?;
        for &root in sel.roots() {
            if !sel.has_children(root) {
                continue;
            }
            let line = mem::take(&mut self.merged_line[root.index()]);
            let m = line.len();
            let config = LineToTreeConfig {
                arity: self.wreath.tree_arity,
                protected_edges: SortedEdgeSet::ring_edges(&line),
            };
            let (tree, _report) = match self.nested {
                NestedEngine::Seeded { seed } => run_runtime_line_to_tree_seeded(
                    network,
                    &line,
                    &config,
                    split_seed(seed, self.phases as u64, root.index() as u64),
                    self.knobs,
                )?,
                NestedEngine::Free { threads } => {
                    run_runtime_line_to_tree_free(network, &line, &config, threads)?
                }
            };
            let mut edges: Vec<Edge> = Vec::with_capacity(m.saturating_sub(1));
            for pos in 1..m {
                let parent_pos = tree.parent(NodeId(pos)).ok_or_else(|| {
                    invariant(
                        self.wreath.name,
                        format!("position {pos} has no parent in the rebuilt tree"),
                    )
                })?;
                edges.push(Edge::new(line[pos], line[parent_pos.index()]));
            }
            self.tree_edges[root.index()] = edges;
            self.tree_depth[root.index()] = tree.depth();
            self.forest.replace_members(root, line);
        }
        let dead: Vec<CommitteeId> = self
            .forest
            .live_ids()
            .iter()
            .copied()
            .filter(|c| self.selected[c.index()].is_some())
            .collect();
        for c in dead {
            self.forest.retire(c);
            self.tree_edges[c.index()].clear();
            self.tree_depth[c.index()] = 0;
        }
        Ok(())
    }

    /// The synchronous termination phase: keep only the final committee's
    /// tree edges.
    fn prep_termination(&self, network: &Network, actors: &mut [CommitteeActor]) {
        let final_committee = self.forest.live_ids()[0];
        let keep = SortedEdgeSet::from_vec(self.tree_edges[final_committee.index()].clone());
        let deacts: Vec<(NodeId, NodeId)> = network
            .graph()
            .edges()
            .filter(|e| !keep.contains(e))
            .map(|e| (e.a, e.b))
            .collect();
        assign_ops(actors, &[], &deacts);
    }
}

/// Deterministic sub-seed derivation (SplitMix64 over the master seed,
/// the phase counter and the root slot), so every nested line-to-tree
/// rebuild replays byte-identically under the same master seed.
fn split_seed(base: u64, phase: u64, root: u64) -> u64 {
    let mut z =
        base ^ phase.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ root.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

fn validate(network: &Network, uids: &UidMap, name: &str) -> Result<(), CoreError> {
    let n = network.node_count();
    if n == 0 {
        return Err(CoreError::InvalidInput {
            reason: "the initial network must contain at least one node".into(),
        });
    }
    if uids.len() != n {
        return Err(CoreError::InvalidInput {
            reason: "one UID per node is required".into(),
        });
    }
    if !adn_graph::traversal::is_connected(network.graph()) {
        return Err(CoreError::InvalidInput {
            reason: format!("{name} requires a connected initial network"),
        });
    }
    Ok(())
}

fn finish(
    network: &mut Network,
    leader: NodeId,
    phases: usize,
    committees_per_phase: Vec<usize>,
    report: RuntimeReport,
) -> Result<TransformationOutcome, CoreError> {
    let mut outcome = TransformationOutcome::from_network(leader, network);
    outcome.phases = phases;
    outcome.committees_per_phase = committees_per_phase;
    outcome.runtime = Some(report);
    Ok(outcome)
}

/// Runs GraphToStar on the asynchronous runtime, dispatching on
/// [`RunConfig::engine`] (`Seeded` or `Free`; `Synchronous` is an error —
/// the synchronous engine lives in `graph_to_star`).
///
/// # Errors
///
/// As the synchronous engine ([`CoreError::InvalidInput`] for bad inputs,
/// [`CoreError::DidNotConverge`] / [`CoreError::Sim`] /
/// [`CoreError::BrokenInvariant`] on bugs or armed faults).
pub fn run_runtime_star(
    network: &mut Network,
    uids: &UidMap,
    config: &RunConfig,
) -> Result<TransformationOutcome, CoreError> {
    match config.engine {
        EngineMode::Seeded { seed } => run_runtime_star_faulted(
            network,
            uids,
            config,
            seed,
            config.async_knobs(),
            &FaultPlan::default(),
        ),
        EngineMode::Free { threads } => {
            validate(network, uids, "GraphToStar")?;
            let initial = network.graph().clone();
            let n = initial.node_count();
            let mut actors = build_actors(n, uids, &initial);
            let mut driver = StarDriver::new(config, n);
            let report = FreeScheduler::new(threads).run_phased(
                network,
                &mut actors,
                |net, acts, _phase| driver.step(net, acts),
            )?;
            let leader = driver.forest.leader(driver.forest.live_ids()[0]);
            finish(
                network,
                leader,
                driver.phases,
                driver.committees_per_phase,
                report,
            )
        }
        EngineMode::Synchronous => Err(CoreError::InvalidInput {
            reason: "run_runtime_star requires an asynchronous engine mode".into(),
        }),
    }
}

/// Runs GraphToStar under the seeded scheduler with an explicit knob set
/// and an armed [`FaultPlan`]. The `(seed, knobs, plan)` triple replays
/// byte-identically.
///
/// # Errors
///
/// As [`run_runtime_star`]; with a non-empty plan, faults may surface as
/// clean [`CoreError`]s.
pub fn run_runtime_star_faulted(
    network: &mut Network,
    uids: &UidMap,
    config: &RunConfig,
    seed: u64,
    knobs: AsyncKnobs,
    faults: &FaultPlan,
) -> Result<TransformationOutcome, CoreError> {
    validate(network, uids, "GraphToStar")?;
    let initial = network.graph().clone();
    let n = initial.node_count();
    let mut actors = build_actors(n, uids, &initial);
    let mut driver = StarDriver::new(config, n);
    let report = SeededScheduler::new(seed)
        .with_knobs(knobs)
        .run_phased_with_faults(network, &mut actors, faults, |net, acts, _phase| {
            driver.step(net, acts)
        })?;
    let leader = driver.forest.leader(driver.forest.live_ids()[0]);
    finish(
        network,
        leader,
        driver.phases,
        driver.committees_per_phase,
        report,
    )
}

/// Runs the wreath family (GraphToWreath / GraphToThinWreath, by
/// `wreath.tree_arity`) on the asynchronous runtime, dispatching on
/// [`RunConfig::engine`].
///
/// # Errors
///
/// As [`run_runtime_star`].
pub fn run_runtime_wreath(
    network: &mut Network,
    uids: &UidMap,
    wreath: &WreathConfig,
    config: &RunConfig,
) -> Result<TransformationOutcome, CoreError> {
    match config.engine {
        EngineMode::Seeded { seed } => run_runtime_wreath_faulted(
            network,
            uids,
            wreath,
            config,
            seed,
            config.async_knobs(),
            &FaultPlan::default(),
        ),
        EngineMode::Free { threads } => {
            validate(network, uids, wreath.name)?;
            let initial = network.graph().clone();
            let n = initial.node_count();
            let mut actors = build_actors(n, uids, &initial);
            let mut driver = WreathDriver::new(
                config,
                wreath,
                &initial,
                n,
                NestedEngine::Free { threads },
                AsyncKnobs::default(),
            );
            let report = FreeScheduler::new(threads).run_phased(
                network,
                &mut actors,
                |net, acts, _phase| driver.step(net, acts),
            )?;
            let leader = driver.forest.leader(driver.forest.live_ids()[0]);
            finish(
                network,
                leader,
                driver.phases,
                driver.committees_per_phase,
                report,
            )
        }
        EngineMode::Synchronous => Err(CoreError::InvalidInput {
            reason: "run_runtime_wreath requires an asynchronous engine mode".into(),
        }),
    }
}

/// Runs the wreath family under the seeded scheduler with an explicit
/// knob set and an armed [`FaultPlan`]. The `(seed, knobs, plan)` triple
/// replays byte-identically (nested rebuild sub-seeds are split
/// deterministically from `seed`).
///
/// # Errors
///
/// As [`run_runtime_star_faulted`].
pub fn run_runtime_wreath_faulted(
    network: &mut Network,
    uids: &UidMap,
    wreath: &WreathConfig,
    config: &RunConfig,
    seed: u64,
    knobs: AsyncKnobs,
    faults: &FaultPlan,
) -> Result<TransformationOutcome, CoreError> {
    validate(network, uids, wreath.name)?;
    let initial = network.graph().clone();
    let n = initial.node_count();
    let mut actors = build_actors(n, uids, &initial);
    let mut driver = WreathDriver::new(
        config,
        wreath,
        &initial,
        n,
        NestedEngine::Seeded { seed },
        knobs,
    );
    let report = SeededScheduler::new(seed)
        .with_knobs(knobs)
        .run_phased_with_faults(network, &mut actors, faults, |net, acts, _phase| {
            driver.step(net, acts)
        })?;
    let leader = driver.forest.leader(driver.forest.live_ids()[0]);
    finish(
        network,
        leader,
        driver.phases,
        driver.committees_per_phase,
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::RunConfig;
    use adn_graph::properties::{is_star, is_tree, star_center};
    use adn_graph::{generators, UidAssignment};

    fn sync_star(g: &Graph, uids: &UidMap) -> TransformationOutcome {
        let mut network = Network::new(g.clone());
        crate::graph_to_star::execute(&mut network, uids, &RunConfig::default())
            .expect("sync star must succeed")
    }

    fn sync_wreath(g: &Graph, uids: &UidMap) -> TransformationOutcome {
        let mut network = Network::new(g.clone());
        crate::graph_to_wreath::execute(
            &mut network,
            uids,
            &WreathConfig::binary(),
            &RunConfig::default(),
        )
        .expect("sync wreath must succeed")
    }

    #[test]
    fn seeded_star_matches_sync_on_small_graphs() {
        for (g, seed) in [
            (generators::line(9), 7u64),
            (generators::ring(12), 11),
            (generators::grid(3, 4), 13),
            (generators::random_connected(16, 0.2, 3), 17),
        ] {
            let uids = UidMap::new(g.node_count(), UidAssignment::RandomPermutation { seed });
            let sync = sync_star(&g, &uids);
            let mut network = Network::new(g.clone());
            let outcome = run_runtime_star(
                &mut network,
                &uids,
                &RunConfig::default().with_engine(EngineMode::Seeded { seed }),
            )
            .expect("runtime star must succeed");
            assert!(is_star(&outcome.final_graph));
            assert_eq!(star_center(&outcome.final_graph), Some(outcome.leader));
            assert_eq!(outcome.leader, sync.leader);
            assert_eq!(outcome.final_graph, sync.final_graph);
            assert_eq!(outcome.phases, sync.phases);
            assert_eq!(outcome.committees_per_phase, sync.committees_per_phase);
            assert!(outcome.runtime.is_some());
        }
    }

    #[test]
    fn free_star_matches_sync() {
        let g = generators::random_connected(24, 0.15, 5);
        let uids = UidMap::new(24, UidAssignment::RandomPermutation { seed: 5 });
        let sync = sync_star(&g, &uids);
        let mut network = Network::new(g.clone());
        let outcome = run_runtime_star(
            &mut network,
            &uids,
            &RunConfig::default().with_engine(EngineMode::Free { threads: 4 }),
        )
        .expect("free star must succeed");
        assert_eq!(outcome.final_graph, sync.final_graph);
        assert_eq!(outcome.committees_per_phase, sync.committees_per_phase);
    }

    #[test]
    fn seeded_wreath_matches_sync_on_small_graphs() {
        for (g, seed) in [
            (generators::line(10), 19u64),
            (generators::ring(14), 23),
            (generators::grid(4, 4), 29),
        ] {
            let uids = UidMap::new(g.node_count(), UidAssignment::RandomPermutation { seed });
            let sync = sync_wreath(&g, &uids);
            let mut network = Network::new(g.clone());
            let outcome = run_runtime_wreath(
                &mut network,
                &uids,
                &WreathConfig::binary(),
                &RunConfig::default().with_engine(EngineMode::Seeded { seed }),
            )
            .expect("runtime wreath must succeed");
            assert!(is_tree(&outcome.final_graph));
            assert_eq!(outcome.leader, sync.leader);
            assert_eq!(outcome.final_graph, sync.final_graph);
            assert_eq!(outcome.phases, sync.phases);
            assert_eq!(outcome.committees_per_phase, sync.committees_per_phase);
        }
    }

    #[test]
    fn free_wreath_matches_sync() {
        let g = generators::ring(18);
        let uids = UidMap::new(18, UidAssignment::RandomPermutation { seed: 31 });
        let sync = sync_wreath(&g, &uids);
        let mut network = Network::new(g.clone());
        let outcome = run_runtime_wreath(
            &mut network,
            &uids,
            &WreathConfig::binary(),
            &RunConfig::default().with_engine(EngineMode::Free { threads: 3 }),
        )
        .expect("free wreath must succeed");
        assert_eq!(outcome.final_graph, sync.final_graph);
        assert_eq!(outcome.committees_per_phase, sync.committees_per_phase);
    }

    #[test]
    fn adversarial_knobs_do_not_change_star_outcomes() {
        let g = generators::random_connected(20, 0.2, 9);
        let uids = UidMap::new(20, UidAssignment::RandomPermutation { seed: 9 });
        let sync = sync_star(&g, &uids);
        let knobs = AsyncKnobs {
            reorder_window: 6,
            max_link_delay: 3,
            asymmetric_delay: true,
        };
        for seed in [1u64, 2, 3] {
            let mut network = Network::new(g.clone());
            let outcome = run_runtime_star_faulted(
                &mut network,
                &uids,
                &RunConfig::default().with_engine(EngineMode::Seeded { seed }),
                seed,
                knobs,
                &FaultPlan::default(),
            )
            .expect("adversarial star must succeed");
            assert_eq!(outcome.final_graph, sync.final_graph);
            assert_eq!(outcome.committees_per_phase, sync.committees_per_phase);
        }
    }

    #[test]
    fn seeded_star_replays_byte_identically() {
        let g = generators::grid(4, 5);
        let uids = UidMap::new(20, UidAssignment::RandomPermutation { seed: 2 });
        let run = |seed: u64| {
            let mut network = Network::new(g.clone());
            run_runtime_star(
                &mut network,
                &uids,
                &RunConfig::default().with_engine(EngineMode::Seeded { seed }),
            )
            .expect("must succeed")
            .runtime
            .expect("runtime report present")
            .render()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn armed_crash_is_survived_or_fails_cleanly() {
        let g = generators::random_connected(14, 0.25, 4);
        let uids = UidMap::new(14, UidAssignment::RandomPermutation { seed: 4 });
        for seed in 0..8u64 {
            let crash = NodeId((seed as usize * 5) % 14);
            let plan = FaultPlan::new().crash_at(20 + seed as usize * 7, crash);
            let mut network = Network::new(g.clone());
            let result = run_runtime_star_faulted(
                &mut network,
                &uids,
                &RunConfig::default().with_engine(EngineMode::Seeded { seed }),
                seed,
                AsyncKnobs::default(),
                &plan,
            );
            // Either the run completes (crash landed after the protocol
            // stopped needing the node) or it fails with a clean error —
            // never a panic, never a hang.
            if let Ok(outcome) = &result {
                assert!(outcome.runtime.is_some());
            }
        }
    }

    #[test]
    fn synchronous_mode_is_rejected() {
        let g = generators::line(4);
        let uids = UidMap::new(4, UidAssignment::Sequential);
        let mut network = Network::new(g.clone());
        assert!(matches!(
            run_runtime_star(&mut network, &uids, &RunConfig::default()),
            Err(CoreError::InvalidInput { .. })
        ));
        let mut network = Network::new(g);
        assert!(matches!(
            run_runtime_wreath(
                &mut network,
                &uids,
                &WreathConfig::binary(),
                &RunConfig::default()
            ),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn single_node_is_trivial() {
        let uids = UidMap::new(1, UidAssignment::Sequential);
        let mut network = Network::new(Graph::new(1));
        let outcome = run_runtime_star(
            &mut network,
            &uids,
            &RunConfig::default().with_engine(EngineMode::Seeded { seed: 1 }),
        )
        .expect("single node must succeed");
        assert_eq!(outcome.leader, NodeId(0));
        assert_eq!(outcome.final_graph.edge_count(), 0);
        assert_eq!(outcome.phases, 0);
    }
}
