//! `TreeToStar` (Proposition 2.1).
//!
//! Every node repeatedly activates an edge with its grandparent and
//! deactivates the edge with its parent ("pointer jumping"), until its
//! parent is the root. Starting from a rooted tree of depth `d` this takes
//! `⌈log d⌉` rounds, keeps at most `2n - 3` active edges per round and
//! performs `O(n log n)` total edge activations.

use crate::CoreError;
use adn_graph::{NodeId, RootedTree};
use adn_sim::Network;

/// Runs `TreeToStar` on `network`, whose active edge set must contain the
/// edges of `tree` (typically the network's initial graph *is* the tree).
///
/// Returns the number of rounds consumed. Upon return, every non-root node
/// of `tree` is adjacent to the root (the activated subgraph restricted to
/// the former tree edges is a spanning star centred at `tree.root()`).
///
/// # Errors
///
/// * [`CoreError::InvalidInput`] if a tree edge is missing from the
///   network.
/// * [`CoreError::Sim`] if an edge operation violates the model (this
///   would indicate a bug in the implementation).
pub fn run_tree_to_star(network: &mut Network, tree: &RootedTree) -> Result<usize, CoreError> {
    let n = tree.node_count();
    for u in (0..n).map(NodeId) {
        if let Some(p) = tree.parent(u) {
            if !network.graph().has_edge(u, p) {
                return Err(CoreError::InvalidInput {
                    reason: format!("tree edge ({u}, {p}) is not active in the network"),
                });
            }
        }
    }

    let root = tree.root();
    // Current parent pointers; `None` only for the root.
    let mut parent: Vec<Option<NodeId>> = (0..n).map(|i| tree.parent(NodeId(i))).collect();
    let mut rounds = 0usize;
    // Depth halves every round, so ⌈log2 d⌉ + 1 rounds suffice; the extra
    // slack only guards against implementation bugs.
    let round_limit = 2 * adn_graph::properties::ceil_log2(n.max(2)) + 4;

    loop {
        // Plan the simultaneous jumps of this round on the snapshot.
        let mut jumps: Vec<(NodeId, NodeId, NodeId)> = Vec::new(); // (node, old parent, grandparent)
        for i in 0..n {
            let u = NodeId(i);
            if u == root {
                continue;
            }
            let p = parent[i].expect("non-root nodes always have a parent");
            if p == root {
                continue; // already attached to the root
            }
            let gp = parent[p.index()].expect("p is not the root, so it has a parent");
            jumps.push((u, p, gp));
        }
        if jumps.is_empty() {
            break;
        }
        if rounds >= round_limit {
            return Err(CoreError::DidNotConverge {
                algorithm: "TreeToStar",
                phase_limit: round_limit,
            });
        }
        // One batched wave per pointer-jumping round; the old parent is
        // adjacent to both endpoints of the new edge, so it serves as the
        // distance-2 witness.
        let wave: Vec<adn_sim::WaveActivation> = jumps
            .iter()
            .map(|&(u, p, gp)| adn_sim::WaveActivation {
                initiator: u,
                target: gp,
                witness: p,
            })
            .collect();
        let drops: Vec<adn_graph::Edge> = jumps
            .iter()
            .map(|&(u, p, _)| adn_graph::Edge::new(u, p))
            .collect();
        network.stage_jump_wave(&wave, &drops)?;
        network.commit_round();
        rounds += 1;
        for (u, _, gp) in jumps {
            parent[u.index()] = Some(gp);
        }
    }
    Ok(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::properties::{ceil_log2, is_star};
    use adn_graph::{generators, Graph, RootedTree};

    fn run_on_tree(tree_graph: &Graph, root: NodeId) -> (Network, usize) {
        let tree = RootedTree::from_tree_graph(tree_graph, root).unwrap();
        let mut net = Network::new(tree_graph.clone());
        let rounds = run_tree_to_star(&mut net, &tree).unwrap();
        (net, rounds)
    }

    #[test]
    fn line_becomes_star_in_log_rounds() {
        for &n in &[2usize, 3, 5, 8, 16, 33, 64, 100] {
            let g = generators::line(n);
            let (net, rounds) = run_on_tree(&g, NodeId(0));
            // Every node is now adjacent to the root.
            for i in 1..n {
                assert!(
                    net.graph().has_edge(NodeId(0), NodeId(i)),
                    "n={n}, node {i}"
                );
            }
            // Proposition 2.1: ⌈log d⌉ rounds where d = depth = n-1.
            assert!(
                rounds <= ceil_log2(n) + 1,
                "n={n}: rounds {rounds} exceeds ⌈log n⌉+1"
            );
            // At most 2n - 3 active edges at any time (Proposition 2.1).
            assert!(
                net.metrics().max_active_edges_total <= 2 * n.saturating_sub(1),
                "n={n}: too many active edges"
            );
        }
    }

    #[test]
    fn random_trees_become_stars() {
        for seed in 0..8u64 {
            let n = 60;
            let g = generators::random_tree(n, seed);
            let (net, rounds) = run_on_tree(&g, NodeId(0));
            for i in 1..n {
                assert!(net.graph().has_edge(NodeId(0), NodeId(i)));
            }
            let tree = RootedTree::from_tree_graph(&g, NodeId(0)).unwrap();
            assert!(rounds <= ceil_log2(tree.depth().max(1)) + 1);
        }
    }

    #[test]
    fn already_a_star_takes_zero_rounds() {
        let g = generators::star(10);
        let (net, rounds) = run_on_tree(&g, NodeId(0));
        assert_eq!(rounds, 0);
        assert_eq!(net.metrics().total_activations, 0);
        assert!(is_star(net.graph()));
    }

    #[test]
    fn final_graph_is_exactly_a_star_when_input_is_a_line() {
        // When the input tree is a line rooted at an endpoint, the
        // intermediate parent edges are all deactivated, so the final graph
        // is exactly the spanning star.
        let n = 32;
        let g = generators::line(n);
        let (net, _) = run_on_tree(&g, NodeId(0));
        assert!(
            is_star(net.graph()),
            "final graph should be a spanning star"
        );
        assert_eq!(net.graph().degree(NodeId(0)), n - 1);
    }

    #[test]
    fn total_activations_are_n_log_n_ish() {
        let n = 128;
        let g = generators::line(n);
        let (net, rounds) = run_on_tree(&g, NodeId(0));
        let bound = n * (ceil_log2(n) + 1);
        assert!(
            net.metrics().total_activations <= bound,
            "activations {} exceed n·(log n + 1) = {bound}",
            net.metrics().total_activations
        );
        assert!(rounds <= ceil_log2(n) + 1);
        // Each node activates at most one edge per round.
        assert!(net.metrics().max_node_activations_in_round <= 1);
    }

    #[test]
    fn missing_tree_edge_is_rejected() {
        let g = generators::line(5);
        let tree = RootedTree::from_tree_graph(&g, NodeId(0)).unwrap();
        // Build the network over a DIFFERENT graph missing edge (3,4).
        let mut broken = g.clone();
        broken.remove_edge(NodeId(3), NodeId(4)).unwrap();
        let mut net = Network::new(broken);
        let err = run_tree_to_star(&mut net, &tree).unwrap_err();
        assert!(matches!(err, CoreError::InvalidInput { .. }));
    }
}
