//! `LineToTree` on the asynchronous actor runtime.
//!
//! The wake-up variant in [`super::async_line_to_tree`] is still driven
//! by a global round loop; this module removes the loop entirely. Every
//! line position is an [`AsyncProgram`] actor that follows the same
//! per-position jump schedule as the synchronous subroutine
//! ([`super::async_line_to_tree::plan_sync_schedule`]) but learns about
//! the world exclusively through messages:
//!
//! * `Attach`/`Detach` maintain each node's child set (with a tombstone
//!   for a detach that overtakes the matching attach in flight);
//! * `ParentIs` propagates a node's current parent to its children — the
//!   children's next jump target — tagged with the sender's jump count
//!   so that reordered reports from the same parent are ignored when
//!   stale.
//!
//! Because the plan is shared knowledge, the handshake can be made
//! *exact* instead of heuristic. For every jump `(p, j)` the plan
//! determines (a) the jump-count tag `k` its parent `q` carries when
//! `q`'s parent equals `p`'s target — `p` jumps only on the report
//! `ParentIs { jd: k }` — and (b) the precise set of child jumps that
//! use the edge `p`–`parent(p)` as their distance-2 witness — `p` holds
//! its own jump until each of those children confirmed with a tagged
//! `Detach`. Rule (b) is what keeps rule (a) stable: a parent cannot
//! abandon the grandparent a still-attached child is waiting to hop to,
//! so the needed report value cannot be overwritten by a later one.
//! (A frozen attach-time jump count is *not* a sound substitute: the
//! synchronous schedule is arity-gated, so jump counts are not
//! synchronized clocks — a gate based on them both deadlocks and lets
//! witnesses vanish at larger `n`.)
//!
//! Each jump stages its activation/deactivation pair through the
//! validated network (one atomic commit), so the distance-2 rule is
//! enforced exactly as in the round-based implementations. Because every
//! node follows the same fixed target sequence, the final tree equals
//! the synchronous tree under **any** delivery order — the tests pin
//! this across seeds, reorder windows and asymmetric delays, and the
//! differential suite (`tests/runtime_model.rs`) rechecks it against the
//! synchronous subroutine.

use crate::subroutines::async_line_to_tree::plan_sync_schedule;
use crate::subroutines::LineToTreeConfig;
use crate::CoreError;
use adn_graph::{Edge, NodeId, RootedTree};
use adn_runtime::{
    AsyncKnobs, AsyncProgram, Context, FreeScheduler, RuntimeReport, SeededScheduler,
};
use adn_sim::Network;
use std::sync::Arc;

/// Protocol messages; `pos` is always the sender's line position.
#[derive(Debug, Clone)]
pub enum TreeMsg {
    /// "I am now your child, having completed `jd` jumps."
    Attach {
        /// Sender position.
        pos: usize,
        /// Sender's jump count at attach time (constant while attached).
        jd: usize,
    },
    /// "I am no longer your child, having completed `jd` jumps."
    Detach {
        /// Sender position.
        pos: usize,
        /// Sender's jump count right after the jump that detached it —
        /// the receiver matches `(pos, jd)` against its precomputed
        /// witness dependencies.
        jd: usize,
    },
    /// "My current parent is `parent`" — sent to children on every jump
    /// and as the reply to an `Attach`.
    ParentIs {
        /// Sender position (must match the receiver's current parent).
        pos: usize,
        /// The sender's current parent position.
        parent: usize,
        /// The sender's jump count when reporting (stale reports from the
        /// same parent carry a smaller count and are discarded).
        jd: usize,
    },
}

/// Immutable data shared by all actors of one run.
struct SharedPlan {
    schedule: Vec<Vec<usize>>,
    /// `report_tag[p][j]`: the jump-count tag the `ParentIs` report
    /// enabling jump `(p, j)` must carry — the index of `schedule[p][j]`
    /// in the old parent's own parent history.
    report_tag: Vec<Vec<usize>>,
    /// `detach_deps[q][k]`: the child jumps `(x, jd)` whose activations
    /// use the edge `q`–`parent(q)` as distance-2 witness and must
    /// therefore confirm (via `Detach { x, jd }`) before `q`'s `k`-th
    /// jump abandons that parent.
    detach_deps: Vec<Vec<Vec<(usize, usize)>>>,
    line: Vec<NodeId>,
    protected: adn_graph::edgeset::SortedEdgeSet,
}

impl SharedPlan {
    fn new(n: usize, config: &LineToTreeConfig, line: &[NodeId]) -> Self {
        let schedule = plan_sync_schedule(n, config.arity);
        // parent_history[q] = q's parent position after 0, 1, … jumps.
        let parent_history: Vec<Vec<usize>> = (0..n)
            .map(|q| {
                let mut h = Vec::with_capacity(schedule[q].len() + 1);
                h.push(q.saturating_sub(1));
                h.extend(schedule[q].iter().copied());
                h
            })
            .collect();
        let mut report_tag: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut detach_deps: Vec<Vec<Vec<(usize, usize)>>> = (0..n)
            .map(|q| vec![Vec::new(); schedule[q].len()])
            .collect();
        for x in 1..n {
            for (jx, &target) in schedule[x].iter().enumerate() {
                let old_parent = parent_history[x][jx];
                // Parent sequences never revisit a position, so the
                // target appears exactly once in the old parent's
                // history; its index is the enabling report's tag.
                let k = parent_history[old_parent]
                    .iter()
                    .position(|&v| v == target)
                    .expect("jump target must appear in the old parent's parent history");
                report_tag[x].push(k);
                if k < schedule[old_parent].len() {
                    // The old parent's k-th jump abandons exactly this
                    // target — it must wait for x's tagged detach.
                    detach_deps[old_parent][k].push((x, jx + 1));
                }
            }
        }
        SharedPlan {
            schedule,
            report_tag,
            detach_deps,
            line: line.to_vec(),
            protected: config.protected_edges.clone(),
        }
    }
}

/// Mutable per-position protocol state.
struct PositionState {
    pos: usize,
    parent_pos: usize,
    jumps_done: usize,
    /// `(child position, jump count at attach)` — maintained for the
    /// `ParentIs` broadcasts; gating uses `detaches` instead.
    children: Vec<(usize, usize)>,
    /// Positions whose `Detach` overtook their `Attach`.
    tombstones: Vec<usize>,
    /// Tagged detach confirmations received so far, matched against
    /// [`SharedPlan::detach_deps`].
    detaches: Vec<(usize, usize)>,
    /// Believed parent-of-parent (the next jump's support), if any.
    belief: Option<usize>,
    /// Jump-count tag of the accepted `ParentIs` report; `None` right
    /// after a jump (any report from the new parent is fresher).
    belief_jd: Option<usize>,
}

/// One line-to-tree actor. Network nodes that are not on the line get an
/// inert actor (no state, no messages).
pub struct TreeActor {
    shared: Arc<SharedPlan>,
    state: Option<PositionState>,
}

impl TreeActor {
    fn try_jump(&mut self, ctx: &mut Context<TreeMsg>) {
        let Some(st) = &mut self.state else {
            return;
        };
        let schedule = &self.shared.schedule;
        let targets = &schedule[st.pos];
        if st.jumps_done >= targets.len() {
            return;
        }
        let target = targets[st.jumps_done];
        // The enabling report must carry the exact planned tag: the
        // parent is at the planned point of its own history (it cannot
        // be past it — our detach is in its dependency set).
        let tag = self.shared.report_tag[st.pos][st.jumps_done];
        if st.belief_jd != Some(tag) {
            return;
        }
        debug_assert_eq!(
            st.belief,
            Some(target),
            "tagged report disagrees with the plan"
        );
        // Hold until every child whose hop uses our parent edge as its
        // distance-2 witness has confirmed with a tagged detach.
        let deps = &self.shared.detach_deps[st.pos][st.jumps_done];
        if !deps.iter().all(|d| st.detaches.contains(d)) {
            return;
        }
        let line = &self.shared.line;
        let cp = st.parent_pos;
        ctx.activate(line[target]);
        if !self
            .shared
            .protected
            .contains(&Edge::new(line[st.pos], line[cp]))
        {
            ctx.deactivate(line[cp]);
        }
        st.parent_pos = target;
        st.jumps_done += 1;
        st.belief = None;
        st.belief_jd = None;
        ctx.send(
            line[cp],
            TreeMsg::Detach {
                pos: st.pos,
                jd: st.jumps_done,
            },
        );
        ctx.send(
            line[target],
            TreeMsg::Attach {
                pos: st.pos,
                jd: st.jumps_done,
            },
        );
        for &(c, _) in &st.children {
            ctx.send(
                line[c],
                TreeMsg::ParentIs {
                    pos: st.pos,
                    parent: st.parent_pos,
                    jd: st.jumps_done,
                },
            );
        }
    }
}

impl AsyncProgram for TreeActor {
    type Message = TreeMsg;

    fn on_start(&mut self, ctx: &mut Context<TreeMsg>) {
        // Initial knowledge is static (parent `pos-1`, grandparent
        // `pos-2`, child `pos+1`), so a first jump may already be enabled.
        self.try_jump(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: TreeMsg, ctx: &mut Context<TreeMsg>) {
        let Some(st) = &mut self.state else {
            return;
        };
        match msg {
            TreeMsg::Attach { pos, jd } => {
                if let Some(i) = st.tombstones.iter().position(|&t| t == pos) {
                    // The child already jumped onward; drop the stale
                    // attach (a position never re-attaches — parent
                    // target sequences do not revisit).
                    st.tombstones.swap_remove(i);
                    return;
                }
                st.children.push((pos, jd));
                // The reply carries this node's *current* parent, so a
                // child attaching just after we jumped still learns the
                // fresh support.
                let reply = TreeMsg::ParentIs {
                    pos: st.pos,
                    parent: st.parent_pos,
                    jd: st.jumps_done,
                };
                ctx.send(self.shared.line[pos], reply);
            }
            TreeMsg::Detach { pos, jd } => {
                // Record the confirmation even when the matching attach
                // is still in flight — the gate must be able to clear.
                st.detaches.push((pos, jd));
                if let Some(i) = st.children.iter().position(|&(c, _)| c == pos) {
                    st.children.swap_remove(i);
                } else {
                    st.tombstones.push(pos);
                }
            }
            TreeMsg::ParentIs { pos, parent, jd } => {
                if pos == st.parent_pos && st.belief_jd.is_none_or(|b| jd > b) {
                    st.belief = Some(parent);
                    st.belief_jd = Some(jd);
                }
            }
        }
        self.try_jump(ctx);
    }
}

fn validate_line(network: &Network, line: &[NodeId], arity: usize) -> Result<(), CoreError> {
    if line.is_empty() {
        return Err(CoreError::InvalidInput {
            reason: "line must contain at least one node".into(),
        });
    }
    if arity == 0 {
        return Err(CoreError::InvalidInput {
            reason: "arity must be at least 1".into(),
        });
    }
    let mut seen = line.to_vec();
    seen.sort_unstable();
    for w in seen.windows(2) {
        if w[0] == w[1] {
            return Err(CoreError::InvalidInput {
                reason: format!("node {} appears twice in the line", w[0]),
            });
        }
    }
    if line.iter().any(|u| u.index() >= network.node_count()) {
        return Err(CoreError::InvalidInput {
            reason: "line refers to nodes outside the network".into(),
        });
    }
    for w in line.windows(2) {
        if !network.graph().has_edge(w[0], w[1]) {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "consecutive line nodes {} and {} are not adjacent",
                    w[0], w[1]
                ),
            });
        }
    }
    Ok(())
}

/// Builds one actor per network node; nodes off the line are inert.
fn build_actors(network: &Network, line: &[NodeId], config: &LineToTreeConfig) -> Vec<TreeActor> {
    let n = line.len();
    let shared = Arc::new(SharedPlan::new(n, config, line));
    let mut pos_of: Vec<Option<usize>> = vec![None; network.node_count()];
    for (pos, &node) in line.iter().enumerate() {
        pos_of[node.index()] = Some(pos);
    }
    (0..network.node_count())
        .map(|i| TreeActor {
            shared: Arc::clone(&shared),
            state: pos_of[i].map(|pos| PositionState {
                pos,
                parent_pos: pos.saturating_sub(1),
                jumps_done: 0,
                children: if pos + 1 < n {
                    vec![(pos + 1, 0)]
                } else {
                    Vec::new()
                },
                tombstones: Vec::new(),
                detaches: Vec::new(),
                // Static initial knowledge: the grandparent is `pos - 2`,
                // as reported by a parent that has not jumped yet.
                belief: if pos >= 2 { Some(pos - 2) } else { None },
                belief_jd: if pos >= 2 { Some(0) } else { None },
            }),
        })
        .collect()
}

/// Harvests the final tree (in position space, vertex `i` = `line[i]`).
fn harvest(actors: &[TreeActor], n: usize) -> Result<RootedTree, CoreError> {
    let mut parents: Vec<Option<NodeId>> = vec![None; n];
    for actor in actors {
        let Some(st) = &actor.state else { continue };
        if st.jumps_done < actor.shared.schedule[st.pos].len() {
            return Err(CoreError::DidNotConverge {
                algorithm: "RuntimeLineToTree",
                phase_limit: actor.shared.schedule[st.pos].len(),
            });
        }
        if st.pos > 0 {
            parents[st.pos] = Some(NodeId(st.parent_pos));
        }
    }
    RootedTree::from_parents(NodeId(0), parents).map_err(|e| CoreError::BrokenInvariant {
        algorithm: "RuntimeLineToTree",
        detail: format!("final parent pointers do not form a tree: {e}"),
    })
}

fn map_runtime_err(e: adn_runtime::RuntimeError) -> CoreError {
    match e {
        adn_runtime::RuntimeError::Sim(sim) => CoreError::Sim(sim),
        other => CoreError::BrokenInvariant {
            algorithm: "RuntimeLineToTree",
            detail: other.to_string(),
        },
    }
}

/// Runs line-to-tree as actors under the deterministic seeded scheduler.
/// Returns the final tree in position space plus the runtime report; the
/// tree equals the synchronous subroutine's for every `(seed, knobs)`.
///
/// # Errors
///
/// * [`CoreError::InvalidInput`] on malformed lines or zero arity.
/// * [`CoreError::Sim`] if an edge operation is rejected (a protocol bug).
/// * [`CoreError::DidNotConverge`] if the run quiesced with unfinished
///   schedules (a protocol bug).
pub fn run_runtime_line_to_tree_seeded(
    network: &mut Network,
    line: &[NodeId],
    config: &LineToTreeConfig,
    seed: u64,
    knobs: AsyncKnobs,
) -> Result<(RootedTree, RuntimeReport), CoreError> {
    validate_line(network, line, config.arity)?;
    let mut actors = build_actors(network, line, config);
    let report = SeededScheduler::new(seed)
        .with_knobs(knobs)
        .run(network, &mut actors)
        .map_err(map_runtime_err)?;
    Ok((harvest(&actors, line.len())?, report))
}

/// Runs line-to-tree as actors under the free-running scheduler.
///
/// # Errors
///
/// As [`run_runtime_line_to_tree_seeded`], plus
/// [`CoreError::BrokenInvariant`] on a wall-clock timeout.
pub fn run_runtime_line_to_tree_free(
    network: &mut Network,
    line: &[NodeId],
    config: &LineToTreeConfig,
    threads: usize,
) -> Result<(RootedTree, RuntimeReport), CoreError> {
    validate_line(network, line, config.arity)?;
    let mut actors = build_actors(network, line, config);
    let report = FreeScheduler::new(threads)
        .run(network, &mut actors)
        .map_err(map_runtime_err)?;
    Ok((harvest(&actors, line.len())?, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subroutines::line_to_tree::run_line_to_tree;
    use adn_graph::edgeset::SortedEdgeSet;
    use adn_graph::generators;

    fn identity_line(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn sync_tree(n: usize, arity: usize) -> RootedTree {
        let mut net = Network::new(generators::line(n));
        let config = LineToTreeConfig {
            arity,
            protected_edges: SortedEdgeSet::new(),
        };
        run_line_to_tree(&mut net, &identity_line(n), &config)
            .unwrap()
            .0
    }

    #[test]
    fn seeded_actors_build_the_synchronous_tree() {
        for &n in &[2usize, 5, 8, 16, 33, 64] {
            let config = LineToTreeConfig {
                arity: 2,
                protected_edges: SortedEdgeSet::new(),
            };
            let expected = sync_tree(n, 2);
            for seed in [0u64, 7, 1234] {
                let mut net = Network::new(generators::line(n));
                let (tree, report) = run_runtime_line_to_tree_seeded(
                    &mut net,
                    &identity_line(n),
                    &config,
                    seed,
                    AsyncKnobs::default(),
                )
                .unwrap();
                assert_eq!(tree, expected, "n={n} seed={seed}");
                assert_eq!(report.in_flight_at_detection, 0);
            }
        }
    }

    #[test]
    fn adversarial_delivery_still_matches_the_synchronous_tree() {
        let knob_sets = [
            AsyncKnobs {
                reorder_window: 4,
                max_link_delay: 0,
                asymmetric_delay: false,
            },
            AsyncKnobs {
                reorder_window: 2,
                max_link_delay: 3,
                asymmetric_delay: false,
            },
            AsyncKnobs {
                reorder_window: 3,
                max_link_delay: 2,
                asymmetric_delay: true,
            },
        ];
        for &n in &[16usize, 40, 64] {
            let expected = sync_tree(n, 2);
            let config = LineToTreeConfig {
                arity: 2,
                protected_edges: SortedEdgeSet::new(),
            };
            for (k, knobs) in knob_sets.iter().enumerate() {
                for seed in [1u64, 99, 4096] {
                    let mut net = Network::new(generators::line(n));
                    let (tree, _) = run_runtime_line_to_tree_seeded(
                        &mut net,
                        &identity_line(n),
                        &config,
                        seed,
                        *knobs,
                    )
                    .unwrap();
                    assert_eq!(tree, expected, "n={n} knobs#{k} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn free_actors_build_the_synchronous_tree() {
        let n = 48;
        let expected = sync_tree(n, 2);
        let config = LineToTreeConfig {
            arity: 2,
            protected_edges: SortedEdgeSet::new(),
        };
        for threads in [1usize, 4] {
            let mut net = Network::new(generators::line(n));
            let (tree, report) =
                run_runtime_line_to_tree_free(&mut net, &identity_line(n), &config, threads)
                    .unwrap();
            assert_eq!(tree, expected, "threads={threads}");
            assert_eq!(report.in_flight_at_detection, 0);
        }
    }

    #[test]
    fn large_lines_converge_on_both_schedulers() {
        // Regression: with the old frozen-attach-count gate, n=128 lines
        // quiesced with unfinished schedules (a parent could advance past
        // the grandparent a still-attached child was waiting to hop to).
        // The arity-gated schedule makes jump counts drift apart only at
        // larger n, which is why n=48 never caught it.
        let n = 128;
        let expected = sync_tree(n, 2);
        let config = LineToTreeConfig {
            arity: 2,
            protected_edges: SortedEdgeSet::new(),
        };
        for seed in [0u64, 9, 77] {
            let mut net = Network::new(generators::line(n));
            let (tree, _) = run_runtime_line_to_tree_seeded(
                &mut net,
                &identity_line(n),
                &config,
                seed,
                AsyncKnobs {
                    reorder_window: 6,
                    max_link_delay: 3,
                    asymmetric_delay: true,
                },
            )
            .unwrap();
            assert_eq!(tree, expected, "seed={seed}");
        }
        for threads in [2usize, 8] {
            let mut net = Network::new(generators::line(n));
            let (tree, _) =
                run_runtime_line_to_tree_free(&mut net, &identity_line(n), &config, threads)
                    .unwrap();
            assert_eq!(tree, expected, "threads={threads}");
        }
    }

    #[test]
    fn polylog_arity_matches_sync() {
        let n = 128;
        let arity = adn_graph::properties::ceil_log2(n);
        let config = LineToTreeConfig {
            arity,
            protected_edges: SortedEdgeSet::new(),
        };
        let expected = sync_tree(n, arity);
        let mut net = Network::new(generators::line(n));
        let (tree, _) = run_runtime_line_to_tree_seeded(
            &mut net,
            &identity_line(n),
            &config,
            5,
            AsyncKnobs {
                reorder_window: 3,
                max_link_delay: 1,
                asymmetric_delay: false,
            },
        )
        .unwrap();
        assert_eq!(tree, expected);
        for u in (0..n).map(NodeId) {
            assert!(tree.child_count(u) <= arity);
        }
    }

    #[test]
    fn protected_edges_survive() {
        let n = 24;
        let g = generators::line(n);
        let config = LineToTreeConfig {
            arity: 2,
            protected_edges: g.edges().collect(),
        };
        let mut net = Network::new(g.clone());
        let _ = run_runtime_line_to_tree_seeded(
            &mut net,
            &identity_line(n),
            &config,
            3,
            AsyncKnobs::default(),
        )
        .unwrap();
        for e in g.edges() {
            assert!(net.graph().has_edge(e.a, e.b));
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut net = Network::new(generators::line(4));
        let config = LineToTreeConfig {
            arity: 2,
            protected_edges: SortedEdgeSet::new(),
        };
        assert!(matches!(
            run_runtime_line_to_tree_seeded(&mut net, &[], &config, 0, AsyncKnobs::default()),
            Err(CoreError::InvalidInput { .. })
        ));
        let zero_arity = LineToTreeConfig {
            arity: 0,
            protected_edges: SortedEdgeSet::new(),
        };
        assert!(matches!(
            run_runtime_line_to_tree_seeded(
                &mut net,
                &identity_line(4),
                &zero_arity,
                0,
                AsyncKnobs::default()
            ),
            Err(CoreError::InvalidInput { .. })
        ));
        let duplicated = vec![NodeId(0), NodeId(1), NodeId(1)];
        assert!(matches!(
            run_runtime_line_to_tree_seeded(
                &mut net,
                &duplicated,
                &config,
                0,
                AsyncKnobs::default()
            ),
            Err(CoreError::InvalidInput { .. })
        ));
    }
}
