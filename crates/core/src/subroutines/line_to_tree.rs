//! Synchronous `LineToCompleteBinaryTree` (Proposition 2.2), generalised
//! to complete `k`-ary trees.
//!
//! Every node repeatedly activates an edge with its grandparent and
//! deactivates the edge with its former parent, *unless* its grandparent
//! already has `k` children (in which case it stops, keeping its current
//! parent) or its parent is the root (in which case it has reached its
//! final position). With `k = 2` this is exactly the paper's
//! `LineToCompleteBinaryTree`; with `k = ⌈log n⌉` it is the
//! `LineToCompletePolylogarithmicTree` of Section 5.
//!
//! The paper notes that "there are some special cases where the above
//! process needs to be tweaked"; our single tweak is a deterministic
//! admission rule when several grandchildren could hop onto the same
//! grandparent in one round and exceed its capacity: the lowest-position
//! candidates are admitted first and the rest simply retry in the next
//! round. On a line with `k = 2` the rule never triggers.

use crate::subroutines::LineScratch;
use crate::CoreError;
use adn_graph::edgeset::SortedEdgeSet;
use adn_graph::{Edge, NodeId, RootedTree};
use adn_sim::Network;

/// Configuration for [`run_line_to_tree`].
#[derive(Debug, Clone)]
pub struct LineToTreeConfig {
    /// Maximum number of children per node in the constructed tree
    /// (2 for the complete binary tree).
    pub arity: usize,
    /// Edges that must never be deactivated (the wreath algorithms protect
    /// the ring edges so the ring survives the tree construction). A flat
    /// sorted set: built once per committee merge, probed per jump.
    pub protected_edges: SortedEdgeSet,
}

impl LineToTreeConfig {
    /// The paper's `LineToCompleteBinaryTree` configuration.
    pub fn binary() -> Self {
        LineToTreeConfig {
            arity: 2,
            protected_edges: SortedEdgeSet::new(),
        }
    }

    /// The `LineToCompletePolylogarithmicTree` configuration for a network
    /// of `n` nodes: arity `max(2, ⌈log2 n⌉)`.
    pub fn polylog(n: usize) -> Self {
        LineToTreeConfig {
            arity: adn_graph::properties::ceil_log2(n.max(2)).max(2),
            protected_edges: SortedEdgeSet::new(),
        }
    }

    /// Adds protected edges (builder style).
    pub fn with_protected_edges<I: IntoIterator<Item = Edge>>(mut self, edges: I) -> Self {
        self.protected_edges = edges.into_iter().collect();
        self
    }
}

/// Runs the synchronous line-to-tree subroutine on `network`.
///
/// `line` lists the nodes in order; `line[0]` is the root and consecutive
/// entries must be adjacent in the network's current graph.
///
/// Returns the constructed rooted tree **in position space** (vertex `i`
/// of the returned tree is `line[i]`, the root is position 0) together
/// with the number of rounds consumed. Use
/// [`positional_parents_to_node_ids`] to translate the parent pointers
/// back into network node ids; when `line` is simply `0..n` in order the
/// two coincide.
///
/// # Errors
///
/// * [`CoreError::InvalidInput`] if `line` is empty, repeats nodes, has
///   non-adjacent consecutive entries, or `config.arity < 1`.
/// * [`CoreError::Sim`] on model violations (implementation bugs).
/// * [`CoreError::DidNotConverge`] if the internal round budget is
///   exhausted (implementation bugs).
pub fn run_line_to_tree(
    network: &mut Network,
    line: &[NodeId],
    config: &LineToTreeConfig,
) -> Result<(RootedTree, usize), CoreError> {
    let mut scratch = LineScratch::new();
    run_line_to_tree_with_scratch(network, line, config, &mut scratch)
}

/// [`run_line_to_tree`] with caller-owned scratch state: the positional
/// vectors are recycled across calls, so a caller running the subroutine
/// once per committee merge allocates them once. Behaviourally identical
/// to the plain entry point.
///
/// # Errors
///
/// As [`run_line_to_tree`].
pub fn run_line_to_tree_with_scratch(
    network: &mut Network,
    line: &[NodeId],
    config: &LineToTreeConfig,
    scratch: &mut LineScratch,
) -> Result<(RootedTree, usize), CoreError> {
    validate_line(network, line, config)?;
    let n = line.len();
    if n == 1 {
        let tree = RootedTree::from_parents(NodeId(0), vec![None]).expect("trivial tree");
        // Re-map to the actual node id.
        let tree = remap_tree(&tree, line);
        return Ok((tree, 0));
    }

    // All state is positional: position 0 is the root.
    let LineScratch {
        parent_pos,
        child_count,
        terminated,
        wave_acts,
        wave_drops,
        ..
    } = scratch;
    parent_pos.clear();
    parent_pos.extend((0..n).map(|i| i.saturating_sub(1)));
    child_count.clear();
    child_count.extend((0..n).map(|i| usize::from(i + 1 < n)));
    terminated.clear();
    terminated.resize(n, false);
    terminated[0] = true; // the root never moves

    let mut rounds = 0usize;
    let round_limit = 4 * adn_graph::properties::ceil_log2(n.max(2)) + 8;

    loop {
        let begin_child_count = child_count.clone();
        let mut planned_new: Vec<usize> = vec![0; n];
        // (position, old parent position, grandparent position)
        let mut jumps: Vec<(usize, usize, usize)> = Vec::new();
        for pos in 1..n {
            if terminated[pos] {
                continue;
            }
            let p = parent_pos[pos];
            if p == 0 {
                terminated[pos] = true;
                continue;
            }
            let gp = parent_pos[p];
            if begin_child_count[gp] >= config.arity {
                // The paper's stop rule: grandparent already has k children.
                terminated[pos] = true;
                continue;
            }
            if begin_child_count[gp] + planned_new[gp] >= config.arity {
                // Admission rule: too many simultaneous candidates; retry
                // next round.
                continue;
            }
            planned_new[gp] += 1;
            jumps.push((pos, p, gp));
        }

        if jumps.is_empty() {
            if terminated.iter().all(|&t| t) {
                break;
            }
            // No jump was planned but some node is still unterminated:
            // only possible transiently; loop again to mark terminations.
            // Guard against a livelock just in case.
            rounds += 1;
            if rounds >= round_limit {
                return Err(CoreError::DidNotConverge {
                    algorithm: "LineToTree",
                    phase_limit: round_limit,
                });
            }
            continue;
        }
        if rounds >= round_limit {
            return Err(CoreError::DidNotConverge {
                algorithm: "LineToTree",
                phase_limit: round_limit,
            });
        }

        // One batched wave per round: the jumper's current parent is
        // adjacent to both endpoints of every new edge, so it is the
        // distance-2 witness and the staging pass is probe-only.
        wave_acts.clear();
        wave_drops.clear();
        for &(pos, p, gp) in &jumps {
            wave_acts.push(adn_sim::WaveActivation {
                initiator: line[pos],
                target: line[gp],
                witness: line[p],
            });
            let old_edge = Edge::new(line[pos], line[p]);
            if !config.protected_edges.contains(&old_edge) {
                wave_drops.push(old_edge);
            }
        }
        network.stage_jump_wave(wave_acts, wave_drops)?;
        network.commit_round();
        rounds += 1;

        for (pos, p, gp) in jumps {
            parent_pos[pos] = gp;
            child_count[p] -= 1;
            child_count[gp] += 1;
        }
    }

    // Build the resulting rooted tree in node-id space.
    let mut parent_by_position: Vec<Option<usize>> = vec![None; n];
    for pos in 1..n {
        parent_by_position[pos] = Some(parent_pos[pos]);
    }
    let positional_tree = RootedTree::from_parents(
        NodeId(0),
        parent_by_position.iter().map(|p| p.map(NodeId)).collect(),
    )
    .expect("construction yields a valid tree");
    Ok((remap_tree(&positional_tree, line), rounds))
}

fn validate_line(
    network: &Network,
    line: &[NodeId],
    config: &LineToTreeConfig,
) -> Result<(), CoreError> {
    if line.is_empty() {
        return Err(CoreError::InvalidInput {
            reason: "line must contain at least one node".into(),
        });
    }
    if config.arity == 0 {
        return Err(CoreError::InvalidInput {
            reason: "arity must be at least 1".into(),
        });
    }
    let mut seen = std::collections::BTreeSet::new();
    for &u in line {
        if !seen.insert(u) {
            return Err(CoreError::InvalidInput {
                reason: format!("node {u} appears twice in the line"),
            });
        }
    }
    for w in line.windows(2) {
        if !network.graph().has_edge(w[0], w[1]) {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "consecutive line nodes {} and {} are not adjacent",
                    w[0], w[1]
                ),
            });
        }
    }
    Ok(())
}

/// The returned tree lives in position space because [`RootedTree`] is
/// defined over a dense vertex set `0..n` while the line nodes are
/// arbitrary ids within a larger network.
fn remap_tree(positional: &RootedTree, line: &[NodeId]) -> RootedTree {
    let _ = line;
    positional.clone()
}

/// Translates the positional tree returned by [`run_line_to_tree`] into
/// per-node parent pointers in node-id space.
///
/// Entry `i` of the result is the parent (as a network node id) of node
/// `line[i]`, or `None` for the root `line[0]`.
pub fn positional_parents_to_node_ids(tree: &RootedTree, line: &[NodeId]) -> Vec<Option<NodeId>> {
    (0..line.len())
        .map(|pos| tree.parent(NodeId(pos)).map(|p| line[p.index()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::properties::ceil_log2;
    use adn_graph::{generators, NodeId};

    fn identity_line(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn line_becomes_binary_tree_with_log_depth() {
        for &n in &[2usize, 3, 4, 7, 8, 16, 31, 32, 64, 100, 128] {
            let g = generators::line(n);
            let mut net = Network::new(g);
            let (tree, rounds) =
                run_line_to_tree(&mut net, &identity_line(n), &LineToTreeConfig::binary()).unwrap();
            assert_eq!(tree.node_count(), n);
            assert_eq!(tree.root(), NodeId(0));
            // Depth is logarithmic (⌈log n⌉, plus 1 of slack for odd sizes).
            assert!(
                tree.depth() <= ceil_log2(n) + 1,
                "n={n}: depth {} too large",
                tree.depth()
            );
            // Every node has at most 2 children, so tree degree <= 3.
            for u in (0..n).map(NodeId) {
                assert!(
                    tree.child_count(u) <= 2,
                    "n={n}: node {u} has too many children"
                );
            }
            assert!(tree.max_degree() <= 3);
            // Proposition 2.2: ⌈log d⌉ rounds (+1 slack for the final
            // termination-detection sweep).
            assert!(rounds <= ceil_log2(n) + 2, "n={n}: rounds {rounds}");
            // Degree during execution stays at most 4.
            assert!(net.metrics().max_total_degree <= 4, "n={n}");
            // Active edges per round at most 2n - 3.
            assert!(net.metrics().max_active_edges_total <= 2 * n);
            // Each node activates at most 1 edge per round.
            assert!(net.metrics().max_node_activations_in_round <= 1);
        }
    }

    #[test]
    fn final_network_edges_match_tree_edges() {
        let n = 64;
        let g = generators::line(n);
        let mut net = Network::new(g);
        let (tree, _) =
            run_line_to_tree(&mut net, &identity_line(n), &LineToTreeConfig::binary()).unwrap();
        // The final active edge set is exactly the tree's edge set (no
        // protected edges here, so all former parent edges are gone).
        let final_graph = net.graph();
        assert_eq!(final_graph.edge_count(), n - 1);
        for u in (1..n).map(NodeId) {
            let p = tree.parent(u).unwrap();
            assert!(final_graph.has_edge(u, p));
        }
    }

    #[test]
    fn protected_edges_survive() {
        let n = 32;
        let g = generators::line(n);
        let protected: SortedEdgeSet = g.edges().collect();
        let mut net = Network::new(g.clone());
        let config = LineToTreeConfig::binary().with_protected_edges(protected);
        let (tree, _) = run_line_to_tree(&mut net, &identity_line(n), &config).unwrap();
        // All original line edges are still active.
        for e in g.edges() {
            assert!(
                net.graph().has_edge(e.a, e.b),
                "protected edge {e:?} was removed"
            );
        }
        // And the tree edges are active too.
        for u in (1..n).map(NodeId) {
            let p = tree.parent(u).unwrap();
            assert!(net.graph().has_edge(u, p));
        }
        // Degree: 2 line edges + at most (1 parent + 2 children) tree edges.
        assert!(net.metrics().max_total_degree <= 6);
    }

    #[test]
    fn polylog_arity_gives_shallower_trees() {
        let n = 256;
        let g = generators::line(n);
        let mut net_bin = Network::new(g.clone());
        let (bin, _) =
            run_line_to_tree(&mut net_bin, &identity_line(n), &LineToTreeConfig::binary()).unwrap();
        let mut net_poly = Network::new(g);
        let (poly, _) = run_line_to_tree(
            &mut net_poly,
            &identity_line(n),
            &LineToTreeConfig::polylog(n),
        )
        .unwrap();
        assert!(
            poly.depth() < bin.depth(),
            "poly {} vs bin {}",
            poly.depth(),
            bin.depth()
        );
        let arity = LineToTreeConfig::polylog(n).arity;
        for u in (0..n).map(NodeId) {
            assert!(poly.child_count(u) <= arity);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = generators::line(4);
        let mut net = Network::new(g);
        // Empty line.
        assert!(matches!(
            run_line_to_tree(&mut net, &[], &LineToTreeConfig::binary()),
            Err(CoreError::InvalidInput { .. })
        ));
        // Repeated node.
        assert!(matches!(
            run_line_to_tree(
                &mut net,
                &[NodeId(0), NodeId(1), NodeId(0)],
                &LineToTreeConfig::binary()
            ),
            Err(CoreError::InvalidInput { .. })
        ));
        // Non-adjacent consecutive nodes.
        assert!(matches!(
            run_line_to_tree(
                &mut net,
                &[NodeId(0), NodeId(2)],
                &LineToTreeConfig::binary()
            ),
            Err(CoreError::InvalidInput { .. })
        ));
        // Zero arity.
        assert!(matches!(
            run_line_to_tree(
                &mut net,
                &[NodeId(0), NodeId(1)],
                &LineToTreeConfig {
                    arity: 0,
                    protected_edges: SortedEdgeSet::new()
                }
            ),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn singleton_and_pair_lines() {
        let g = generators::line(2);
        let mut net = Network::new(g);
        let (tree, rounds) =
            run_line_to_tree(&mut net, &identity_line(2), &LineToTreeConfig::binary()).unwrap();
        assert_eq!(rounds, 0);
        assert_eq!(tree.depth(), 1);

        let g1 = generators::line(1);
        let mut net1 = Network::new(g1);
        let (tree1, rounds1) =
            run_line_to_tree(&mut net1, &identity_line(1), &LineToTreeConfig::binary()).unwrap();
        assert_eq!(rounds1, 0);
        assert_eq!(tree1.node_count(), 1);
    }

    #[test]
    fn works_on_reversed_lines_within_larger_networks() {
        // The line need not be the whole vertex set nor in index order:
        // build a line graph but feed the subroutine the reversed order
        // (root at the other end).
        let n = 33;
        let g = generators::line(n);
        let mut net = Network::new(g);
        let line: Vec<NodeId> = (0..n).rev().map(NodeId).collect();
        let (tree, _) = run_line_to_tree(&mut net, &line, &LineToTreeConfig::binary()).unwrap();
        let parents = positional_parents_to_node_ids(&tree, &line);
        // The root position maps to node n-1.
        assert_eq!(parents[0], None);
        assert!(tree.depth() <= ceil_log2(n) + 1);
        // Node-id-space parents must be adjacent in the final network.
        for (pos, parent) in parents.iter().enumerate() {
            if let Some(p) = parent {
                assert!(net.graph().has_edge(line[pos], *p));
            }
        }
    }
}
