//! Distributed tasks layered on top of the transformation (Section 2.2 and
//! the composition argument of Section 1.3).
//!
//! Once a transformation algorithm has produced a target network of
//! (poly)logarithmic diameter with an elected leader, any algorithm `B`
//! that assumes small diameter and a unique leader can run on top of it.
//! This module provides the two tasks the paper names:
//!
//! * **Leader election** — solved by the transformation itself
//!   ([`verify_leader_election`] checks the outcome).
//! * **Token dissemination / global function computation** — performed by
//!   convergecast + broadcast over the final low-diameter network
//!   ([`disseminate_after_transformation`]), compared against plain
//!   flooding on the original network (the no-reconfiguration baseline).

use crate::baselines::flooding::flood;
use crate::{CoreError, TransformationOutcome};
use adn_graph::traversal::eccentricity;
use adn_graph::{Graph, NodeId, UidMap};
use adn_sim::EdgeMetrics;

/// Checks that a transformation outcome constitutes a correct leader
/// election: exactly one leader, and (for the paper's distributed
/// algorithms) it is the maximum-UID node.
pub fn verify_leader_election(outcome: &TransformationOutcome, uids: &UidMap) -> bool {
    uids.max_uid_node() == Some(outcome.leader)
}

/// Result of running token dissemination after a transformation.
#[derive(Debug, Clone)]
pub struct DisseminationReport {
    /// Rounds spent by the transformation.
    pub transformation_rounds: usize,
    /// Rounds spent disseminating over the final network
    /// (convergecast + broadcast ≤ 2 × eccentricity of the leader; we
    /// measure it by flooding on the final network, which has the same
    /// round count as broadcast from the worst-positioned source).
    pub dissemination_rounds: usize,
    /// Combined metrics (transformation + dissemination; dissemination
    /// activates no edges).
    pub metrics: EdgeMetrics,
    /// The computed global function: the maximum UID (any other
    /// associative function over the inputs would disseminate identically).
    pub global_max_uid: u64,
}

/// Runs token dissemination over the transformed network and merges the
/// accounting with the transformation's own cost.
///
/// # Errors
///
/// Propagates flooding errors (e.g. if the final network were
/// disconnected, which would indicate a transformation bug).
pub fn disseminate_after_transformation(
    outcome: &TransformationOutcome,
    uids: &UidMap,
) -> Result<DisseminationReport, CoreError> {
    let dissemination = flood(&outcome.final_graph, uids)?;
    let mut metrics = outcome.metrics.clone();
    metrics.absorb_sequential(&dissemination.metrics);
    Ok(DisseminationReport {
        transformation_rounds: outcome.rounds,
        dissemination_rounds: dissemination.rounds,
        metrics,
        global_max_uid: uids.uid(outcome.leader).value(),
    })
}

/// Token dissemination without reconfiguration: plain flooding over the
/// initial network. Returned as (rounds, metrics); the rounds equal the
/// worst eccentricity, i.e. Θ(diameter).
///
/// # Errors
///
/// Propagates flooding errors for disconnected inputs.
pub fn disseminate_by_flooding_only(
    initial: &Graph,
    uids: &UidMap,
) -> Result<(usize, EdgeMetrics), CoreError> {
    let outcome = flood(initial, uids)?;
    Ok((outcome.rounds, outcome.metrics))
}

/// Upper bound on the rounds needed for convergecast + broadcast from the
/// leader over a graph: `2 × eccentricity(leader)`. Used by the analysis
/// tables to report the "algorithm B" cost the composition argument of
/// Section 1.3 promises.
pub fn convergecast_broadcast_rounds(graph: &Graph, leader: NodeId) -> Option<usize> {
    eccentricity(graph, leader).map(|e| 2 * e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{GraphToStar, ReconfigurationAlgorithm, RunConfig};
    use adn_graph::{generators, UidAssignment};

    fn star(g: &Graph, uids: &UidMap) -> TransformationOutcome {
        GraphToStar.run(g, uids, &RunConfig::default()).unwrap()
    }

    #[test]
    fn transformation_plus_dissemination_beats_flooding_on_a_line() {
        let n = 128;
        let g = generators::line(n);
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 1 });
        let outcome = star(&g, &uids);
        assert!(verify_leader_election(&outcome, &uids));

        let report = disseminate_after_transformation(&outcome, &uids).unwrap();
        let (flood_rounds, flood_metrics) = disseminate_by_flooding_only(&g, &uids).unwrap();

        // Flooding alone needs Θ(n) rounds; transform + disseminate needs
        // O(log n) + O(1) rounds.
        assert!(flood_rounds >= n - 1);
        let total = report.transformation_rounds + report.dissemination_rounds;
        assert!(
            total < flood_rounds / 2,
            "transform+disseminate ({total}) should beat flooding ({flood_rounds})"
        );
        // Flooding performs no activations; the transformation does.
        assert_eq!(flood_metrics.total_activations, 0);
        assert!(report.metrics.total_activations > 0);
        // The global function (max UID) is computed correctly.
        assert_eq!(
            report.global_max_uid,
            uids.uid(uids.max_uid_node().unwrap()).value()
        );
    }

    #[test]
    fn convergecast_bound_is_twice_eccentricity() {
        let star = generators::star(20);
        assert_eq!(convergecast_broadcast_rounds(&star, NodeId(0)), Some(2));
        assert_eq!(convergecast_broadcast_rounds(&star, NodeId(3)), Some(4));
        let line = generators::line(10);
        assert_eq!(convergecast_broadcast_rounds(&line, NodeId(0)), Some(18));
        let mut disc = generators::line(4);
        disc.remove_edge(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(convergecast_broadcast_rounds(&disc, NodeId(0)), None);
    }

    #[test]
    fn dissemination_after_transformation_is_constant_on_the_star() {
        let n = 64;
        let g = generators::ring(n);
        let uids = UidMap::new(n, UidAssignment::Sequential);
        let outcome = star(&g, &uids);
        let report = disseminate_after_transformation(&outcome, &uids).unwrap();
        // The star has diameter 2, so dissemination is O(1) rounds.
        assert!(report.dissemination_rounds <= 4);
    }
}
