//! The unified algorithm layer: one trait, one config, one registry.
//!
//! Every transformation strategy of the paper — the three distributed
//! algorithms, the baselines and the centralized strategies — is exposed
//! as a [`ReconfigurationAlgorithm`]: a named, self-describing object that
//! executes on a validated [`adn_sim::Network`] under a shared
//! [`RunConfig`]. The [`registry`] enumerates all of them, which is what
//! lets experiments, benches and conformance tests sweep *algorithms ×
//! graph families* generically instead of hard-coding per-algorithm entry
//! points.
//!
//! ```
//! use adn_core::algorithm::{registry, RunConfig};
//! use adn_graph::{generators, UidAssignment, UidMap};
//!
//! let graph = generators::line(32);
//! let uids = UidMap::new(32, UidAssignment::RandomPermutation { seed: 1 });
//! for algorithm in registry() {
//!     if !algorithm.supports(&graph) {
//!         continue;
//!     }
//!     let outcome = algorithm.run(&graph, &uids, &RunConfig::default()).unwrap();
//!     assert!(outcome.final_graph.node_count() == 32, "{}", algorithm.name());
//! }
//! ```

use crate::graph_to_wreath::WreathConfig;
use crate::{baselines, centralized, graph_to_star, graph_to_wreath};
use crate::{CoreError, TransformationOutcome};
use adn_graph::properties::ceil_log2;
use adn_graph::{Graph, UidMap};
use adn_sim::dst::{Adversary, DstState, InvariantPolicy, Scenario};
use adn_sim::{Network, SimError};

/// How much per-round detail an execution records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// No per-round trace (fastest; the default).
    #[default]
    Off,
    /// Record one [`adn_sim::RoundStats`] per committed round in
    /// [`TransformationOutcome::trace`].
    PerRound,
}

impl TraceLevel {
    /// Returns true when per-round statistics should be recorded.
    pub fn is_per_round(&self) -> bool {
        matches!(self, TraceLevel::PerRound)
    }
}

/// What the general centralized strategy (Theorem 6.3) leaves behind.
///
/// Replaces the old `prune_to_tree: bool` parameter of
/// `run_centralized_general` with a named, extensible choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CentralizedConfig {
    /// Stop after `CutInHalf` over the Euler tour: the network keeps all
    /// doubling edges and has `O(log n)` diameter.
    LowDiameter,
    /// Additionally spend one clean-up round pruning down to a BFS tree
    /// rooted at the leader, yielding a Depth-`O(log n)` tree (the
    /// default, matching the Depth-`d` Tree problem statement).
    #[default]
    PruneToTree,
}

/// Which execution engine drives an algorithm.
///
/// The paper's model is synchronous and every algorithm runs there; the
/// asynchronous modes execute on the `adn-runtime` actor layer instead,
/// with no round barrier and Dijkstra–Scholten quiescence detection.
/// The algorithms with an actor implementation — flooding, the
/// line-to-tree subroutine, `GraphToStar` and the wreath family — accept
/// the asynchronous modes; the rest fail with [`CoreError::InvalidInput`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// The lock-step round engine of `adn-sim` (the default).
    #[default]
    Synchronous,
    /// The deterministic single-threaded asynchronous scheduler: delivery
    /// order derives from one seed, runs replay byte-identically. Delay
    /// and reorder knobs are lifted from [`RunConfig::dst`]'s scenario
    /// when one is armed.
    Seeded {
        /// Scheduler seed.
        seed: u64,
    },
    /// The free-running multi-threaded asynchronous scheduler (real
    /// threads, OS-determined order; not reproducible).
    Free {
        /// Worker threads (clamped to at least 1).
        threads: usize,
    },
}

impl EngineMode {
    /// True for the synchronous round engine.
    pub fn is_synchronous(&self) -> bool {
        matches!(self, EngineMode::Synchronous)
    }
}

/// A deterministic-simulation-testing request travelling with the run
/// configuration: which adversarial [`Scenario`] to execute under and the
/// seed that makes the whole fault schedule reproducible.
#[derive(Debug, Clone)]
pub struct DstConfig {
    /// The adversarial environment to run under.
    pub scenario: Scenario,
    /// Adversary seed; `(scenario, seed)` determines the fault schedule
    /// bit-for-bit.
    pub seed: u64,
}

/// The shared run configuration honored by every registered algorithm.
///
/// This replaces the scattered per-function booleans and config structs of
/// the old `run_*` API: trace recording, an optional hard round budget and
/// the per-family overrides all travel together.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Per-round trace recording.
    pub trace: TraceLevel,
    /// Optional hard cap on the rounds metered on the network (cumulative
    /// when composing on an already-used network); executions exceeding it
    /// fail with [`SimError::RoundLimitExceeded`] instead of completing.
    pub round_budget: Option<usize>,
    /// Override for the wreath-family engine (tree arity, communication
    /// charging). `None` uses each algorithm's paper configuration.
    pub wreath: Option<WreathConfig>,
    /// Target shape for the general centralized strategy.
    pub centralized: CentralizedConfig,
    /// Optional deterministic-simulation-testing request: run under an
    /// adversarial scenario with round-level invariant checking. Honored
    /// by the entry points that build the network
    /// ([`ReconfigurationAlgorithm::run`] and the `Experiment` builder);
    /// callers invoking [`ReconfigurationAlgorithm::execute`] on their own
    /// network arm it themselves via [`arm_network_for_dst`].
    pub dst: Option<DstConfig>,
    /// Which execution engine drives the run (synchronous rounds by
    /// default; see [`EngineMode`]).
    pub engine: EngineMode,
}

impl RunConfig {
    /// A configuration with per-round tracing enabled.
    pub fn traced() -> Self {
        RunConfig {
            trace: TraceLevel::PerRound,
            ..RunConfig::default()
        }
    }

    /// Sets the trace level (builder style).
    pub fn with_trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Sets the round budget (builder style).
    pub fn with_round_budget(mut self, rounds: usize) -> Self {
        self.round_budget = Some(rounds);
        self
    }

    /// Sets the wreath-engine override (builder style).
    pub fn with_wreath(mut self, config: WreathConfig) -> Self {
        self.wreath = Some(config);
        self
    }

    /// Sets the centralized-strategy target (builder style).
    pub fn with_centralized(mut self, config: CentralizedConfig) -> Self {
        self.centralized = config;
        self
    }

    /// Requests a deterministic-simulation-testing run under `scenario`
    /// with the given adversary seed (builder style).
    pub fn with_dst(mut self, scenario: Scenario, seed: u64) -> Self {
        self.dst = Some(DstConfig { scenario, seed });
        self
    }

    /// Selects the execution engine (builder style).
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Guard for algorithms without an asynchronous actor implementation:
    /// fails with [`CoreError::InvalidInput`] unless the configured engine
    /// is the synchronous one.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] when an asynchronous engine mode is
    /// configured.
    pub fn require_sync_engine(&self, algorithm: &'static str) -> Result<(), CoreError> {
        if self.engine.is_synchronous() {
            Ok(())
        } else {
            Err(CoreError::InvalidInput {
                reason: format!(
                    "{algorithm} has no asynchronous implementation; \
                     use EngineMode::Synchronous"
                ),
            })
        }
    }

    /// The asynchronous delivery knobs implied by this configuration: the
    /// armed DST scenario's knobs when present, defaults otherwise.
    pub fn async_knobs(&self) -> adn_runtime::AsyncKnobs {
        match &self.dst {
            Some(dst) => adn_runtime::AsyncKnobs::from_scenario(&dst.scenario),
            None => adn_runtime::AsyncKnobs::default(),
        }
    }

    /// Fails with [`SimError::RoundLimitExceeded`] once the metered rounds
    /// on `network` (cumulative, counting rounds committed before this
    /// execution) exceed the configured budget. Algorithms call this at
    /// the top of every phase/round loop and again before returning, so a
    /// completed execution never exceeds the budget.
    ///
    /// # Errors
    ///
    /// [`CoreError::Sim`] when the budget is exhausted.
    pub fn check_round_budget(&self, network: &Network) -> Result<(), CoreError> {
        match self.round_budget {
            Some(limit) if network.metrics().rounds > limit => {
                Err(CoreError::Sim(SimError::RoundLimitExceeded { limit }))
            }
            _ => Ok(()),
        }
    }

    /// The engine round cap implied by this configuration: the algorithm's
    /// own `default` limit, tightened by whatever is left of the budget
    /// after the rounds already metered on `network` (the budget counts
    /// cumulative network rounds, like [`RunConfig::check_round_budget`]).
    pub fn engine_round_cap(&self, network: &Network, default: usize) -> usize {
        match self.round_budget {
            Some(budget) => default.min(budget.saturating_sub(network.metrics().rounds)),
            None => default,
        }
    }
}

/// Static description of an algorithm: identity, paper reference, the
/// complexity bounds its theorem states, and machine-checkable bounds on
/// the final network used by the conformance suite.
#[derive(Debug, Clone, Copy)]
pub struct AlgorithmSpec {
    /// Stable machine-friendly identifier (`snake_case`), used for
    /// registry lookup.
    pub id: &'static str,
    /// Human-readable name, as the paper spells it.
    pub name: &'static str,
    /// Where in the paper the algorithm and its bounds live.
    pub paper_ref: &'static str,
    /// Asymptotic running time in rounds, as stated by the paper.
    pub time: &'static str,
    /// Asymptotic total edge activations, as stated by the paper.
    pub total_activations: &'static str,
    /// Degree behaviour, as stated by the paper.
    pub degree: &'static str,
    /// True for strategies with a global controller (Section 6).
    pub centralized: bool,
    /// True when the elected leader is guaranteed to be the maximum-UID
    /// node (`u_max`).
    pub elects_max_uid_leader: bool,
    /// Upper bound on the diameter of the final network, as a function of
    /// `n` (generous constants; checked by the conformance suite).
    pub diameter_bound: fn(usize) -> usize,
    /// Upper bound on the maximum degree of the final network, as a
    /// function of `n` (generous constants; checked by the conformance
    /// suite).
    pub max_degree_bound: fn(usize) -> usize,
}

/// A reconfiguration algorithm of the paper, exposed uniformly.
///
/// Implementations execute on a caller-provided [`Network`] so they can be
/// composed (run a transformation, then a task, on the same metered
/// network) and honor the shared [`RunConfig`].
pub trait ReconfigurationAlgorithm: Sync {
    /// Human-readable name (defaults to [`AlgorithmSpec::name`]).
    fn name(&self) -> &'static str {
        self.spec().name
    }

    /// The static description of this algorithm.
    fn spec(&self) -> AlgorithmSpec;

    /// Whether this algorithm's precondition accepts `initial` (beyond
    /// connectivity, which every algorithm requires). Only
    /// [`CentralizedCutInHalf`] restricts this (spanning lines).
    fn supports(&self, initial: &Graph) -> bool {
        let _ = initial;
        true
    }

    /// Whether this algorithm has an asynchronous actor implementation,
    /// i.e. accepts [`EngineMode::Seeded`] and [`EngineMode::Free`] in
    /// addition to the synchronous engine (which every algorithm
    /// supports). Algorithms that return `false` here must fail cleanly
    /// with [`CoreError::InvalidInput`] — never panic — when handed an
    /// asynchronous mode; the conformance suite exercises every
    /// registered algorithm once per mode to enforce exactly that.
    fn supports_async_engines(&self) -> bool {
        false
    }

    /// The engine modes this algorithm accepts, for support matrices and
    /// the conformance suite (representative members: the seed/thread
    /// payloads carried by the async modes are inputs, not capabilities).
    fn supported_engine_modes(&self) -> Vec<EngineMode> {
        if self.supports_async_engines() {
            vec![
                EngineMode::Synchronous,
                EngineMode::Seeded { seed: 0 },
                EngineMode::Free { threads: 1 },
            ]
        } else {
            vec![EngineMode::Synchronous]
        }
    }

    /// Executes the algorithm on `network` (whose current snapshot is the
    /// initial network `G_s`) under `config`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidInput`] when the precondition fails.
    /// * [`CoreError::Sim`] on model violations or an exhausted
    ///   [`RunConfig::round_budget`].
    /// * [`CoreError::DidNotConverge`] on internal phase-budget exhaustion
    ///   (an implementation bug — the algorithms are proven to terminate).
    fn execute(
        &self,
        network: &mut Network,
        uids: &UidMap,
        config: &RunConfig,
    ) -> Result<TransformationOutcome, CoreError>;

    /// Convenience wrapper: builds a fresh [`Network`] over `initial`,
    /// arms the deterministic-simulation-testing layer when
    /// [`RunConfig::dst`] asks for it, and calls
    /// [`ReconfigurationAlgorithm::execute`].
    ///
    /// # Errors
    ///
    /// As [`ReconfigurationAlgorithm::execute`].
    fn run(
        &self,
        initial: &Graph,
        uids: &UidMap,
        config: &RunConfig,
    ) -> Result<TransformationOutcome, CoreError> {
        let mut network = Network::new(initial.clone());
        if let Some(dst) = &config.dst {
            arm_network_for_dst(&mut network, &self.spec(), uids, dst);
        }
        self.execute(&mut network, uids, config)
    }
}

/// Installs the deterministic-simulation-testing state on `network`: a
/// seeded [`Adversary`] for `dst.scenario` plus a round-level
/// [`InvariantPolicy`] derived from the algorithm's [`AlgorithmSpec`]
/// (generous slack over the spec's *final*-network degree bound, since
/// intermediate snapshots may legitimately exceed it; connectivity of the
/// live subgraph; UID uniqueness across churn).
pub fn arm_network_for_dst(
    network: &mut Network,
    spec: &AlgorithmSpec,
    uids: &UidMap,
    dst: &DstConfig,
) {
    let n = network.node_count();
    let policy = InvariantPolicy {
        check_connectivity: true,
        max_activated_degree: Some(4 * (spec.max_degree_bound)(n) + 8),
        // Any algorithm may temporarily hold its activated edges on top of
        // the surviving initial ones; the subroutines' stated budget is
        // O(n) activated edges, the clique straw-man needs the full n².
        max_active_edges: Some(network.graph().edge_count() + n * n),
        check_uid_uniqueness: true,
    };
    let uid_values = uids.as_slice().iter().map(|u| u.value()).collect();
    network.install_dst(DstState::new(
        Adversary::new(dst.scenario.clone(), dst.seed),
        policy,
        uid_values,
    ));
}

/// **GraphToStar** (Section 3): `O(log n)` time, optimal `O(n log n)`
/// total activations, spanning-star target (Depth-1 Tree).
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphToStar;

impl ReconfigurationAlgorithm for GraphToStar {
    fn spec(&self) -> AlgorithmSpec {
        AlgorithmSpec {
            id: "graph_to_star",
            name: "GraphToStar",
            paper_ref: "Section 3, Theorem 3.8",
            time: "O(log n)",
            total_activations: "O(n log n)",
            degree: "Θ(n) at the hub (inherent for diameter 2)",
            centralized: false,
            elects_max_uid_leader: true,
            diameter_bound: |n| if n <= 2 { n.saturating_sub(1) } else { 2 },
            max_degree_bound: |n| n.saturating_sub(1),
        }
    }

    fn supports_async_engines(&self) -> bool {
        true
    }

    fn execute(
        &self,
        network: &mut Network,
        uids: &UidMap,
        config: &RunConfig,
    ) -> Result<TransformationOutcome, CoreError> {
        graph_to_star::execute(network, uids, config)
    }
}

/// **GraphToWreath** (Section 4): bounded degree, `O(log² n)` time,
/// complete-binary-tree target (Depth-`log n` Tree).
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphToWreath;

impl ReconfigurationAlgorithm for GraphToWreath {
    fn spec(&self) -> AlgorithmSpec {
        AlgorithmSpec {
            id: "graph_to_wreath",
            name: "GraphToWreath",
            paper_ref: "Section 4, Theorem 4.2",
            time: "O(log² n)",
            total_activations: "O(n log² n)",
            degree: "O(1) activated degree",
            centralized: false,
            elects_max_uid_leader: true,
            diameter_bound: |n| 4 * ceil_log2(n.max(2)) + 4,
            max_degree_bound: |_| 3,
        }
    }

    fn supports_async_engines(&self) -> bool {
        true
    }

    fn execute(
        &self,
        network: &mut Network,
        uids: &UidMap,
        config: &RunConfig,
    ) -> Result<TransformationOutcome, CoreError> {
        let wreath = config.wreath.clone().unwrap_or_else(WreathConfig::binary);
        graph_to_wreath::execute(network, uids, &wreath, config)
    }
}

/// **GraphToThinWreath** (Section 5): polylogarithmic degree, `o(log² n)`
/// time, complete polylog-degree-tree target.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphToThinWreath;

impl ReconfigurationAlgorithm for GraphToThinWreath {
    fn spec(&self) -> AlgorithmSpec {
        AlgorithmSpec {
            id: "graph_to_thin_wreath",
            name: "GraphToThinWreath",
            paper_ref: "Section 5, Theorem 5.1",
            time: "O(log² n / log log n)",
            total_activations: "O(n log² n / log log n)",
            degree: "O(log n)",
            centralized: false,
            elects_max_uid_leader: true,
            diameter_bound: |n| 2 * ceil_log2(n.max(2)) + 4,
            max_degree_bound: |n| ceil_log2(n.max(4)).max(2) + 1,
        }
    }

    fn supports_async_engines(&self) -> bool {
        true
    }

    fn execute(
        &self,
        network: &mut Network,
        uids: &UidMap,
        config: &RunConfig,
    ) -> Result<TransformationOutcome, CoreError> {
        let wreath = config
            .wreath
            .clone()
            .unwrap_or_else(|| WreathConfig::polylog(network.node_count()));
        graph_to_wreath::execute(network, uids, &wreath, config)
    }
}

/// The clique-formation straw-man (Section 1.2): `O(log n)` time but
/// `Θ(n²)` activations and linear degree.
#[derive(Debug, Clone, Copy, Default)]
pub struct CliqueFormation;

impl ReconfigurationAlgorithm for CliqueFormation {
    fn spec(&self) -> AlgorithmSpec {
        AlgorithmSpec {
            id: "clique_formation",
            name: "CliqueFormation",
            paper_ref: "Section 1.2",
            time: "O(log n)",
            total_activations: "Θ(n²)",
            degree: "Θ(n)",
            centralized: false,
            elects_max_uid_leader: true,
            diameter_bound: |n| if n <= 1 { 0 } else { 1 },
            max_degree_bound: |n| n.saturating_sub(1),
        }
    }

    fn execute(
        &self,
        network: &mut Network,
        uids: &UidMap,
        config: &RunConfig,
    ) -> Result<TransformationOutcome, CoreError> {
        baselines::clique::execute(network, uids, config)
    }
}

/// The centralized `CutInHalf` strategy on a spanning line (Section 6):
/// `log n` rounds and `Θ(n)` total activations.
#[derive(Debug, Clone, Copy, Default)]
pub struct CentralizedCutInHalf;

impl ReconfigurationAlgorithm for CentralizedCutInHalf {
    fn spec(&self) -> AlgorithmSpec {
        AlgorithmSpec {
            id: "centralized_cut_in_half",
            name: "Centralized CutInHalf",
            paper_ref: "Section 6, Lemma D.2",
            time: "O(log n)",
            total_activations: "Θ(n)",
            degree: "O(log n)",
            centralized: true,
            elects_max_uid_leader: false,
            diameter_bound: |n| 2 * ceil_log2(n.max(2)) + 2,
            max_degree_bound: |n| 2 * ceil_log2(n.max(2)) + 2,
        }
    }

    fn supports(&self, initial: &Graph) -> bool {
        adn_graph::properties::is_line(initial)
    }

    fn execute(
        &self,
        network: &mut Network,
        uids: &UidMap,
        config: &RunConfig,
    ) -> Result<TransformationOutcome, CoreError> {
        centralized::execute_cut_in_half(network, uids, config)
    }
}

/// The general centralized strategy (Theorem 6.3): spanning tree → Euler
/// tour → virtual ring → `CutInHalf`, optionally pruned to a BFS tree (see
/// [`CentralizedConfig`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CentralizedGeneral;

impl ReconfigurationAlgorithm for CentralizedGeneral {
    fn spec(&self) -> AlgorithmSpec {
        AlgorithmSpec {
            id: "centralized_general",
            name: "Centralized (Euler + CutInHalf)",
            paper_ref: "Section 6, Theorem 6.3",
            time: "O(log n)",
            total_activations: "Θ(n)",
            degree: "unbounded (target permits it)",
            centralized: true,
            elects_max_uid_leader: true,
            diameter_bound: |n| 6 * ceil_log2(n.max(2)) + 6,
            max_degree_bound: |n| n.saturating_sub(1),
        }
    }

    fn execute(
        &self,
        network: &mut Network,
        uids: &UidMap,
        config: &RunConfig,
    ) -> Result<TransformationOutcome, CoreError> {
        centralized::execute_general(network, uids, config.centralized, config)
    }
}

/// The no-reconfiguration baseline: flooding over the static initial
/// network (Section 1.2). Performs zero edge operations; the "final"
/// network is the initial one.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flooding;

impl ReconfigurationAlgorithm for Flooding {
    fn spec(&self) -> AlgorithmSpec {
        AlgorithmSpec {
            id: "flooding",
            name: "Flooding",
            paper_ref: "Section 1.2 (no-modification baseline)",
            time: "Θ(diameter)",
            total_activations: "0",
            degree: "unchanged",
            centralized: false,
            elects_max_uid_leader: true,
            diameter_bound: |n| n.saturating_sub(1),
            max_degree_bound: |n| n.saturating_sub(1),
        }
    }

    fn supports_async_engines(&self) -> bool {
        true
    }

    fn execute(
        &self,
        network: &mut Network,
        uids: &UidMap,
        config: &RunConfig,
    ) -> Result<TransformationOutcome, CoreError> {
        baselines::flooding::execute(network, uids, config)
    }
}

static REGISTRY: [&dyn ReconfigurationAlgorithm; 7] = [
    &GraphToStar,
    &GraphToWreath,
    &GraphToThinWreath,
    &CliqueFormation,
    &CentralizedCutInHalf,
    &CentralizedGeneral,
    &Flooding,
];

/// Every registered algorithm, in canonical comparison order (the three
/// distributed algorithms, then the baselines, then the centralized
/// strategies).
pub fn registry() -> &'static [&'static dyn ReconfigurationAlgorithm] {
    &REGISTRY
}

/// Looks an algorithm up by its stable id (`"graph_to_star"`, …) or its
/// human-readable name, case-insensitively.
pub fn find(id: &str) -> Option<&'static dyn ReconfigurationAlgorithm> {
    REGISTRY
        .iter()
        .copied()
        .find(|a| a.spec().id.eq_ignore_ascii_case(id) || a.spec().name.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::{generators, UidAssignment};

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let mut ids: Vec<&str> = registry().iter().map(|a| a.spec().id).collect();
        ids.sort_unstable();
        let deduped = {
            let mut v = ids.clone();
            v.dedup();
            v
        };
        assert_eq!(ids, deduped, "duplicate algorithm ids");
        for a in registry() {
            assert!(find(a.spec().id).is_some());
            assert!(find(a.spec().name).is_some());
            assert!(find(&a.spec().id.to_uppercase()).is_some());
        }
        assert!(find("no_such_algorithm").is_none());
    }

    #[test]
    fn every_algorithm_runs_on_a_line() {
        let n = 24;
        let graph = generators::line(n);
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 3 });
        for a in registry() {
            assert!(a.supports(&graph), "{} must support a line", a.name());
            let outcome = a
                .run(&graph, &uids, &RunConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", a.name()));
            assert!(
                adn_graph::traversal::is_connected(&outcome.final_graph),
                "{} disconnected the network",
                a.name()
            );
            if a.spec().elects_max_uid_leader {
                assert_eq!(Some(outcome.leader), uids.max_uid_node(), "{}", a.name());
            }
        }
    }

    #[test]
    fn trace_level_controls_trace_recording() {
        let graph = generators::ring(16);
        let uids = UidMap::new(16, UidAssignment::Sequential);
        let silent = GraphToStar
            .run(&graph, &uids, &RunConfig::default())
            .unwrap();
        assert!(silent.trace.is_empty());
        let traced = GraphToStar
            .run(&graph, &uids, &RunConfig::traced())
            .unwrap();
        assert!(!traced.trace.is_empty());
        // The trace covers every committed round and carries committees.
        assert!(traced.trace.iter().all(|r| r.round <= traced.rounds));
        assert!(traced.trace.iter().any(|r| r.groups_alive > 0));
    }

    #[test]
    fn round_budget_is_enforced_by_every_algorithm() {
        let graph = generators::line(64);
        let uids = UidMap::new(64, UidAssignment::Sequential);
        let strict = RunConfig::default().with_round_budget(1);
        for a in registry() {
            if !a.supports(&graph) {
                continue;
            }
            let result = a.run(&graph, &uids, &strict);
            assert!(
                matches!(
                    result,
                    Err(CoreError::Sim(SimError::RoundLimitExceeded { .. }))
                ),
                "{} ignored a 1-round budget: {:?}",
                a.name(),
                result.map(|o| o.rounds)
            );
        }
    }

    #[test]
    fn completed_runs_never_exceed_the_budget() {
        // A budget is a hard cap on the outcome's rounds, not just a
        // phase-boundary heuristic: a run either finishes within it or
        // errors (this used to overshoot by up to one final phase).
        let graph = generators::line(6);
        let uids = UidMap::new(6, UidAssignment::Sequential);
        for budget in 1..16usize {
            let config = RunConfig::default().with_round_budget(budget);
            for a in registry() {
                if !a.supports(&graph) {
                    continue;
                }
                if let Ok(outcome) = a.run(&graph, &uids, &config) {
                    assert!(
                        outcome.rounds <= budget,
                        "{} completed with {} rounds under a budget of {budget}",
                        a.name(),
                        outcome.rounds
                    );
                }
            }
        }
    }

    #[test]
    fn budget_is_cumulative_when_composing_on_one_network() {
        // The budget counts total metered rounds on the network, for
        // engine-based algorithms too: a second execution on the same
        // network only gets what is left.
        let graph = generators::line(12);
        let uids = UidMap::new(12, UidAssignment::Sequential);
        let config = RunConfig::default().with_round_budget(15);
        let mut network = Network::new(graph.clone());
        Flooding.execute(&mut network, &uids, &config).unwrap();
        assert!(network.metrics().rounds >= 11);
        let second = Flooding.execute(&mut network, &uids, &config);
        assert!(
            matches!(
                second,
                Err(CoreError::Sim(SimError::RoundLimitExceeded { .. }))
            ),
            "second run must see only the remaining budget: {second:?}"
        );
    }

    #[test]
    fn cut_in_half_only_supports_lines() {
        assert!(CentralizedCutInHalf.supports(&generators::line(8)));
        assert!(!CentralizedCutInHalf.supports(&generators::ring(8)));
        let uids = UidMap::new(8, UidAssignment::Sequential);
        assert!(matches!(
            CentralizedCutInHalf.run(&generators::ring(8), &uids, &RunConfig::default()),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn centralized_config_switches_target_shape() {
        let graph = generators::line(64);
        let uids = UidMap::new(64, UidAssignment::Sequential);
        let pruned = CentralizedGeneral
            .run(&graph, &uids, &RunConfig::default())
            .unwrap();
        assert!(adn_graph::properties::is_tree(&pruned.final_graph));
        let low_diameter = CentralizedGeneral
            .run(
                &graph,
                &uids,
                &RunConfig::default().with_centralized(CentralizedConfig::LowDiameter),
            )
            .unwrap();
        assert!(!adn_graph::properties::is_tree(&low_diameter.final_graph));
        assert!(low_diameter.final_graph.edge_count() > pruned.final_graph.edge_count());
    }

    #[test]
    fn wreath_override_changes_the_gadget() {
        let graph = generators::ring(64);
        let uids = UidMap::new(64, UidAssignment::Sequential);
        let config = RunConfig::default().with_wreath(WreathConfig {
            name: "GraphToWreath(arity 4)",
            tree_arity: 4,
            charge_communication: false,
        });
        let outcome = GraphToWreath.run(&graph, &uids, &config).unwrap();
        let tree = adn_graph::RootedTree::from_tree_graph(&outcome.final_graph, outcome.leader)
            .expect("final graph is a tree");
        assert!(graph.nodes().all(|u| tree.child_count(u) <= 4));
    }
}
