//! Edge-complexity metrics (Section 2.2 of the paper).

/// The paper's edge-complexity measures plus the running time, accumulated
/// by [`crate::Network`] as rounds are committed.
///
/// * `total_activations` — `Σ_i |E_ac(i)|` (**Total Edge Activations**).
/// * `max_activated_edges` — `max_i |E(i) \ E(1)|` (**Maximum Activated
///   Edges**): the largest number of concurrently active edges that were
///   *not* part of the initial network.
/// * `max_activated_degree` — `max_i deg(D(i) \ D(1))` (**Maximum
///   Activated Degree**): the largest degree of any node counting only
///   activated (non-initial) edges.
/// * `max_total_degree` — the largest degree counting all edges (initial
///   plus activated); the paper's bounded-degree statements
///   ("8 + c where c is the initial degree") are checked against this.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeMetrics {
    /// Number of rounds that have elapsed (committed or idle-charged).
    pub rounds: usize,
    /// Total number of edge activations performed over all rounds.
    pub total_activations: usize,
    /// Total number of edge deactivations performed over all rounds.
    pub total_deactivations: usize,
    /// Number of activations performed in each committed round
    /// (idle/communication-only rounds contribute 0).
    pub activations_per_round: Vec<usize>,
    /// Maximum over rounds of the number of active non-initial edges.
    pub max_activated_edges: usize,
    /// Maximum over rounds of the number of active edges (including the
    /// surviving initial edges). Useful to compare against the `2n` bounds
    /// stated for the subroutines.
    pub max_active_edges_total: usize,
    /// Maximum over rounds of a node's degree counting only activated
    /// (non-initial) edges.
    pub max_activated_degree: usize,
    /// Maximum over rounds of a node's total degree (all active edges).
    pub max_total_degree: usize,
    /// Maximum number of activations performed by (attributed to) a single
    /// node within a single round. Our main algorithms keep this at 1; the
    /// clique baseline does not.
    pub max_node_activations_in_round: usize,
}

impl EdgeMetrics {
    /// Creates an empty metrics accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maximum number of activations in any single round.
    pub fn max_activations_in_round(&self) -> usize {
        self.activations_per_round
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Average number of activations per committed round (0 if no rounds).
    pub fn mean_activations_per_round(&self) -> f64 {
        if self.activations_per_round.is_empty() {
            0.0
        } else {
            self.total_activations as f64 / self.activations_per_round.len() as f64
        }
    }

    /// Merges another metrics record into this one, as if the other
    /// execution ran *after* this one on the same network (rounds add up,
    /// maxima take the max). Used when composing algorithms, e.g. a
    /// transformation followed by a dissemination phase.
    pub fn absorb_sequential(&mut self, later: &EdgeMetrics) {
        self.rounds += later.rounds;
        self.total_activations += later.total_activations;
        self.total_deactivations += later.total_deactivations;
        self.activations_per_round
            .extend_from_slice(&later.activations_per_round);
        self.max_activated_edges = self.max_activated_edges.max(later.max_activated_edges);
        self.max_active_edges_total = self
            .max_active_edges_total
            .max(later.max_active_edges_total);
        self.max_activated_degree = self.max_activated_degree.max(later.max_activated_degree);
        self.max_total_degree = self.max_total_degree.max(later.max_total_degree);
        self.max_node_activations_in_round = self
            .max_node_activations_in_round
            .max(later.max_node_activations_in_round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let m = EdgeMetrics::new();
        assert_eq!(m.rounds, 0);
        assert_eq!(m.total_activations, 0);
        assert_eq!(m.max_activations_in_round(), 0);
        assert_eq!(m.mean_activations_per_round(), 0.0);
    }

    #[test]
    fn per_round_statistics() {
        let m = EdgeMetrics {
            rounds: 3,
            total_activations: 6,
            activations_per_round: vec![1, 2, 3],
            ..Default::default()
        };
        assert_eq!(m.max_activations_in_round(), 3);
        assert!((m.mean_activations_per_round() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_absorption_adds_and_maxes() {
        let mut a = EdgeMetrics {
            rounds: 2,
            total_activations: 5,
            total_deactivations: 1,
            activations_per_round: vec![2, 3],
            max_activated_edges: 4,
            max_active_edges_total: 9,
            max_activated_degree: 3,
            max_total_degree: 5,
            max_node_activations_in_round: 1,
        };
        let b = EdgeMetrics {
            rounds: 4,
            total_activations: 2,
            total_deactivations: 7,
            activations_per_round: vec![1, 1, 0, 0],
            max_activated_edges: 2,
            max_active_edges_total: 12,
            max_activated_degree: 6,
            max_total_degree: 4,
            max_node_activations_in_round: 3,
        };
        a.absorb_sequential(&b);
        assert_eq!(a.rounds, 6);
        assert_eq!(a.total_activations, 7);
        assert_eq!(a.total_deactivations, 8);
        assert_eq!(a.activations_per_round.len(), 6);
        assert_eq!(a.max_activated_edges, 4);
        assert_eq!(a.max_active_edges_total, 12);
        assert_eq!(a.max_activated_degree, 6);
        assert_eq!(a.max_total_degree, 5);
        assert_eq!(a.max_node_activations_in_round, 3);
    }
}
