//! Edge-complexity metrics (Section 2.2 of the paper).

/// The paper's edge-complexity measures plus the running time, accumulated
/// by [`crate::Network`] as rounds are committed.
///
/// * `total_activations` — `Σ_i |E_ac(i)|` (**Total Edge Activations**).
/// * `max_activated_edges` — `max_i |E(i) \ E(1)|` (**Maximum Activated
///   Edges**): the largest number of concurrently active edges that were
///   *not* part of the initial network.
/// * `max_activated_degree` — `max_i deg(D(i) \ D(1))` (**Maximum
///   Activated Degree**): the largest degree of any node counting only
///   activated (non-initial) edges.
/// * `max_total_degree` — the largest degree counting all edges (initial
///   plus activated); the paper's bounded-degree statements
///   ("8 + c where c is the initial degree") are checked against this.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeMetrics {
    /// Number of rounds that have elapsed (committed or idle-charged).
    pub rounds: usize,
    /// Total number of edge activations performed over all rounds.
    pub total_activations: usize,
    /// Total number of edge deactivations performed over all rounds.
    pub total_deactivations: usize,
    /// Number of activations performed in each elapsed round, in round
    /// order. Idle/communication-only rounds and adversarially skewed
    /// rounds contribute an explicit 0 (pinned by
    /// `idle_rounds_contribute_zero_activations`), so the vector length
    /// is the elapsed-round count — unless capped by
    /// [`EdgeMetrics::round_history_limit`], in which case the overflow
    /// is tallied in [`EdgeMetrics::round_records_dropped`].
    pub activations_per_round: Vec<usize>,
    /// Optional cap on the recorded per-round history (`None` =
    /// unbounded, the default). Million-node service/bench workloads run
    /// far more rounds than anyone will plot: with a cap set, the first
    /// `cap` rounds keep their per-round record and every later round is
    /// counted in [`EdgeMetrics::round_records_dropped`] instead, while
    /// totals, means and maxima stay exact
    /// ([`EdgeMetrics::max_activations_in_round`] is maintained as a
    /// running peak). Set through
    /// [`crate::Network::set_round_history_limit`].
    pub round_history_limit: Option<usize>,
    /// Number of per-round records dropped by
    /// [`EdgeMetrics::round_history_limit`] — the loud marker that
    /// `activations_per_round` is a truncated prefix, not the full run.
    pub round_records_dropped: usize,
    /// Running peak of the per-round activation counts, updated on every
    /// recorded round so [`EdgeMetrics::max_activations_in_round`] stays
    /// exact when the per-round history is capped.
    pub peak_round_activations: usize,
    /// Maximum over rounds of the number of active non-initial edges.
    pub max_activated_edges: usize,
    /// Maximum over rounds of the number of active edges (including the
    /// surviving initial edges). Useful to compare against the `2n` bounds
    /// stated for the subroutines.
    pub max_active_edges_total: usize,
    /// Maximum over rounds of a node's degree counting only activated
    /// (non-initial) edges.
    pub max_activated_degree: usize,
    /// Maximum over rounds of a node's total degree (all active edges).
    pub max_total_degree: usize,
    /// Maximum number of activations performed by (attributed to) a single
    /// node within a single round. Our main algorithms keep this at 1; the
    /// clique baseline does not.
    pub max_node_activations_in_round: usize,
}

impl EdgeMetrics {
    /// Creates an empty metrics accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the cap on the recorded per-round history (see
    /// [`EdgeMetrics::round_history_limit`]). `None` removes the cap;
    /// already-recorded entries are kept either way.
    pub fn set_round_history_limit(&mut self, limit: Option<usize>) {
        self.round_history_limit = limit;
    }

    /// Records one elapsed round's activation count, honoring the
    /// history cap while keeping the running peak exact.
    pub(crate) fn push_round_activations(&mut self, activations: usize) {
        self.peak_round_activations = self.peak_round_activations.max(activations);
        match self.round_history_limit {
            Some(cap) if self.activations_per_round.len() >= cap => {
                self.round_records_dropped += 1;
            }
            _ => self.activations_per_round.push(activations),
        }
    }

    /// Number of rounds with a per-round activation record, including
    /// the ones dropped by [`EdgeMetrics::round_history_limit`].
    pub fn recorded_rounds(&self) -> usize {
        self.activations_per_round.len() + self.round_records_dropped
    }

    /// Maximum number of activations in any single round. Exact even
    /// when the per-round history is capped: the scan over the retained
    /// prefix is combined with the running peak.
    pub fn max_activations_in_round(&self) -> usize {
        self.activations_per_round
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.peak_round_activations)
    }

    /// Average number of activations per *elapsed* round (0 if no
    /// rounds). The denominator counts every round that recorded a
    /// per-round entry — committed rounds, idle communication rounds
    /// and adversarially skewed rounds (the latter two contribute 0
    /// activations) — including entries dropped by the history cap, so
    /// this is activations per round of wall-clock model time, not per
    /// committed round.
    pub fn mean_activations_per_round(&self) -> f64 {
        let rounds = self.recorded_rounds();
        if rounds == 0 {
            0.0
        } else {
            self.total_activations as f64 / rounds as f64
        }
    }

    /// Merges another metrics record into this one, as if the other
    /// execution ran *after* this one on the same network (rounds add up,
    /// maxima take the max). Used when composing algorithms, e.g. a
    /// transformation followed by a dissemination phase.
    pub fn absorb_sequential(&mut self, later: &EdgeMetrics) {
        self.rounds += later.rounds;
        self.total_activations += later.total_activations;
        self.total_deactivations += later.total_deactivations;
        for &a in &later.activations_per_round {
            self.push_round_activations(a);
        }
        self.round_records_dropped += later.round_records_dropped;
        self.peak_round_activations = self
            .peak_round_activations
            .max(later.peak_round_activations);
        self.max_activated_edges = self.max_activated_edges.max(later.max_activated_edges);
        self.max_active_edges_total = self
            .max_active_edges_total
            .max(later.max_active_edges_total);
        self.max_activated_degree = self.max_activated_degree.max(later.max_activated_degree);
        self.max_total_degree = self.max_total_degree.max(later.max_total_degree);
        self.max_node_activations_in_round = self
            .max_node_activations_in_round
            .max(later.max_node_activations_in_round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let m = EdgeMetrics::new();
        assert_eq!(m.rounds, 0);
        assert_eq!(m.total_activations, 0);
        assert_eq!(m.max_activations_in_round(), 0);
        assert_eq!(m.mean_activations_per_round(), 0.0);
    }

    #[test]
    fn per_round_statistics() {
        let m = EdgeMetrics {
            rounds: 3,
            total_activations: 6,
            activations_per_round: vec![1, 2, 3],
            ..Default::default()
        };
        assert_eq!(m.max_activations_in_round(), 3);
        assert!((m.mean_activations_per_round() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn round_history_cap_preserves_totals_and_maxima() {
        let mut m = EdgeMetrics::new();
        m.set_round_history_limit(Some(3));
        for (i, &a) in [5usize, 1, 2, 9, 0, 4].iter().enumerate() {
            m.rounds += 1;
            m.total_activations += a;
            m.push_round_activations(a);
            assert_eq!(m.recorded_rounds(), i + 1);
        }
        // Only the first 3 per-round records are retained...
        assert_eq!(m.activations_per_round, vec![5, 1, 2]);
        // ...and the truncation is loudly marked...
        assert_eq!(m.round_records_dropped, 3);
        // ...while totals, means and maxima stay exact.
        assert_eq!(m.total_activations, 21);
        assert_eq!(m.max_activations_in_round(), 9, "peak survives the cap");
        assert!((m.mean_activations_per_round() - 21.0 / 6.0).abs() < 1e-9);

        // Uncapped accumulators absorbing a capped one inherit the drop
        // marker and the exact peak.
        let mut sum = EdgeMetrics::new();
        sum.absorb_sequential(&m);
        assert_eq!(sum.activations_per_round, vec![5, 1, 2]);
        assert_eq!(sum.round_records_dropped, 3);
        assert_eq!(sum.max_activations_in_round(), 9);
    }

    #[test]
    fn sequential_absorption_adds_and_maxes() {
        let mut a = EdgeMetrics {
            rounds: 2,
            total_activations: 5,
            total_deactivations: 1,
            activations_per_round: vec![2, 3],
            max_activated_edges: 4,
            max_active_edges_total: 9,
            max_activated_degree: 3,
            max_total_degree: 5,
            max_node_activations_in_round: 1,
            ..Default::default()
        };
        let b = EdgeMetrics {
            rounds: 4,
            total_activations: 2,
            total_deactivations: 7,
            activations_per_round: vec![1, 1, 0, 0],
            max_activated_edges: 2,
            max_active_edges_total: 12,
            max_activated_degree: 6,
            max_total_degree: 4,
            max_node_activations_in_round: 3,
            ..Default::default()
        };
        a.absorb_sequential(&b);
        assert_eq!(a.rounds, 6);
        assert_eq!(a.total_activations, 7);
        assert_eq!(a.total_deactivations, 8);
        assert_eq!(a.activations_per_round.len(), 6);
        assert_eq!(a.max_activated_edges, 4);
        assert_eq!(a.max_active_edges_total, 12);
        assert_eq!(a.max_activated_degree, 6);
        assert_eq!(a.max_total_degree, 5);
        assert_eq!(a.max_node_activations_in_round, 3);
    }
}
