//! Deterministic simulation testing (DST): seeded adversarial scheduling,
//! fault injection and round-level invariant checking.
//!
//! The paper's algorithms are proven for a clean, failure-free,
//! round-synchronous world. This module perturbs that world the way a
//! FoundationDB-style simulation harness would — but fully
//! deterministically: a seeded [`Adversary`] driven by
//! [`adn_graph::rng::DetRng`] injects faults *between* committed rounds,
//! and an [`InvariantPolicy`] is evaluated after every round, so any
//! stress failure reproduces bit-for-bit from a single `u64` seed.
//!
//! Supported fault classes ([`FaultEvent`]):
//!
//! * **crash-stop** — a node stops forever; all of its incident edges are
//!   severed and it takes no further part in the execution;
//! * **adversarial edge deletions/insertions** — the environment rewires
//!   the network without respecting the distance-2 rule (the adversary is
//!   strictly more powerful than the nodes);
//! * **round skew** — message-delay perturbation, charged as extra
//!   rounds in which no progress happens;
//! * **churn** — a brand-new node with a fresh UID joins, attached to an
//!   existing node;
//! * **partition/heal** — the environment severs a cut splitting the
//!   live subgraph roughly in half, then re-inserts the surviving cut
//!   edges a configurable number of rounds later (connectivity loss
//!   *and* recovery in one fault).
//!
//! A [`Scenario`] declaratively describes the fault mix (budget, timing
//! window, per-round probability, kind weights, target-selection policy);
//! [`scenarios`] is the registry of named built-in scenarios, mirroring
//! the algorithm registry of `adn_core`. A [`DstState`] couples an
//! [`Adversary`] with the invariant checks and is installed on a
//! [`crate::Network`] via [`crate::Network::install_dst`]; the network
//! calls it after every committed (or idle-charged) round. The harvested
//! [`DstReport`] records the exact fault schedule and every invariant
//! violation, and renders to a stable string so replay equality can be
//! checked byte-for-byte.

use crate::bus::RoundEvent;
use crate::Network;
use crate::SimError;
use adn_graph::rng::DetRng;
use adn_graph::{DynConn, Edge, NodeId};
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::fmt;

/// How the adversary picks the victim node for node-targeted faults
/// (crashes, churn attachment points).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetPolicy {
    /// Uniformly random among eligible nodes.
    Random,
    /// The eligible node with the highest current degree (ties broken by
    /// lowest id) — aims at hubs, e.g. a freshly elected star centre.
    MaxDegree,
    /// The eligible node with the lowest current degree (ties broken by
    /// lowest id) — aims at leaves and stragglers.
    MinDegree,
}

impl TargetPolicy {
    fn pick(&self, rng: &mut DetRng, network: &Network, candidates: &[NodeId]) -> Option<NodeId> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            TargetPolicy::Random => Some(candidates[rng.gen_range(0, candidates.len())]),
            TargetPolicy::MaxDegree => candidates
                .iter()
                .copied()
                .max_by_key(|&u| (network.graph().degree(u), std::cmp::Reverse(u.index()))),
            TargetPolicy::MinDegree => candidates
                .iter()
                .copied()
                .min_by_key(|&u| (network.graph().degree(u), u.index())),
        }
    }
}

impl fmt::Display for TargetPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TargetPolicy::Random => "random",
            TargetPolicy::MaxDegree => "max_degree",
            TargetPolicy::MinDegree => "min_degree",
        };
        f.write_str(s)
    }
}

/// A declarative description of an adversarial environment: which faults
/// may happen, how many, when, and to whom.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Stable scenario name (registry key).
    pub name: String,
    /// Maximum total number of fault events injected over the whole run.
    pub fault_budget: usize,
    /// First round (1-based) at which the adversary may act.
    pub window_start: usize,
    /// Last round at which the adversary may act (`None` = no limit).
    pub window_end: Option<usize>,
    /// Per-round probability of attempting one injection while inside the
    /// window and under budget.
    pub per_round_probability: f64,
    /// Relative weight of crash-stop node failures.
    pub crash_weight: u32,
    /// Relative weight of adversarial edge deletions.
    pub edge_delete_weight: u32,
    /// Relative weight of adversarial edge insertions.
    pub edge_insert_weight: u32,
    /// Relative weight of node joins (churn).
    pub churn_weight: u32,
    /// Relative weight of round-skew (message-delay) perturbations.
    pub skew_weight: u32,
    /// Maximum number of rounds a single skew event may charge.
    pub max_skew: usize,
    /// Relative weight of partition events: the adversary severs a cut
    /// splitting the live subgraph in half, then heals it (re-inserts the
    /// surviving cut edges) `heal_delay` rounds later.
    pub partition_weight: u32,
    /// Rounds between a partition and its heal (at least 1).
    pub heal_delay: usize,
    /// How victim nodes are selected.
    pub target: TargetPolicy,
    /// Asynchronous delivery only: the seeded scheduler picks each
    /// delivery among the first `max(1, reorder_window)` eligible
    /// in-flight messages instead of strict readiness order. `0` (the
    /// default) and `1` both mean no reordering. Inert under the
    /// synchronous engine (no RNG is consumed for it there), so adding
    /// the knob changes no synchronous schedule.
    pub reorder_window: usize,
    /// Asynchronous delivery only: maximum extra per-message delay, in
    /// scheduler steps, drawn uniformly per message. `0` (the default)
    /// delivers at the earliest step. Inert under the synchronous engine.
    pub max_link_delay: usize,
    /// Asynchronous delivery only: give every ordered link `(u, v)` a
    /// fixed base latency derived deterministically from the scheduler
    /// seed (on top of the per-message draw), modelling asymmetric link
    /// latency. Inert under the synchronous engine.
    pub asymmetric_delay: bool,
}

impl Scenario {
    fn base(name: &str) -> Self {
        Scenario {
            name: name.to_string(),
            fault_budget: 0,
            window_start: 1,
            window_end: None,
            per_round_probability: 0.5,
            crash_weight: 0,
            edge_delete_weight: 0,
            edge_insert_weight: 0,
            churn_weight: 0,
            skew_weight: 0,
            max_skew: 3,
            partition_weight: 0,
            heal_delay: 4,
            target: TargetPolicy::Random,
            reorder_window: 0,
            max_link_delay: 0,
            asymmetric_delay: false,
        }
    }

    /// The clean world: no faults at all. Running under this scenario is
    /// equivalent to a plain run, but with the invariant checker armed —
    /// it turns every traced execution into a property check.
    pub fn failure_free() -> Self {
        Scenario {
            per_round_probability: 0.0,
            ..Scenario::base("failure_free")
        }
    }

    /// Crash-stop node failures only.
    pub fn crash_stop() -> Self {
        Scenario {
            fault_budget: 3,
            crash_weight: 1,
            ..Scenario::base("crash_stop")
        }
    }

    /// Adversarial edge rewiring: deletions and insertions, no node
    /// failures.
    pub fn adversarial_edges() -> Self {
        Scenario {
            fault_budget: 6,
            edge_delete_weight: 2,
            edge_insert_weight: 1,
            ..Scenario::base("adversarial_edges")
        }
    }

    /// Churn: fresh nodes join mid-execution.
    pub fn churn() -> Self {
        Scenario {
            fault_budget: 4,
            churn_weight: 1,
            ..Scenario::base("churn")
        }
    }

    /// Message-delay perturbation: rounds are skewed (time passes without
    /// progress), stressing round budgets and phase accounting.
    pub fn round_skew() -> Self {
        Scenario {
            fault_budget: 4,
            skew_weight: 1,
            ..Scenario::base("round_skew")
        }
    }

    /// Partition/heal cycles: the adversary severs a cut that splits the
    /// live subgraph in half, lets the algorithm run partitioned for
    /// `heal_delay` rounds, then re-inserts the surviving cut edges.
    /// Exercises committee state across connectivity loss and recovery:
    /// selection stalls against the missing half, then resumes against
    /// the healed adjacency.
    pub fn partition_heal() -> Self {
        Scenario {
            fault_budget: 2,
            partition_weight: 1,
            heal_delay: 5,
            per_round_probability: 0.35,
            window_start: 2,
            ..Scenario::base("partition_heal")
        }
    }

    /// Everything at once — including partition/heal cycles — aimed at
    /// the highest-degree nodes.
    pub fn mixed() -> Self {
        Scenario {
            fault_budget: 8,
            crash_weight: 1,
            edge_delete_weight: 2,
            edge_insert_weight: 2,
            churn_weight: 1,
            skew_weight: 1,
            partition_weight: 1,
            target: TargetPolicy::MaxDegree,
            ..Scenario::base("mixed")
        }
    }

    /// Asynchronous message reordering only: deliveries are picked among
    /// a window of eligible in-flight messages, so causally unrelated
    /// messages overtake each other. No faults are injected — under the
    /// synchronous engine this behaves exactly like
    /// [`Scenario::failure_free`].
    pub fn async_reorder() -> Self {
        Scenario {
            per_round_probability: 0.0,
            reorder_window: 4,
            ..Scenario::base("async_reorder")
        }
    }

    /// Asynchronous per-link delay: every message draws a uniform extra
    /// delay before becoming deliverable (plus a small reorder window, so
    /// equal-readiness messages still race). Fault-free.
    pub fn async_link_delay() -> Self {
        Scenario {
            per_round_probability: 0.0,
            reorder_window: 2,
            max_link_delay: 3,
            ..Scenario::base("async_link_delay")
        }
    }

    /// Asymmetric link latency: each ordered link carries a fixed base
    /// delay derived from the scheduler seed, so the two directions of a
    /// link (and different links) run at persistently different speeds.
    /// Fault-free.
    pub fn async_asymmetric() -> Self {
        Scenario {
            per_round_probability: 0.0,
            max_link_delay: 2,
            asymmetric_delay: true,
            ..Scenario::base("async_asymmetric")
        }
    }

    /// Churn under asynchrony: the synchronous sweep exercises the churn
    /// faults (nodes joining mid-run); the asynchronous runtime sweep
    /// exercises the delivery knobs (reordering plus per-link delay).
    pub fn async_churn() -> Self {
        Scenario {
            fault_budget: 3,
            churn_weight: 1,
            reorder_window: 2,
            max_link_delay: 2,
            ..Scenario::base("async_churn")
        }
    }

    /// Whether the scenario perturbs asynchronous delivery (any of the
    /// reorder/delay/asymmetry knobs set). The runtime sweep draws its
    /// scenarios from this subset of [`scenarios`].
    pub fn is_async(&self) -> bool {
        self.reorder_window > 1 || self.max_link_delay > 0 || self.asymmetric_delay
    }

    /// Sets the fault budget (builder style).
    pub fn with_fault_budget(mut self, budget: usize) -> Self {
        self.fault_budget = budget;
        self
    }

    /// Sets the injection window (builder style).
    pub fn with_window(mut self, start: usize, end: Option<usize>) -> Self {
        self.window_start = start;
        self.window_end = end;
        self
    }

    /// Sets the target-selection policy (builder style).
    pub fn with_target(mut self, target: TargetPolicy) -> Self {
        self.target = target;
        self
    }

    fn total_weight(&self) -> u32 {
        self.crash_weight
            + self.edge_delete_weight
            + self.edge_insert_weight
            + self.churn_weight
            + self.skew_weight
            + self.partition_weight
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (budget {}, window {}..{}, p {:.2}, target {})",
            self.name,
            self.fault_budget,
            self.window_start,
            self.window_end.map_or("∞".to_string(), |e| e.to_string()),
            self.per_round_probability,
            self.target,
        )
    }
}

/// The registry of built-in scenarios, mirroring the algorithm registry:
/// sweeps iterate `algorithms × scenarios` the same way they iterate
/// `algorithms × graph families`.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::failure_free(),
        Scenario::crash_stop(),
        Scenario::adversarial_edges(),
        Scenario::churn(),
        Scenario::round_skew(),
        Scenario::mixed(),
        Scenario::partition_heal(),
        Scenario::async_reorder(),
        Scenario::async_link_delay(),
        Scenario::async_asymmetric(),
        Scenario::async_churn(),
    ]
}

/// Looks a built-in scenario up by name (case-insensitive).
pub fn find_scenario(name: &str) -> Option<Scenario> {
    scenarios()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// One injected fault, as recorded in the fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Node `node` crash-stopped; `severed` incident edges were removed.
    CrashNode {
        /// The crashed node.
        node: NodeId,
        /// Number of incident edges severed by the crash.
        severed: usize,
    },
    /// The adversary deleted the active edge `{u, v}`.
    DeleteEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// The adversary inserted the edge `{u, v}` (ignoring the distance-2
    /// rule — the environment is more powerful than the nodes).
    InsertEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// A fresh node joined the network, attached to `attached_to`.
    Join {
        /// The new node's id.
        node: NodeId,
        /// The existing node it attached to.
        attached_to: NodeId,
        /// The fresh UID assigned to the new node.
        uid: u64,
    },
    /// Time was skewed forward by `rounds` rounds (message delay).
    Skew {
        /// Number of rounds charged.
        rounds: usize,
    },
    /// The adversary severed `cut`, partitioning the live subgraph; a
    /// matching [`FaultEvent::Heal`] is scheduled `heal_delay` rounds
    /// later.
    Partition {
        /// The severed cut edges, in canonical order.
        cut: Vec<Edge>,
    },
    /// A previously severed cut was re-inserted. Edges whose endpoints
    /// crash-stopped in between (or that reappeared by other means) are
    /// dropped rather than restored.
    Heal {
        /// Number of cut edges re-inserted.
        restored: usize,
        /// Number of cut edges that could not be restored.
        dropped: usize,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::CrashNode { node, severed } => {
                write!(f, "crash node {node} (severed {severed} edges)")
            }
            FaultEvent::DeleteEdge { u, v } => write!(f, "delete edge {{{u}, {v}}}"),
            FaultEvent::InsertEdge { u, v } => write!(f, "insert edge {{{u}, {v}}}"),
            FaultEvent::Join {
                node,
                attached_to,
                uid,
            } => write!(f, "join node {node} (uid {uid}) at {attached_to}"),
            FaultEvent::Skew { rounds } => write!(f, "skew +{rounds} rounds"),
            FaultEvent::Partition { cut } => {
                write!(f, "partition (cut {} edges:", cut.len())?;
                for e in cut {
                    write!(f, " {{{}, {}}}", e.a, e.b)?;
                }
                write!(f, ")")
            }
            FaultEvent::Heal { restored, dropped } => {
                write!(f, "heal cut (restored {restored}, dropped {dropped})")
            }
        }
    }
}

/// A fault event stamped with the round *after* which it was injected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The round boundary at which the fault was applied (the fault is
    /// visible from the beginning of this round).
    pub round: usize,
    /// The injected event.
    pub event: FaultEvent,
}

/// One invariant violation observed at a round boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The round at whose beginning the violation was observed.
    pub round: usize,
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// Which invariants to evaluate at every round boundary. Bounds are
/// normally derived from the running algorithm's `AlgorithmSpec` (with
/// generous slack, since the spec bounds the *final* network while these
/// are checked on every intermediate snapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantPolicy {
    /// The subgraph induced by live (non-crashed) nodes must stay
    /// connected. Faults may legitimately break this — the violation is
    /// recorded, not fatal.
    pub check_connectivity: bool,
    /// Upper bound on any node's activated (non-initial) degree.
    pub max_activated_degree: Option<usize>,
    /// Upper bound on the number of concurrently active edges.
    pub max_active_edges: Option<usize>,
    /// UIDs (including churned-in ones) must stay pairwise distinct.
    pub check_uid_uniqueness: bool,
}

impl Default for InvariantPolicy {
    fn default() -> Self {
        InvariantPolicy {
            check_connectivity: true,
            max_activated_degree: None,
            max_active_edges: None,
            check_uid_uniqueness: true,
        }
    }
}

/// The seeded fault injector. All decisions are drawn from a [`DetRng`],
/// so the whole fault schedule is a pure function of `(scenario, seed)`.
#[derive(Debug, Clone)]
pub struct Adversary {
    scenario: Scenario,
    seed: u64,
    rng: DetRng,
    budget_left: usize,
    /// A cut severed by a partition event, waiting to be healed at the
    /// recorded round boundary.
    pending_heal: Option<PendingHeal>,
}

/// A severed cut scheduled for re-insertion.
#[derive(Debug, Clone)]
struct PendingHeal {
    at_round: usize,
    cut: Vec<Edge>,
}

impl Adversary {
    /// Creates an adversary for `scenario`, fully determined by `seed`.
    pub fn new(scenario: Scenario, seed: u64) -> Self {
        let budget_left = scenario.fault_budget;
        Adversary {
            scenario,
            seed,
            rng: DetRng::seed_from_u64(seed),
            budget_left,
            pending_heal: None,
        }
    }

    /// The seed this adversary was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scenario driving this adversary.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Remaining fault budget.
    pub fn budget_left(&self) -> usize {
        self.budget_left
    }

    /// Attempts one injection at the boundary before `round`. The RNG is
    /// only consumed while budget remains, so the RNG-driven fault
    /// schedule produced with budget `b` is a strict prefix of the
    /// schedule with budget `B > b` — the property the failing-seed
    /// minimizer relies on. The one exception is the deterministic `Heal`
    /// record of a partition: it consumes neither budget nor RNG (it is
    /// the second half of the partition fault), so it may interleave
    /// differently between budgets without desynchronising the RNG stream.
    fn inject(
        &mut self,
        network: &mut Network,
        crashed: &mut BTreeSet<NodeId>,
        uids: &mut Vec<u64>,
        next_uid: u64,
        round: usize,
    ) -> Result<Option<FaultEvent>, SimError> {
        // A due heal fires first, regardless of budget, window or
        // probability: a severed cut is always eventually re-offered.
        if self
            .pending_heal
            .as_ref()
            .is_some_and(|p| round >= p.at_round)
        {
            if let Some(pending) = self.pending_heal.take() {
                return Ok(Some(Self::heal(network, pending.cut)));
            }
        }
        if self.budget_left == 0 || self.scenario.total_weight() == 0 {
            return Ok(None);
        }
        if round < self.scenario.window_start {
            return Ok(None);
        }
        if let Some(end) = self.scenario.window_end {
            if round > end {
                return Ok(None);
            }
        }
        if !self.rng.gen_bool(self.scenario.per_round_probability) {
            return Ok(None);
        }
        let Some(event) = self.pick_event(network, crashed, uids, next_uid, round)? else {
            return Ok(None);
        };
        self.budget_left -= 1;
        Ok(Some(event))
    }

    /// Liveness is derived from the network's crash mask — the single
    /// source of truth the commit path also consults; `DstState.crashed`
    /// only mirrors it as the sorted list for the report.
    fn live_nodes(network: &Network) -> Vec<NodeId> {
        let crashed = network.crashed_mask();
        network
            .graph()
            .nodes()
            .filter(|u| !crashed[u.index()])
            .collect()
    }

    fn pick_event(
        &mut self,
        network: &mut Network,
        crashed: &mut BTreeSet<NodeId>,
        uids: &mut Vec<u64>,
        next_uid: u64,
        round: usize,
    ) -> Result<Option<FaultEvent>, SimError> {
        let s = &self.scenario;
        let total = s.total_weight();
        if total == 0 {
            // Structurally unreachable (inject() declines first), but
            // `gen_range` panics on an empty range — decline instead so a
            // future caller cannot turn a zero-weight scenario into a
            // panic on a fault path.
            return Ok(None);
        }
        let mut x = self.rng.gen_range(0, total as usize) as u32;
        let weights = [
            s.crash_weight,
            s.edge_delete_weight,
            s.edge_insert_weight,
            s.churn_weight,
            s.skew_weight,
            s.partition_weight,
        ];
        let mut kind = 0usize;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                kind = i;
                break;
            }
            x -= w;
        }
        match kind {
            0 => self.crash(network, crashed),
            1 => Ok(self.delete_edge(network)),
            2 => Ok(self.insert_edge(network)),
            3 => Ok(self.join(network, uids, next_uid)),
            4 => Ok(self.skew(network)),
            _ => Ok(self.partition(network, round)),
        }
    }

    fn crash(
        &mut self,
        network: &mut Network,
        crashed: &mut BTreeSet<NodeId>,
    ) -> Result<Option<FaultEvent>, SimError> {
        let live = Self::live_nodes(network);
        if live.len() <= 2 {
            return Ok(None); // keep at least two live nodes alive
        }
        let Some(node) = self.scenario.target.pick(&mut self.rng, network, &live) else {
            return Ok(None);
        };
        // One batched sever (and crash-mark, so same-round staged edges of
        // the victim are dropped at commit) instead of a per-edge loop. A
        // corrupted arena surfaces as a typed error the harness records as
        // a violation — never an abort mid-sweep.
        let severed = network.fault_crash_node(node)?;
        crashed.insert(node);
        Ok(Some(FaultEvent::CrashNode { node, severed }))
    }

    fn delete_edge(&mut self, network: &mut Network) -> Option<FaultEvent> {
        let edges: Vec<Edge> = network.graph().edge_vec();
        if edges.is_empty() {
            return None;
        }
        let e = edges[self.rng.gen_range(0, edges.len())];
        network.fault_remove_edge(e.a, e.b);
        Some(FaultEvent::DeleteEdge { u: e.a, v: e.b })
    }

    fn insert_edge(&mut self, network: &mut Network) -> Option<FaultEvent> {
        let live = Self::live_nodes(network);
        if live.len() < 2 {
            return None;
        }
        // A few deterministic attempts to find a non-adjacent live pair.
        for _ in 0..8 {
            let u = live[self.rng.gen_range(0, live.len())];
            let v = live[self.rng.gen_range(0, live.len())];
            if u != v && !network.graph().has_edge(u, v) {
                network.fault_insert_edge(u, v);
                return Some(FaultEvent::InsertEdge {
                    u: u.min(v),
                    v: u.max(v),
                });
            }
        }
        None
    }

    fn join(
        &mut self,
        network: &mut Network,
        uids: &mut Vec<u64>,
        next_uid: u64,
    ) -> Option<FaultEvent> {
        let live = Self::live_nodes(network);
        let attached_to = self.scenario.target.pick(&mut self.rng, network, &live)?;
        let node = network.fault_add_node();
        network.fault_insert_edge(node, attached_to);
        // `next_uid` is the caller-maintained running maximum plus one —
        // the same value the old per-join O(n) max scan produced.
        debug_assert_eq!(next_uid, uids.iter().copied().max().unwrap_or(0) + 1);
        uids.push(next_uid);
        Some(FaultEvent::Join {
            node,
            attached_to,
            uid: next_uid,
        })
    }

    fn skew(&mut self, network: &mut Network) -> Option<FaultEvent> {
        let max = self.scenario.max_skew.max(1);
        let rounds = self.rng.gen_range(1, max + 1);
        network.fault_skew(rounds);
        Some(FaultEvent::Skew { rounds })
    }

    /// Severs a cut splitting the live subgraph roughly in half: a pivot
    /// is drawn by the target policy, its BFS ball grows to half the live
    /// nodes (deterministic sorted-neighbour order), and every edge
    /// crossing the ball boundary is deleted. The cut is scheduled for
    /// healing `heal_delay` rounds later. Declined (no budget consumed)
    /// while a previous cut is still open, or when there is nothing to
    /// cut.
    fn partition(&mut self, network: &mut Network, round: usize) -> Option<FaultEvent> {
        if self.pending_heal.is_some() {
            return None; // one open cut at a time
        }
        let live = Self::live_nodes(network);
        if live.len() < 4 {
            return None;
        }
        let pivot = self.scenario.target.pick(&mut self.rng, network, &live)?;
        let crashed = network.crashed_mask();
        let side_target = live.len().div_ceil(2);
        let mut in_side = vec![false; network.node_count()];
        let mut queue = std::collections::VecDeque::from([pivot]);
        in_side[pivot.index()] = true;
        let mut side_size = 1usize;
        while let Some(u) = queue.pop_front() {
            if side_size >= side_target {
                break;
            }
            for &v in network.graph().neighbors_slice(u) {
                if side_size >= side_target {
                    break;
                }
                if !in_side[v.index()] && !crashed[v.index()] {
                    in_side[v.index()] = true;
                    side_size += 1;
                    queue.push_back(v);
                }
            }
        }
        let cut: Vec<Edge> = network
            .graph()
            .edges()
            .filter(|e| in_side[e.a.index()] != in_side[e.b.index()])
            .collect();
        if cut.is_empty() {
            return None; // already partitioned (or the side swallowed everyone)
        }
        for e in &cut {
            network.fault_remove_edge(e.a, e.b);
        }
        self.pending_heal = Some(PendingHeal {
            at_round: round + self.scenario.heal_delay.max(1),
            cut: cut.clone(),
        });
        Some(FaultEvent::Partition { cut })
    }

    /// Re-inserts a severed cut. Edges touching a node that crash-stopped
    /// in the meantime stay severed (a crashed node never comes back), and
    /// edges that reappeared by other means (adversarial insertions) count
    /// as dropped too.
    fn heal(network: &mut Network, cut: Vec<Edge>) -> FaultEvent {
        let mut restored = 0usize;
        let mut dropped = 0usize;
        for e in &cut {
            let crashed = network.crashed_mask();
            if !crashed[e.a.index()] && !crashed[e.b.index()] && network.fault_insert_edge(e.a, e.b)
            {
                restored += 1;
            } else {
                dropped += 1;
            }
        }
        FaultEvent::Heal { restored, dropped }
    }
}

/// The per-network DST state: adversary, invariant policy, fault log and
/// violation log. Installed with [`crate::Network::install_dst`]; the
/// network calls [`DstState::on_round`] after every committed or
/// idle-charged round.
#[derive(Debug, Clone)]
pub struct DstState {
    adversary: Adversary,
    policy: InvariantPolicy,
    /// UID values by node index, kept up to date across churn so UID
    /// uniqueness can be checked even for joined nodes.
    uids: Vec<u64>,
    /// Incrementally maintained duplicate count of `uids`: seeded at
    /// construction, bumped per join on a failed `uid_seen` insert —
    /// never recomputed by sorting.
    uid_dups: usize,
    /// The distinct UID values seen so far (the duplicate detector).
    uid_seen: BTreeSet<u64>,
    /// The UID the next churn join hands out: the running maximum plus
    /// one, maintained here so a join costs O(log n) instead of an O(n)
    /// max scan. Joins only ever raise the maximum, so this stays exact.
    uid_next: u64,
    crashed: BTreeSet<NodeId>,
    log: Vec<FaultRecord>,
    violations: Vec<Violation>,
    rounds_checked: usize,
    /// Incremental connectivity over the live subgraph, fed the round's
    /// topology events; `None` until [`DstState::attach`] (or when
    /// connectivity checking is off / from-scratch mode is forced).
    conn: Option<DynConn>,
    /// Nodes currently over the activated-degree bound, updated from the
    /// endpoints of the round's edge events. `first()` is the lowest
    /// offending id — the same node the old ascending full scan reported.
    over_degree: BTreeSet<NodeId>,
    /// Whether `over_degree` is being maintained (a degree bound is set
    /// and from-scratch mode is not forced).
    degree_tracked: bool,
    /// Drain scratch for the network's DST bus tap (reused, never
    /// reallocated in steady state).
    events: Vec<RoundEvent>,
    /// Reusable scratch for the BFS fallback and the debug-assert oracle
    /// (`live_subgraph_connected_with`): visited mask + queue, hoisted so
    /// neither allocates per round.
    bfs_seen: Vec<bool>,
    bfs_queue: VecDeque<NodeId>,
    /// Forces every invariant back onto the from-scratch O(n) paths
    /// (full BFS, full degree scan). Benchmark comparison knob.
    from_scratch: bool,
}

/// Number of duplicated UID values in `uids` — the from-scratch
/// reference for the incrementally maintained `uid_dups`, kept as the
/// debug-assert differential oracle.
#[cfg(debug_assertions)]
fn count_uid_duplicates(uids: &[u64]) -> usize {
    let mut sorted = uids.to_vec();
    sorted.sort_unstable();
    let before = sorted.len();
    sorted.dedup();
    before - sorted.len()
}

impl DstState {
    /// Couples an adversary with an invariant policy. `uids` are the UID
    /// values by node index of the network the state will be installed on
    /// (pass an empty vector to skip UID tracking).
    pub fn new(adversary: Adversary, policy: InvariantPolicy, uids: Vec<u64>) -> Self {
        let mut uid_seen = BTreeSet::new();
        let mut uid_dups = 0usize;
        for &uid in &uids {
            if !uid_seen.insert(uid) {
                uid_dups += 1;
            }
        }
        let uid_next = uids.iter().copied().max().unwrap_or(0) + 1;
        DstState {
            adversary,
            policy,
            uids,
            uid_dups,
            uid_seen,
            uid_next,
            crashed: BTreeSet::new(),
            log: Vec::new(),
            violations: Vec::new(),
            rounds_checked: 0,
            conn: None,
            over_degree: BTreeSet::new(),
            degree_tracked: false,
            events: Vec::new(),
            bfs_seen: Vec::new(),
            bfs_queue: VecDeque::new(),
            from_scratch: false,
        }
    }

    /// Forces every invariant back onto the from-scratch O(n) paths —
    /// full BFS for connectivity, full scan for the degree bound — by
    /// skipping the incremental structures at [`DstState::attach`] time.
    /// Benchmark comparison knob; call before the state is installed.
    pub fn set_from_scratch_checks(&mut self, enabled: bool) {
        self.from_scratch = enabled;
    }

    /// Builds the incremental invariant state against the network the
    /// state is being installed on. Called by
    /// [`crate::Network::install_dst`], which also arms the DST tap of
    /// the network's round-event bus that keeps these structures fed.
    pub(crate) fn attach(&mut self, network: &Network) {
        self.conn = None;
        self.over_degree.clear();
        self.degree_tracked = false;
        if self.from_scratch {
            return;
        }
        let graph = network.graph();
        if self.policy.check_connectivity {
            self.conn = Some(DynConn::from_graph_with_crashed(
                graph,
                network.crashed_mask(),
            ));
        }
        if let Some(bound) = self.policy.max_activated_degree {
            self.degree_tracked = true;
            for u in graph.nodes() {
                if network.activated_degree(u) > bound {
                    self.over_degree.insert(u);
                }
            }
        }
    }

    /// The nodes crashed so far.
    pub fn crashed(&self) -> &BTreeSet<NodeId> {
        &self.crashed
    }

    /// The fault schedule injected so far.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// The invariant violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Called by the network at each round boundary: first the adversary
    /// gets a chance to inject, then the invariants are evaluated on the
    /// resulting snapshot.
    pub(crate) fn on_round(&mut self, network: &mut Network) {
        let round = network.round();
        let next_uid = self.uid_next;
        match self
            .adversary
            .inject(network, &mut self.crashed, &mut self.uids, next_uid, round)
        {
            Ok(Some(event)) => {
                if let FaultEvent::Join { uid, .. } = &event {
                    if !self.uid_seen.insert(*uid) {
                        self.uid_dups += 1;
                    }
                    self.uid_next = *uid + 1;
                }
                self.log.push(FaultRecord { round, event });
            }
            Ok(None) => {}
            // Fault application hit a broken graph invariant (e.g. a
            // crash sever landing on a corrupted arena). Recorded as a
            // violation with the full detail — the sweep reports the
            // reaching seed instead of aborting.
            Err(e) => self.violations.push(Violation {
                round,
                invariant: "fault-application",
                detail: e.to_string(),
            }),
        }
        self.apply_events(network);
        self.check_invariants(network, round);
    }

    /// Drains the round's topology events from the network and replays
    /// them into the incremental structures. Replay happens against the
    /// post-round snapshot — safe for the final verdict, because a
    /// repair never steals an edge the batch later removes (it is gone
    /// from the snapshot) and never unions across components the batch
    /// has not joined yet (the union-find root guard; the insert event
    /// that joins them is itself in the batch).
    fn apply_events(&mut self, network: &mut Network) {
        self.events.clear();
        network.drain_dst_events(&mut self.events);
        if self.events.is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.events);
        let graph = network.graph();
        let degree_bound = if self.degree_tracked {
            self.policy.max_activated_degree
        } else {
            None
        };
        for &event in &events {
            match event {
                RoundEvent::Edge { edge, added, .. } => {
                    if let Some(conn) = self.conn.as_mut() {
                        if added {
                            conn.insert_edge(edge.a, edge.b);
                        } else {
                            conn.remove_edge(edge.a, edge.b, graph);
                        }
                    }
                    if let Some(bound) = degree_bound {
                        // Membership is recomputed from the *final*
                        // per-round degree, so replay order within the
                        // batch cannot matter.
                        for u in [edge.a, edge.b] {
                            if network.activated_degree(u) > bound {
                                self.over_degree.insert(u);
                            } else {
                                self.over_degree.remove(&u);
                            }
                        }
                    }
                }
                RoundEvent::NodeJoined(_) => {
                    if let Some(conn) = self.conn.as_mut() {
                        conn.add_node();
                    }
                }
                RoundEvent::NodeCrashed(node) => {
                    if let Some(conn) = self.conn.as_mut() {
                        conn.crash(node, graph);
                    }
                    if degree_bound.is_some() {
                        self.over_degree.remove(&node);
                    }
                }
                // Round boundaries and idle charges carry no topology.
                RoundEvent::RoundCommitted { .. } | RoundEvent::IdleRound => {}
            }
        }
        self.events = events;
        debug_assert!(self
            .conn
            .as_ref()
            .is_none_or(|c| c.node_count() == graph.node_count()));
    }

    fn check_invariants(&mut self, network: &Network, round: usize) {
        self.rounds_checked += 1;
        let graph = network.graph();
        if self.policy.check_connectivity {
            // O(1) verdict off the incremental forest; the BFS stays on
            // as a differential oracle in debug builds (and as the
            // from-scratch fallback when no forest is attached).
            let connected = match &self.conn {
                Some(conn) => conn.is_connected(),
                None => {
                    live_subgraph_connected_with(network, &mut self.bfs_seen, &mut self.bfs_queue)
                }
            };
            #[cfg(debug_assertions)]
            if self.conn.is_some() {
                let oracle =
                    live_subgraph_connected_with(network, &mut self.bfs_seen, &mut self.bfs_queue);
                assert_eq!(
                    connected, oracle,
                    "dynamic connectivity diverged from the BFS oracle at round {round}"
                );
            }
            if !connected {
                self.violations.push(Violation {
                    round,
                    invariant: "connectivity",
                    detail: format!(
                        "live subgraph disconnected ({} live nodes)",
                        graph.node_count() - self.crashed.len()
                    ),
                });
            }
        }
        if let Some(bound) = self.policy.max_activated_degree {
            // The over-bound set is maintained from the round's edge
            // events; its minimum is the node the old ascending full
            // scan reported first.
            let over = if self.degree_tracked {
                self.over_degree.iter().next().copied()
            } else {
                graph.nodes().find(|&u| network.activated_degree(u) > bound)
            };
            #[cfg(debug_assertions)]
            if self.degree_tracked {
                let oracle = graph.nodes().find(|&u| network.activated_degree(u) > bound);
                assert_eq!(
                    over, oracle,
                    "over-degree set diverged from the full scan at round {round}"
                );
            }
            if let Some(u) = over {
                let d = network.activated_degree(u);
                self.violations.push(Violation {
                    round,
                    invariant: "activated_degree",
                    detail: format!("node {u} has activated degree {d} > bound {bound}"),
                });
            }
        }
        if let Some(bound) = self.policy.max_active_edges {
            let m = graph.edge_count();
            if m > bound {
                self.violations.push(Violation {
                    round,
                    invariant: "edge_budget",
                    detail: format!("{m} active edges > bound {bound}"),
                });
            }
        }
        if self.policy.check_uid_uniqueness && !self.uids.is_empty() {
            #[cfg(debug_assertions)]
            assert_eq!(
                self.uid_dups,
                count_uid_duplicates(&self.uids),
                "incremental UID duplicate count diverged at round {round}"
            );
            if self.uid_dups > 0 {
                self.violations.push(Violation {
                    round,
                    invariant: "uid_uniqueness",
                    detail: format!("{} duplicate UIDs", self.uid_dups),
                });
            }
        }
    }

    /// Finalizes this state into a report.
    pub fn into_report(self) -> DstReport {
        DstReport {
            scenario: self.adversary.scenario.name.clone(),
            seed: self.adversary.seed,
            rounds_checked: self.rounds_checked,
            crashed: self.crashed.into_iter().collect(),
            faults: self.log,
            violations: self.violations,
        }
    }
}

/// BFS over the live (non-crashed) induced subgraph: true iff every live
/// node is reachable from the first live node. Crashed nodes are isolated
/// by construction, so plain connectivity would always be false after the
/// first crash; this is the meaningful residual property.
///
/// Crash membership comes from the network's flat crash mask (one index
/// per probe) and neighbourhoods are scanned as sorted slices — the same
/// columnar representation `commit_round` uses.
#[cfg_attr(not(test), allow(dead_code))]
fn live_subgraph_connected(network: &Network) -> bool {
    live_subgraph_connected_with(network, &mut Vec::new(), &mut VecDeque::new())
}

/// [`live_subgraph_connected`] against caller-provided scratch (visited
/// mask + BFS queue), so the per-round oracle/fallback path reuses one
/// allocation for the whole run instead of allocating per call.
fn live_subgraph_connected_with(
    network: &Network,
    seen: &mut Vec<bool>,
    queue: &mut VecDeque<NodeId>,
) -> bool {
    let graph = network.graph();
    let crashed = network.crashed_mask();
    let n = graph.node_count();
    let live_count = n - crashed.iter().filter(|&&c| c).count();
    if live_count <= 1 {
        return true;
    }
    let start = match graph.nodes().find(|u| !crashed[u.index()]) {
        Some(u) => u,
        None => return true,
    };
    seen.clear();
    seen.resize(n, false);
    queue.clear();
    seen[start.index()] = true;
    queue.push_back(start);
    let mut reached = 1usize;
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors_slice(u) {
            if !seen[v.index()] && !crashed[v.index()] {
                seen[v.index()] = true;
                reached += 1;
                queue.push_back(v);
            }
        }
    }
    reached == live_count
}

/// The harvested result of a DST-instrumented execution: the exact fault
/// schedule, every invariant violation, and the `(scenario, seed)` pair
/// that reproduces both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DstReport {
    /// Name of the scenario that drove the adversary.
    pub scenario: String,
    /// The adversary seed; together with the scenario it determines the
    /// whole fault schedule.
    pub seed: u64,
    /// Number of round boundaries at which invariants were evaluated.
    pub rounds_checked: usize,
    /// Nodes crashed over the run, ascending.
    pub crashed: Vec<NodeId>,
    /// The injected fault schedule, in order.
    pub faults: Vec<FaultRecord>,
    /// All recorded invariant violations, in order.
    pub violations: Vec<Violation>,
}

impl DstReport {
    /// True when no faults were injected and no invariants were violated.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty() && self.violations.is_empty()
    }

    /// Renders the report to a stable, line-oriented string. Two runs of
    /// the same `(scenario, seed)` must produce byte-identical renders —
    /// the replay machinery compares exactly this.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "scenario={} seed={} rounds_checked={}\n",
            self.scenario, self.seed, self.rounds_checked
        ));
        for f in &self.faults {
            s.push_str(&format!("fault @r{}: {}\n", f.round, f.event));
        }
        for v in &self.violations {
            s.push_str(&format!(
                "violation @r{}: {} — {}\n",
                v.round, v.invariant, v.detail
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::generators;

    fn armed_network(n: usize, scenario: Scenario, seed: u64) -> Network {
        let mut net = Network::new(generators::line(n));
        let uids = (1..=n as u64).collect();
        net.install_dst(DstState::new(
            Adversary::new(scenario, seed),
            InvariantPolicy::default(),
            uids,
        ));
        net
    }

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names: Vec<String> = scenarios().iter().map(|s| s.name.clone()).collect();
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
        for name in &names {
            assert!(find_scenario(name).is_some(), "{name}");
            assert!(find_scenario(&name.to_uppercase()).is_some(), "{name}");
        }
        assert!(find_scenario("no_such_scenario").is_none());
    }

    #[test]
    fn failure_free_never_injects() {
        let mut net = armed_network(8, Scenario::failure_free(), 7);
        for _ in 0..20 {
            net.commit_round();
        }
        let report = net.take_dst_report().unwrap();
        assert!(report.faults.is_empty());
        assert!(report.violations.is_empty());
        assert_eq!(report.rounds_checked, 20);
        assert!(report.is_clean());
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = armed_network(12, Scenario::mixed().with_fault_budget(6), seed);
            for _ in 0..30 {
                net.commit_round();
            }
            net.take_dst_report().unwrap()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert!(
            !a.faults.is_empty(),
            "mixed scenario should fire in 30 rounds"
        );
        let c = run(43);
        assert_ne!(
            a.render(),
            c.render(),
            "different seeds, different schedule"
        );
    }

    #[test]
    fn budget_prefix_property_holds() {
        // The schedule with budget b is a prefix of the schedule with a
        // larger budget (the minimizer depends on this).
        let run = |budget: usize| {
            let mut net = armed_network(
                16,
                Scenario::adversarial_edges().with_fault_budget(budget),
                9,
            );
            for _ in 0..40 {
                net.commit_round();
            }
            net.take_dst_report().unwrap().faults
        };
        let small = run(2);
        let big = run(6);
        assert_eq!(small.len(), 2);
        assert!(big.len() >= small.len());
        assert_eq!(&big[..small.len()], &small[..]);
    }

    #[test]
    fn crash_isolates_node_and_connectivity_violation_is_recorded() {
        // Crashing an interior node of a line disconnects the live rest.
        let scenario = Scenario {
            per_round_probability: 1.0,
            ..Scenario::crash_stop().with_fault_budget(1)
        };
        let mut net = armed_network(6, scenario, 5);
        net.commit_round();
        let crashed: Vec<NodeId> = net.dst_state().unwrap().crashed().iter().copied().collect();
        assert_eq!(crashed.len(), 1);
        assert_eq!(net.graph().degree(crashed[0]), 0);
        let report = net.take_dst_report().unwrap();
        assert_eq!(report.faults.len(), 1);
        // Interior crash on a line ⇒ disconnection; endpoint crash keeps
        // the rest connected. Either way the record agrees with the graph.
        let interior = !matches!(crashed[0].index(), 0 | 5);
        assert_eq!(
            report
                .violations
                .iter()
                .any(|v| v.invariant == "connectivity"),
            interior,
            "{report:?}"
        );
    }

    #[test]
    fn churn_grows_the_network_with_fresh_uids() {
        let scenario = Scenario {
            per_round_probability: 1.0,
            ..Scenario::churn().with_fault_budget(3)
        };
        let mut net = armed_network(5, scenario, 11);
        for _ in 0..3 {
            net.commit_round();
        }
        assert_eq!(net.node_count(), 8);
        let report = net.take_dst_report().unwrap();
        assert_eq!(report.faults.len(), 3);
        let uids: Vec<u64> = report
            .faults
            .iter()
            .filter_map(|f| match f.event {
                FaultEvent::Join { uid, .. } => Some(uid),
                _ => None,
            })
            .collect();
        assert_eq!(uids, vec![6, 7, 8], "fresh UIDs extend the namespace");
        assert!(
            !report
                .violations
                .iter()
                .any(|v| v.invariant == "uid_uniqueness"),
            "fresh UIDs stay unique"
        );
    }

    #[test]
    fn skew_charges_rounds_without_operations() {
        let scenario = Scenario {
            per_round_probability: 1.0,
            max_skew: 1,
            ..Scenario::round_skew().with_fault_budget(2)
        };
        let mut net = armed_network(4, scenario, 3);
        net.commit_round();
        // 1 committed round + 1 skewed round.
        assert_eq!(net.metrics().rounds, 2);
        assert_eq!(net.metrics().total_activations, 0);
        let report = net.take_dst_report().unwrap();
        assert!(matches!(
            report.faults[0].event,
            FaultEvent::Skew { rounds: 1 }
        ));
    }

    #[test]
    fn partition_disconnects_and_heal_reconnects() {
        let scenario = Scenario {
            per_round_probability: 1.0,
            window_start: 1,
            heal_delay: 3,
            ..Scenario::partition_heal().with_fault_budget(1)
        };
        let mut net = armed_network(10, scenario, 21);
        let mut disconnected_rounds = 0usize;
        for _ in 0..12 {
            net.commit_round();
            if !super::live_subgraph_connected(&net) {
                disconnected_rounds += 1;
            }
        }
        assert!(
            disconnected_rounds >= 2,
            "the cut must stay open for heal_delay rounds"
        );
        assert!(
            super::live_subgraph_connected(&net),
            "the heal must restore connectivity"
        );
        let report = net.take_dst_report().unwrap();
        assert_eq!(report.faults.len(), 2, "{}", report.render());
        let FaultEvent::Partition { cut } = &report.faults[0].event else {
            panic!("first fault must be the partition: {}", report.render());
        };
        assert!(!cut.is_empty());
        let FaultEvent::Heal { restored, dropped } = report.faults[1].event else {
            panic!("second fault must be the heal: {}", report.render());
        };
        assert_eq!(restored, cut.len(), "no crashes: the whole cut restores");
        assert_eq!(dropped, 0);
        assert_eq!(
            report.faults[1].round - report.faults[0].round,
            3,
            "heal fires heal_delay rounds after the partition"
        );
        // The connectivity invariant recorded the partitioned rounds.
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "connectivity"));
    }

    #[test]
    fn partition_heal_schedule_is_deterministic() {
        let run = |seed: u64| {
            let mut net = armed_network(14, Scenario::partition_heal(), seed);
            for _ in 0..40 {
                net.commit_round();
            }
            net.take_dst_report().unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert!(
            a.faults
                .iter()
                .any(|f| matches!(f.event, FaultEvent::Partition { .. })),
            "partition_heal should fire within 40 rounds: {}",
            a.render()
        );
    }

    #[test]
    fn starved_fault_pools_decline_instead_of_panicking() {
        // Every targeted pool can run dry under enough pressure: edges to
        // delete run out, the live-node floor stops crashes, a zero total
        // weight offers nothing to draw. Each starved path must decline
        // (returning no event, consuming no budget) — never panic.
        //
        // Edge deletions on a 3-node line: only 2 edges exist; with the
        // budget far above that, every later round hits the empty pool.
        let delete_only = Scenario {
            per_round_probability: 1.0,
            edge_delete_weight: 1,
            edge_insert_weight: 0,
            ..Scenario::adversarial_edges().with_fault_budget(20)
        };
        for seed in 0..8u64 {
            let mut net = armed_network(3, delete_only.clone(), seed);
            for _ in 0..25 {
                net.commit_round();
            }
            let report = net.take_dst_report().unwrap();
            assert!(
                report.faults.len() <= 2,
                "only 2 edges existed to delete:\n{}",
                report.render()
            );
            assert_eq!(net.graph().edge_count(), 0, "seed {seed}");
        }
        // Crash-stop floor: at most n - 2 nodes may ever crash.
        let crash_all = Scenario {
            per_round_probability: 1.0,
            ..Scenario::crash_stop().with_fault_budget(20)
        };
        for seed in 0..8u64 {
            let mut net = armed_network(5, crash_all.clone(), seed);
            for _ in 0..25 {
                net.commit_round();
            }
            let report = net.take_dst_report().unwrap();
            assert!(
                report.crashed.len() <= 3,
                "the live floor keeps two nodes alive:\n{}",
                report.render()
            );
        }
        // Zero total weight with budget left: nothing to draw, no panic.
        let zero_weight = Scenario::base("zero_weight").with_fault_budget(5);
        let mut net = armed_network(4, zero_weight, 9);
        for _ in 0..10 {
            net.commit_round();
        }
        assert!(net.take_dst_report().unwrap().faults.is_empty());
    }

    #[test]
    fn heavy_churn_crash_mix_is_panic_free_and_deterministic() {
        // Regression guard for the fault-path audit: a saturating mix of
        // churn, crashes, rewiring, skew and partitions on a tiny network
        // exercises every pool-starvation branch at once. Completing (and
        // replaying byte-identically) is the assertion.
        let scenario = Scenario {
            per_round_probability: 1.0,
            crash_weight: 2,
            churn_weight: 3,
            edge_delete_weight: 2,
            edge_insert_weight: 1,
            skew_weight: 1,
            partition_weight: 1,
            target: TargetPolicy::MaxDegree,
            ..Scenario::base("heavy_mix").with_fault_budget(40)
        };
        for seed in 0..10u64 {
            let run = |seed: u64| {
                let mut net = armed_network(6, scenario.clone(), seed);
                for _ in 0..60 {
                    net.commit_round();
                }
                net.take_dst_report().unwrap()
            };
            let report = run(seed);
            let budgeted = report
                .faults
                .iter()
                .filter(|f| !matches!(f.event, FaultEvent::Heal { .. }))
                .count();
            assert!(budgeted <= 40, "heals are budget-free; the rest are not");
            assert_eq!(report.render(), run(seed).render(), "seed {seed}");
        }
    }

    #[test]
    fn window_gates_injection() {
        let scenario = Scenario {
            per_round_probability: 1.0,
            ..Scenario::adversarial_edges()
                .with_fault_budget(100)
                .with_window(5, Some(7))
        };
        let mut net = armed_network(10, scenario, 1);
        for _ in 0..12 {
            net.commit_round();
        }
        let report = net.take_dst_report().unwrap();
        assert!(!report.faults.is_empty());
        assert!(
            report.faults.iter().all(|f| (5..=7).contains(&f.round)),
            "{report:?}"
        );
    }

    #[test]
    fn target_policies_pick_extremes() {
        let mut rng = DetRng::seed_from_u64(0);
        let net = Network::new(generators::star(6)); // centre 0 has degree 5
        let candidates: Vec<NodeId> = net.graph().nodes().collect();
        assert_eq!(
            TargetPolicy::MaxDegree.pick(&mut rng, &net, &candidates),
            Some(NodeId(0))
        );
        assert_eq!(
            TargetPolicy::MinDegree.pick(&mut rng, &net, &candidates),
            Some(NodeId(1))
        );
        assert_eq!(TargetPolicy::Random.pick(&mut rng, &net, &[]), None);
    }
}
