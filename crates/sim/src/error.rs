//! Error types for the simulator.

use adn_graph::NodeId;
use std::error::Error;
use std::fmt;

/// Errors raised by the simulator when an algorithm violates the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A node index was outside the vertex set.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the network.
        n: usize,
    },
    /// A self-loop activation or deactivation was requested.
    SelfLoop {
        /// The node involved.
        node: NodeId,
    },
    /// An activation of `{u, v}` was requested although `u` and `v` are
    /// neither adjacent nor at distance 2 at the beginning of the round —
    /// i.e. the distance-2 (potential neighbour) rule of Section 2.1 is
    /// violated.
    NotPotentialNeighbors {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
        /// The round in which the activation was attempted.
        round: usize,
    },
    /// The engine exceeded the configured maximum number of rounds without
    /// all nodes terminating.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// The underlying graph reported a broken internal invariant while a
    /// simulator operation (commit, fault application) was mutating it.
    /// Always a bug — typed so a seeded sweep records the reaching case
    /// instead of aborting.
    BrokenInvariant {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for a network on {n} nodes")
            }
            SimError::SelfLoop { node } => write!(f, "self-loop requested on {node}"),
            SimError::NotPotentialNeighbors { u, v, round } => write!(
                f,
                "activation of ({u}, {v}) in round {round} violates the distance-2 rule"
            ),
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "execution exceeded the round limit of {limit}")
            }
            SimError::BrokenInvariant { detail } => {
                write!(f, "simulator invariant broken: {detail}")
            }
        }
    }
}

impl From<adn_graph::GraphError> for SimError {
    /// Graph-level invariant breakage surfaces as the simulator's own
    /// [`SimError::BrokenInvariant`] (any other graph error reaching this
    /// conversion is equally a bug in the simulator's bookkeeping — the
    /// validated entry points reject bad input before touching the graph).
    fn from(e: adn_graph::GraphError) -> Self {
        SimError::BrokenInvariant {
            detail: e.to_string(),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SimError::NotPotentialNeighbors {
            u: NodeId(1),
            v: NodeId(5),
            round: 3,
        };
        assert!(e.to_string().contains("distance-2"));
        assert!(e.to_string().contains("round 3"));
        assert!(SimError::RoundLimitExceeded { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(SimError::SelfLoop { node: NodeId(2) }
            .to_string()
            .contains("v2"));
        assert!(SimError::NodeOutOfRange {
            node: NodeId(9),
            n: 4
        }
        .to_string()
        .contains("v9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
