//! Driver for strictly local node programs.
//!
//! A [`NodeProgram`] is a per-node state machine that only ever sees its
//! own state, its current neighbourhood (`N_1`), its potential
//! neighbourhood (`N_2`) and the messages delivered to it — exactly the
//! information the model of Section 2.1 grants a node. The [`run_programs`]
//! driver executes one program instance per node in lock step and applies
//! their edge decisions through the validated [`Network`] API.

use crate::{ExecutionReport, Network, SimError};
use adn_graph::{NodeId, Uid, UidMap};

/// A node's read-only view of the world at the beginning of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeView {
    /// This node's index.
    pub id: NodeId,
    /// This node's UID.
    pub uid: Uid,
    /// The current round (1-based).
    pub round: usize,
    /// Number of nodes in the network. The basic model does not assume
    /// knowledge of `n`, but some algorithms in the paper do
    /// (GraphToThinWreath explicitly, flooding with termination detection
    /// implicitly); programs that must not use it simply ignore it.
    pub n: usize,
    /// Current neighbours (`N_1`), ascending.
    pub neighbors: Vec<NodeId>,
    /// Potential neighbours (`N_2`, nodes at distance exactly 2), ascending.
    pub potential_neighbors: Vec<NodeId>,
}

/// Edge decisions produced by a node in a round.
#[derive(Debug, Clone, Default)]
pub struct NodeDecision {
    /// Potential neighbours to activate an edge with.
    pub activate: Vec<NodeId>,
    /// Current neighbours to deactivate the edge with.
    pub deactivate: Vec<NodeId>,
}

impl NodeDecision {
    /// A decision that performs no edge operations.
    pub fn none() -> Self {
        NodeDecision::default()
    }
}

/// A strictly local, synchronous node program.
///
/// The driver calls [`NodeProgram::send`] for every node (based on the
/// snapshot at the beginning of the round), delivers the messages, then
/// calls [`NodeProgram::step`] for every node with its inbox; the returned
/// decisions are validated and applied, the round is committed, and the
/// execution stops once every node reports [`NodeProgram::has_terminated`].
pub trait NodeProgram {
    /// The message type exchanged between neighbours.
    type Message: Clone + std::fmt::Debug;

    /// Compose the messages to send this round, addressed to current
    /// neighbours. Messages addressed to non-neighbours are a programming
    /// error and abort the execution.
    fn send(&mut self, view: &NodeView) -> Vec<(NodeId, Self::Message)>;

    /// Process the inbox (pairs of sender and message) and return the edge
    /// operations to perform this round.
    fn step(&mut self, view: &NodeView, inbox: &[(NodeId, Self::Message)]) -> NodeDecision;

    /// Whether this node has terminated. Terminated nodes are still polled
    /// (their `send`/`step` are expected to be no-ops) so that the driver's
    /// lock-step structure is preserved.
    fn has_terminated(&self) -> bool;
}

/// Configuration for [`run_programs`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Abort with [`SimError::RoundLimitExceeded`] if the programs have not
    /// all terminated after this many rounds.
    pub max_rounds: usize,
    /// Record a per-round [`RoundStats`] trace in the report.
    pub record_trace: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 100_000,
            record_trace: false,
        }
    }
}

fn build_view(network: &Network, uids: &UidMap, id: NodeId) -> NodeView {
    let graph = network.graph();
    NodeView {
        id,
        uid: uids.uid(id),
        round: network.round(),
        n: network.node_count(),
        neighbors: graph.neighbors_slice(id).to_vec(),
        potential_neighbors: graph.potential_neighbors(id),
    }
}

/// Incrementally maintained [`NodeView`]s for the first `count` nodes of a
/// network (the nodes that run programs; churned-in nodes beyond them are
/// passive and need no view).
///
/// The engine used to rebuild every view from scratch each round — an
/// `O(n)` pass of neighbour copies and `N_2` computations even in rounds
/// where nothing changed. The cache instead consumes the engine tap of
/// the network's round-event bus ([`Network::take_changed_nodes`]) and
/// recomputes
/// only the views whose contents can actually have moved: a node's `N_1`
/// changes only if one of its incident edges changed, and its `N_2` only
/// if an edge within distance one of it changed — so the affected set is
/// the changed endpoints plus their current neighbours.
///
/// The per-view `round`/`n` scalars are refreshed for everyone each round
/// by [`ViewCache::begin_round`] (two word writes per node), so the cached
/// views are field-for-field identical to freshly built ones — the
/// differential suite pins this under random committed rounds and
/// adversarial faults.
#[derive(Debug)]
pub struct ViewCache {
    views: Vec<NodeView>,
    /// Scratch mask for the affected set (reused across rounds).
    affected: Vec<bool>,
}

impl ViewCache {
    /// Builds the initial views of nodes `0..count` from the network's
    /// current snapshot.
    pub fn new(network: &Network, uids: &UidMap, count: usize) -> Self {
        ViewCache {
            views: (0..count)
                .map(|i| build_view(network, uids, NodeId(i)))
                .collect(),
            affected: Vec::new(),
        }
    }

    /// The maintained views (index `i` is node `i`).
    pub fn views(&self) -> &[NodeView] {
        &self.views
    }

    /// Refreshes the per-round scalars (`round`, current `n`) on every
    /// view. Call at the top of each engine round.
    pub fn begin_round(&mut self, network: &Network) {
        let round = network.round();
        let n = network.node_count();
        for view in &mut self.views {
            view.round = round;
            view.n = n;
        }
    }

    /// Recomputes the views invalidated by the drained change set
    /// `changed` (sorted endpoints of every edge mutation since the last
    /// drain): the endpoints themselves and their *current* neighbours. A
    /// former neighbour severed this round is itself an endpoint of the
    /// severed edge, so the union covers every node whose `N_1` or `N_2`
    /// can have changed.
    pub fn refresh_changed(&mut self, network: &Network, uids: &UidMap, changed: &[NodeId]) {
        if changed.is_empty() {
            return;
        }
        let count = self.views.len();
        self.affected.clear();
        self.affected.resize(count, false);
        let graph = network.graph();
        for &u in changed {
            if u.index() < count {
                self.affected[u.index()] = true;
            }
            for &v in graph.neighbors_slice(u) {
                if v.index() < count {
                    self.affected[v.index()] = true;
                }
            }
        }
        for i in 0..count {
            if self.affected[i] {
                self.views[i] = build_view(network, uids, NodeId(i));
            }
        }
    }
}

/// Runs one [`NodeProgram`] per node until all of them terminate.
///
/// # Errors
///
/// Propagates any [`SimError`] raised by invalid edge operations, messages
/// addressed to non-neighbours, or exceeding `config.max_rounds`.
///
/// # Panics
///
/// Panics if `programs.len()` or `uids.len()` does not match the network
/// size.
pub fn run_programs<P: NodeProgram>(
    network: &mut Network,
    programs: &mut [P],
    uids: &UidMap,
    config: &EngineConfig,
) -> Result<ExecutionReport, SimError> {
    let n = network.node_count();
    assert_eq!(programs.len(), n, "one program per node is required");
    assert_eq!(uids.len(), n, "one UID per node is required");

    // Per-round statistics are captured by the network itself so that the
    // trace convention is shared with the committee-level algorithms; the
    // caller's trace setting is restored on the way out.
    let caller_trace = network.trace_enabled();
    if config.record_trace {
        network.set_trace_enabled(true);
    }
    let trace_start = network.trace().len();

    // Views are maintained incrementally: full build once, then only the
    // nodes whose neighbourhood (or 2-neighbourhood) changed in a round —
    // reported by the network's change-tracking hook, which also covers
    // adversarial DST faults — are recomputed. The hook is (re-)armed here
    // and disarmed on every exit path.
    network.set_change_tracking(true);
    let result = run_rounds(network, programs, uids, config);
    network.set_change_tracking(false);
    result?;

    let trace = network.trace()[trace_start..].to_vec();
    network.set_trace_enabled(caller_trace);
    let report = ExecutionReport::new(network.metrics().clone(), network.graph().clone(), 0)
        .with_trace(trace);
    Ok(report)
}

/// The engine's round loop (split out so [`run_programs`] can disarm the
/// change-tracking hook on error paths too).
fn run_rounds<P: NodeProgram>(
    network: &mut Network,
    programs: &mut [P],
    uids: &UidMap,
    config: &EngineConfig,
) -> Result<(), SimError> {
    let programs_len = programs.len();
    let mut view_cache: Option<ViewCache> = None;
    let mut rounds_executed = 0usize;

    while !programs.iter().all(|p| p.has_terminated()) {
        if rounds_executed >= config.max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: config.max_rounds,
            });
        }
        rounds_executed += 1;

        // The node count is re-read every round: under DST churn faults
        // the network can grow mid-run; joined nodes have no program (they
        // are passive), but they can receive messages and appear in
        // neighbourhoods, so the inboxes must cover the full current
        // vertex set.
        let n_now = network.node_count();
        let cache = view_cache.get_or_insert_with(|| ViewCache::new(network, uids, programs_len));
        cache.begin_round(network);
        let views = cache.views();

        // Send phase.
        let mut inboxes: Vec<Vec<(NodeId, P::Message)>> = vec![Vec::new(); n_now];
        for i in 0..programs_len {
            let outbox = programs[i].send(&views[i]);
            for (to, msg) in outbox {
                if !network.graph().has_edge(NodeId(i), to) {
                    return Err(SimError::NotPotentialNeighbors {
                        u: NodeId(i),
                        v: to,
                        round: network.round(),
                    });
                }
                inboxes[to.index()].push((NodeId(i), msg));
            }
        }

        // Step phase: gather decisions, then stage and commit.
        for i in 0..programs_len {
            let decision = programs[i].step(&views[i], &inboxes[i]);
            for v in decision.activate {
                network.stage_activation(NodeId(i), v)?;
            }
            for v in decision.deactivate {
                network.stage_deactivation(NodeId(i), v)?;
            }
        }
        network.commit_round();
        let changed = network.take_changed_nodes();
        cache.refresh_changed(network, uids, &changed);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::{generators, UidAssignment};

    /// A toy program: every node activates an edge to its smallest
    /// potential neighbour once, then terminates.
    struct OneShot {
        done: bool,
    }

    impl NodeProgram for OneShot {
        type Message = ();

        fn send(&mut self, _view: &NodeView) -> Vec<(NodeId, ())> {
            Vec::new()
        }

        fn step(&mut self, view: &NodeView, _inbox: &[(NodeId, ())]) -> NodeDecision {
            if self.done {
                return NodeDecision::none();
            }
            self.done = true;
            NodeDecision {
                activate: view
                    .potential_neighbors
                    .first()
                    .copied()
                    .into_iter()
                    .collect(),
                deactivate: Vec::new(),
            }
        }

        fn has_terminated(&self) -> bool {
            self.done
        }
    }

    /// Gossip program: floods the maximum UID seen; terminates after a
    /// fixed number of rounds.
    struct MaxGossip {
        best: u64,
        rounds_left: usize,
    }

    impl NodeProgram for MaxGossip {
        type Message = u64;

        fn send(&mut self, view: &NodeView) -> Vec<(NodeId, u64)> {
            view.neighbors.iter().map(|&v| (v, self.best)).collect()
        }

        fn step(&mut self, _view: &NodeView, inbox: &[(NodeId, u64)]) -> NodeDecision {
            for (_, m) in inbox {
                self.best = self.best.max(*m);
            }
            self.rounds_left = self.rounds_left.saturating_sub(1);
            NodeDecision::none()
        }

        fn has_terminated(&self) -> bool {
            self.rounds_left == 0
        }
    }

    #[test]
    fn one_shot_program_activates_and_stops() {
        let g = generators::line(5);
        let uids = UidMap::new(5, UidAssignment::Sequential);
        let mut net = Network::new(g);
        let mut programs: Vec<OneShot> = (0..5).map(|_| OneShot { done: false }).collect();
        let report =
            run_programs(&mut net, &mut programs, &uids, &EngineConfig::default()).unwrap();
        assert_eq!(report.rounds, 1);
        assert!(report.metrics.total_activations >= 2);
        assert!(net.is_connected());
    }

    #[test]
    fn gossip_reaches_everyone_on_a_line() {
        let n = 9;
        let g = generators::line(n);
        let uids = UidMap::new(n, UidAssignment::Sequential);
        let mut net = Network::new(g);
        let mut programs: Vec<MaxGossip> = (0..n)
            .map(|i| MaxGossip {
                best: uids.uid(NodeId(i)).value(),
                rounds_left: n,
            })
            .collect();
        let config = EngineConfig {
            record_trace: true,
            ..Default::default()
        };
        let report = run_programs(&mut net, &mut programs, &uids, &config).unwrap();
        assert_eq!(report.rounds, n);
        assert_eq!(report.trace.len(), n);
        for p in &programs {
            assert_eq!(p.best, n as u64, "every node learns the max UID");
        }
        // Pure gossip performs no edge operations.
        assert_eq!(report.metrics.total_activations, 0);
    }

    #[test]
    fn round_limit_is_enforced() {
        struct Never;
        impl NodeProgram for Never {
            type Message = ();
            fn send(&mut self, _v: &NodeView) -> Vec<(NodeId, ())> {
                Vec::new()
            }
            fn step(&mut self, _v: &NodeView, _i: &[(NodeId, ())]) -> NodeDecision {
                NodeDecision::none()
            }
            fn has_terminated(&self) -> bool {
                false
            }
        }
        let g = generators::line(3);
        let uids = UidMap::new(3, UidAssignment::Sequential);
        let mut net = Network::new(g);
        let mut programs = vec![Never, Never, Never];
        let config = EngineConfig {
            max_rounds: 5,
            record_trace: false,
        };
        let err = run_programs(&mut net, &mut programs, &uids, &config).unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { limit: 5 }));
    }

    #[test]
    fn messages_to_non_neighbors_are_rejected() {
        struct BadSender {
            done: bool,
        }
        impl NodeProgram for BadSender {
            type Message = ();
            fn send(&mut self, view: &NodeView) -> Vec<(NodeId, ())> {
                if view.id == NodeId(0) {
                    vec![(NodeId(2), ())] // not a neighbour on a line of 3
                } else {
                    Vec::new()
                }
            }
            fn step(&mut self, _v: &NodeView, _i: &[(NodeId, ())]) -> NodeDecision {
                self.done = true;
                NodeDecision::none()
            }
            fn has_terminated(&self) -> bool {
                self.done
            }
        }
        let g = generators::line(3);
        let uids = UidMap::new(3, UidAssignment::Sequential);
        let mut net = Network::new(g);
        let mut programs = vec![
            BadSender { done: false },
            BadSender { done: false },
            BadSender { done: false },
        ];
        let err =
            run_programs(&mut net, &mut programs, &uids, &EngineConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::NotPotentialNeighbors { .. }));
    }
}
