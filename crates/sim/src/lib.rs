//! # adn-sim — the actively dynamic network simulator
//!
//! This crate implements the synchronous model of Section 2.1 of
//! *"Distributed Computation and Reconfiguration in Actively Dynamic
//! Networks"* (Michail, Skretas, Spirakis — PODC 2020):
//!
//! * a temporal graph `D = (V, E)` evolving in rounds, starting from the
//!   initial network `G_s = D(1)`;
//! * per-round edge **activations**, only permitted between nodes at
//!   distance exactly 2 at the beginning of the round (the *potential
//!   neighbour* rule), and edge **deactivations** of currently active
//!   edges, with the paper's conflict semantics;
//! * synchronous message passing between current neighbours
//!   (send → receive → activate → deactivate → update, in lock step);
//! * metering of the paper's three **edge-complexity measures**:
//!   total edge activations, maximum activated edges per round, and
//!   maximum activated degree — plus the running time in rounds.
//!
//! Two layers are provided:
//!
//! * [`Network`] — the validated, metered temporal graph. Every algorithm
//!   in `adn-core` performs its edge operations through this type, so the
//!   simulator doubles as a checker: an algorithm that tried to activate a
//!   non-potential neighbour would fail loudly.
//! * [`engine`] — a driver for fully local [`engine::NodeProgram`] state
//!   machines (used by the clique-formation baseline, flooding/token
//!   dissemination and other strictly message-passing protocols).
//!
//! A third, orthogonal layer is the deterministic simulation-testing
//! subsystem [`dst`]: a seeded adversary that injects crash-stop
//! failures, adversarial edge rewiring, round skew and churn between
//! rounds, plus a round-level invariant checker — all reproducible
//! bit-for-bit from a single `u64` seed.
//!
//! # Example
//!
//! ```
//! use adn_graph::{generators, NodeId};
//! use adn_sim::Network;
//!
//! // A path 0 - 1 - 2: node 0 may activate an edge to node 2 (distance 2).
//! let mut net = Network::new(generators::line(3));
//! net.stage_activation(NodeId(0), NodeId(2)).unwrap();
//! net.commit_round();
//! assert!(net.graph().has_edge(NodeId(0), NodeId(2)));
//! assert_eq!(net.metrics().total_activations, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod dst;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod network;
pub mod trace;

pub use bus::RoundEvent;
pub use dst::{Adversary, DstReport, DstState, FaultEvent, FaultRecord, InvariantPolicy, Scenario};
pub use error::SimError;
pub use metrics::EdgeMetrics;
pub use network::{EdgeDelta, Network, RoundSummary, WaveActivation};
pub use trace::{ExecutionReport, RoundStats};
