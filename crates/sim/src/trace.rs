//! Execution reports and per-round traces.

use crate::EdgeMetrics;
use adn_graph::Graph;

/// Per-round statistics captured while an execution runs. These power the
/// "figure"-style experiments (committee decay, activation time-series).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats {
    /// The round index.
    pub round: usize,
    /// Edges activated in this round.
    pub activations: usize,
    /// Edges deactivated in this round.
    pub deactivations: usize,
    /// Active non-initial edges after the round.
    pub activated_edges: usize,
    /// Maximum total degree after the round.
    pub max_degree: usize,
    /// Number of committees (or other algorithm-specific groups) alive
    /// after the round; 0 when the running algorithm does not track
    /// committees.
    pub groups_alive: usize,
}

/// The outcome of running an algorithm on a [`crate::Network`].
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Total rounds consumed (mirrors `metrics.rounds`).
    pub rounds: usize,
    /// Number of algorithm phases, for phase-structured algorithms
    /// (0 for purely round-based protocols).
    pub phases: usize,
    /// The accumulated edge-complexity metrics.
    pub metrics: EdgeMetrics,
    /// The final snapshot of the network.
    pub final_graph: Graph,
    /// Per-round trace (may be empty if tracing was disabled).
    pub trace: Vec<RoundStats>,
}

impl ExecutionReport {
    /// Convenience constructor for algorithms that do not keep a trace.
    pub fn new(metrics: EdgeMetrics, final_graph: Graph, phases: usize) -> Self {
        ExecutionReport {
            rounds: metrics.rounds,
            phases,
            metrics,
            final_graph,
            trace: Vec::new(),
        }
    }

    /// Attaches a per-round trace.
    pub fn with_trace(mut self, trace: Vec<RoundStats>) -> Self {
        self.trace = trace;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::generators;

    #[test]
    fn report_mirrors_metrics() {
        let metrics = EdgeMetrics {
            rounds: 7,
            total_activations: 3,
            ..Default::default()
        };
        let report = ExecutionReport::new(metrics.clone(), generators::line(4), 2);
        assert_eq!(report.rounds, 7);
        assert_eq!(report.phases, 2);
        assert_eq!(report.metrics, metrics);
        assert!(report.trace.is_empty());
        let traced = report.with_trace(vec![RoundStats {
            round: 1,
            activations: 3,
            deactivations: 0,
            activated_edges: 3,
            max_degree: 2,
            groups_alive: 4,
        }]);
        assert_eq!(traced.trace.len(), 1);
    }
}
