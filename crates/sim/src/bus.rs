//! The round-event bus: one application-ordered stream of topology and
//! round-boundary events, emitted from exactly one place per mutation in
//! [`crate::Network`], with cheap fan-out to every observer.
//!
//! Before this module, the network carried four independently armed
//! observer channels — changed nodes for the engine's view cache, edge
//! deltas for the committee layer's incremental adjacency, a dedicated
//! topology channel for the DST invariant engine, and the per-round
//! metrics/trace bookkeeping — each with its own push site duplicated
//! across both `commit_round` paths (serial and sharded) and every
//! `fault_*` entry point. The bus replaces them with a single recorded
//! [`RoundEvent`] stream plus per-consumer cursors ([`BusTap`]): each
//! consumer arms its tap, mutations are recorded once, and each drain
//! maps the pending slice into the consumer's legacy representation
//! (sorted node set, [`crate::EdgeDelta`] vector, DST replay feed, raw
//! events). The buffer is compacted as soon as every armed tap has
//! drained, so steady-state memory is one round of events.
//!
//! The always-on consumers — [`crate::EdgeMetrics`], the per-round
//! [`crate::RoundStats`] trace and the [`DegreeTracker`] degree
//! histogram — do not buffer: they live in the [`RoundLedger`] inline
//! subscriber and are updated synchronously at the same emission points,
//! so untraced executions with no taps armed pay two branch tests per
//! mutation and nothing else.

use crate::metrics::EdgeMetrics;
use crate::trace::RoundStats;
use adn_graph::{Edge, Graph, NodeId};

/// One event on the network's round-event bus, in application order.
///
/// Ordering contract (identical to the old per-channel contracts): a
/// committed round records its applied activations ascending, then its
/// applied deactivations ascending, then one [`RoundEvent::RoundCommitted`]
/// boundary; a crash records one `Edge { added: false }` per severed edge
/// *before* its [`RoundEvent::NodeCrashed`]; a churn join records
/// [`RoundEvent::NodeJoined`] *before* the attach edge's insertion; and
/// adversarial faults land between the boundary of the round they were
/// injected at and the next round's stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundEvent {
    /// An applied edge mutation (committed stage or adversarial fault).
    Edge {
        /// The mutated edge (canonical endpoint order).
        edge: Edge,
        /// True for an insertion, false for a removal.
        added: bool,
        /// True when the edge belongs to the initial network `D(1)` —
        /// the initial-edge classification the paper's activation
        /// metrics are defined on (only non-initial edges count as
        /// activated).
        initial: bool,
    },
    /// A fresh node was appended (churn join), isolated at birth.
    NodeJoined(NodeId),
    /// A node crash-stopped (its severed edges precede this event).
    NodeCrashed(NodeId),
    /// Round boundary: the preceding edge events of this round were
    /// committed. `activations`/`deactivations` are the applied counts
    /// of the round, matching [`crate::RoundSummary`].
    RoundCommitted {
        /// The 1-based round index that was just committed.
        round: usize,
        /// Applied activations this round (`|E_ac(i)|`).
        activations: usize,
        /// Applied deactivations this round (`|E_dac(i)|`).
        deactivations: usize,
    },
    /// One idle round elapsed (communication-only charge or adversarial
    /// round skew): time passed, no edge operations.
    IdleRound,
}

/// The buffered consumers of the bus, one cursor each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BusTap {
    /// The node-program engine's view cache (changed-node drain).
    Engine = 0,
    /// The committee layer's incremental adjacency (edge-delta drain).
    Committee = 1,
    /// The installed DST invariant state (topology replay drain).
    Dst = 2,
    /// The public raw-event recorder ([`crate::Network::take_events`]).
    Recorder = 3,
}

const TAPS: usize = 4;

/// The shared event buffer plus one (cursor, armed) pair per [`BusTap`].
///
/// Recording is O(1) and happens only while at least one tap is armed;
/// a drain reads the tap's pending slice `events[cursor..]` and advances
/// the cursor; the buffer is cleared as soon as every armed tap has
/// caught up (disarmed taps never hold data back).
#[derive(Debug, Clone, Default)]
pub(crate) struct EventBus {
    events: Vec<RoundEvent>,
    cursors: [usize; TAPS],
    armed: [bool; TAPS],
    any_armed: bool,
}

impl EventBus {
    /// Arms or disarms a tap. Either transition resets the tap's view to
    /// "nothing pending", preserving the old per-channel contract that
    /// toggling a hook clears its buffer.
    pub fn arm(&mut self, tap: BusTap, enabled: bool) {
        let i = tap as usize;
        self.armed[i] = enabled;
        self.cursors[i] = self.events.len();
        self.any_armed = self.armed.iter().any(|&a| a);
        self.compact();
    }

    /// Whether the given tap is armed.
    pub fn is_armed(&self, tap: BusTap) -> bool {
        self.armed[tap as usize]
    }

    /// Records one event (no-op while no tap is armed).
    #[inline]
    pub fn record(&mut self, event: RoundEvent) {
        if self.any_armed {
            self.events.push(event);
        }
    }

    /// Streams the tap's pending events through `f` and marks them
    /// consumed.
    pub fn drain(&mut self, tap: BusTap, mut f: impl FnMut(&RoundEvent)) {
        let i = tap as usize;
        for event in &self.events[self.cursors[i]..] {
            f(event);
        }
        self.cursors[i] = self.events.len();
        self.compact();
    }

    /// Copies the tap's pending events into `out` (not cleared first) and
    /// marks them consumed — the allocation-reusing drain for per-round
    /// consumers.
    pub fn drain_into(&mut self, tap: BusTap, out: &mut Vec<RoundEvent>) {
        let i = tap as usize;
        out.extend_from_slice(&self.events[self.cursors[i]..]);
        self.cursors[i] = self.events.len();
        self.compact();
    }

    /// Clears the buffer once every armed tap has consumed it all.
    fn compact(&mut self) {
        let len = self.events.len();
        let fully_drained = self
            .cursors
            .iter()
            .zip(&self.armed)
            .all(|(&cursor, &armed)| !armed || cursor == len);
        if fully_drained {
            self.events.clear();
            self.cursors = [0; TAPS];
        }
    }
}

/// Incremental degree histogram: the traced-round `max_degree` in O(1)
/// amortized instead of the old per-round O(n) whole-graph scan.
///
/// While enabled, the tracker mirrors every node's total degree and the
/// bucket counts `hist[d]` = number of nodes with degree exactly `d`,
/// fed one edge event at a time from the bus emission points. The
/// maximum moves up on insertion for free and walks down bucket by
/// bucket on removal; each downward step crosses a bucket some earlier
/// insertion raised, so the walk is amortized O(1) per event. The old
/// from-scratch scan stays on as a debug-build differential oracle at
/// every traced commit (the `dst::DynConn` recipe).
#[derive(Debug, Clone, Default)]
pub(crate) struct DegreeTracker {
    enabled: bool,
    /// Mirror of each node's current total degree.
    degree: Vec<usize>,
    /// `hist[d]` = number of nodes with degree exactly `d`.
    hist: Vec<usize>,
    /// Largest degree with a non-empty bucket (0 for the empty graph).
    max: usize,
}

impl DegreeTracker {
    /// Whether the tracker is live.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Drops the mirror state (untraced executions pay nothing).
    pub fn disable(&mut self) {
        self.enabled = false;
        self.degree = Vec::new();
        self.hist = Vec::new();
        self.max = 0;
    }

    /// (Re)builds the histogram from the current snapshot — one O(n)
    /// pass when tracing is switched on, never per round.
    pub fn rebuild(&mut self, graph: &Graph) {
        self.enabled = true;
        self.degree.clear();
        self.hist.clear();
        self.hist.push(0);
        self.max = 0;
        for u in graph.nodes() {
            let d = graph.degree(u);
            self.degree.push(d);
            if d >= self.hist.len() {
                self.hist.resize(d + 1, 0);
            }
            self.hist[d] += 1;
            self.max = self.max.max(d);
        }
    }

    /// Applies one edge mutation to both endpoints' buckets.
    #[inline]
    pub fn on_edge(&mut self, e: Edge, added: bool) {
        if !self.enabled {
            return;
        }
        self.bump(e.a, added);
        self.bump(e.b, added);
    }

    fn bump(&mut self, u: NodeId, up: bool) {
        let d = self.degree[u.index()];
        self.hist[d] -= 1;
        let nd = if up { d + 1 } else { d - 1 };
        self.degree[u.index()] = nd;
        if nd >= self.hist.len() {
            self.hist.push(0);
        }
        self.hist[nd] += 1;
        if nd > self.max {
            self.max = nd;
        } else {
            while self.max > 0 && self.hist[self.max] == 0 {
                self.max -= 1;
            }
        }
    }

    /// A fresh isolated node joined (degree 0).
    pub fn on_join(&mut self) {
        if !self.enabled {
            return;
        }
        self.degree.push(0);
        self.hist[0] += 1;
    }

    /// The current maximum total degree, O(1).
    pub fn max_degree(&self) -> usize {
        self.max
    }
}

/// The always-on inline subscriber of the bus: owns the accumulated
/// [`EdgeMetrics`], the per-round [`RoundStats`] trace and the
/// [`DegreeTracker`], and is updated synchronously at the same emission
/// points the buffered taps record at — the `RoundSummary`/`EdgeMetrics`
/// bookkeeping as a bus subscriber rather than loose fields on the
/// network.
#[derive(Debug, Clone, Default)]
pub(crate) struct RoundLedger {
    /// The paper's edge-complexity measures.
    pub metrics: EdgeMetrics,
    /// Captured per-round statistics (empty unless tracing is on).
    pub trace: Vec<RoundStats>,
    /// Whether committed rounds append a [`RoundStats`] entry.
    pub trace_enabled: bool,
    /// Forces traced rounds back onto the O(n) from-scratch
    /// `max_degree` scan instead of the histogram — benchmark
    /// comparison knob, mirroring `DstState::set_from_scratch_checks`.
    pub trace_from_scratch: bool,
    /// Algorithm-declared live-group count stamped into traced rounds.
    pub groups_alive: usize,
    /// The degree histogram behind the traced `max_degree` value.
    pub degrees: DegreeTracker,
}

impl RoundLedger {
    /// Per-edge hook: keeps the degree histogram current. The
    /// activation counters live on the network (they are model state,
    /// consulted by staging validation), so they are updated alongside
    /// this call at the single emission point.
    #[inline]
    pub fn on_edge(&mut self, e: Edge, added: bool) {
        self.degrees.on_edge(e, added);
    }

    /// Per-join hook: the histogram gains a degree-0 node.
    pub fn on_join(&mut self) {
        self.degrees.on_join();
    }

    /// Charges `k` rounds with zero activations (idle communication
    /// rounds or adversarial skew).
    pub fn on_idle_rounds(&mut self, k: usize) {
        self.metrics.rounds += k;
        for _ in 0..k {
            self.metrics.push_round_activations(0);
        }
    }

    /// Appends the traced entry for a committed round, if tracing is on.
    pub fn on_round_committed(
        &mut self,
        round: usize,
        activations: usize,
        deactivations: usize,
        activated_edges: usize,
        max_degree: usize,
    ) {
        if self.trace_enabled {
            self.trace.push(RoundStats {
                round,
                activations,
                deactivations,
                activated_edges,
                max_degree,
                groups_alive: self.groups_alive,
            });
        }
    }
}

/// The single emission point for applied edge mutations. Every apply
/// path of the network — the serial batch callbacks, the sharded
/// filtered columns, and each adversarial fault entry point — funnels
/// through [`EdgeSink::edge`], which classifies the edge against the
/// initial network, keeps the activated-edge counters and the inline
/// ledger (degree histogram) current, and records the event on the bus.
/// There is no other place that touches these observables, so the serial
/// and sharded commit paths and all faults stay byte-identical by
/// construction.
pub(crate) struct EdgeSink<'a> {
    /// The initial network `D(1)` (for the initial-edge classification).
    pub initial: &'a Graph,
    /// Per-node count of active non-initial edges (model state: staging
    /// validation and invariant checks read it).
    pub activated_degree: &'a mut [usize],
    /// Number of currently active non-initial edges.
    pub activated_now: &'a mut usize,
    /// The buffered event bus.
    pub bus: &'a mut EventBus,
    /// The always-on inline subscriber.
    pub ledger: &'a mut RoundLedger,
}

impl EdgeSink<'_> {
    /// Emits one applied edge mutation. Returns true when the edge is
    /// non-initial, i.e. the mutation changed the activated-edge set.
    #[inline]
    pub fn edge(&mut self, e: Edge, added: bool) -> bool {
        let initial = self.initial.has_edge(e.a, e.b);
        self.ledger.on_edge(e, added);
        self.bus.record(RoundEvent::Edge {
            edge: e,
            added,
            initial,
        });
        if !initial {
            if added {
                *self.activated_now += 1;
                self.activated_degree[e.a.index()] += 1;
                self.activated_degree[e.b.index()] += 1;
            } else {
                *self.activated_now -= 1;
                self.activated_degree[e.a.index()] -= 1;
                self.activated_degree[e.b.index()] -= 1;
            }
        }
        !initial
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(a: usize, b: usize) -> Edge {
        Edge::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn bus_records_only_while_armed_and_compacts_when_drained() {
        let mut bus = EventBus::default();
        bus.record(RoundEvent::IdleRound);
        assert!(bus.events.is_empty(), "no tap armed: nothing recorded");

        bus.arm(BusTap::Engine, true);
        bus.arm(BusTap::Dst, true);
        bus.record(RoundEvent::NodeJoined(NodeId(3)));
        bus.record(RoundEvent::IdleRound);
        assert_eq!(bus.events.len(), 2);

        let mut seen = 0;
        bus.drain(BusTap::Engine, |_| seen += 1);
        assert_eq!(seen, 2);
        assert_eq!(bus.events.len(), 2, "DST tap still pending: kept");

        let mut dst = Vec::new();
        bus.drain_into(BusTap::Dst, &mut dst);
        assert_eq!(dst.len(), 2);
        assert!(bus.events.is_empty(), "all armed taps drained: compacted");

        // A late arm sees only post-arm events.
        bus.record(RoundEvent::IdleRound);
        bus.arm(BusTap::Committee, true);
        bus.record(RoundEvent::NodeCrashed(NodeId(1)));
        let mut committee = Vec::new();
        bus.drain_into(BusTap::Committee, &mut committee);
        assert_eq!(committee, vec![RoundEvent::NodeCrashed(NodeId(1))]);

        // Disarming releases the buffer even with events pending.
        bus.arm(BusTap::Engine, false);
        bus.arm(BusTap::Dst, false);
        assert!(bus.events.is_empty());
    }

    #[test]
    fn degree_tracker_follows_mutations_and_joins() {
        let g = adn_graph::generators::star(5); // centre 0, degree 4
        let mut t = DegreeTracker::default();
        t.rebuild(&g);
        assert_eq!(t.max_degree(), 4);

        // Leaf-leaf insertions raise leaves to degree 2; max stays 4.
        t.on_edge(edge(1, 2), true);
        assert_eq!(t.max_degree(), 4);
        // Pile edges onto node 1 until it passes the hub.
        t.on_edge(edge(1, 3), true);
        t.on_edge(edge(1, 4), true);
        assert_eq!(t.max_degree(), 4, "node 1 ties the hub at 4");
        let g2 = adn_graph::generators::star(6);
        let mut t2 = DegreeTracker::default();
        t2.rebuild(&g2);
        assert_eq!(t2.max_degree(), 5);

        // Removing the max-holder's edges walks the max down.
        t.on_edge(edge(1, 2), false);
        t.on_edge(edge(1, 3), false);
        assert_eq!(t.max_degree(), 4, "hub still at 4");
        t.on_edge(edge(0, 1), false);
        t.on_edge(edge(0, 2), false);
        t.on_edge(edge(0, 3), false);
        t.on_edge(edge(0, 4), false);
        // Degrees now: node 0: 0, node 1: 1 (1-4), node 4: 2 (1-4? no).
        // Remaining edges: {1,4}. Max is 1.
        assert_eq!(t.max_degree(), 1);

        t.on_join();
        assert_eq!(t.max_degree(), 1, "a joined node starts at degree 0");
        t.on_edge(edge(4, 5), true);
        t.on_edge(edge(1, 5), true);
        assert_eq!(t.max_degree(), 2);
    }

    #[test]
    fn disabled_tracker_ignores_events() {
        let mut t = DegreeTracker::default();
        assert!(!t.enabled());
        t.on_edge(edge(0, 1), true);
        t.on_join();
        assert_eq!(t.max_degree(), 0);
        t.rebuild(&adn_graph::generators::line(3));
        assert!(t.enabled());
        assert_eq!(t.max_degree(), 2);
        t.disable();
        assert_eq!(t.max_degree(), 0);
    }
}
