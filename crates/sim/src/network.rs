//! The validated, metered temporal graph.
//!
//! Every observable of the network — engine changed-nodes, committee
//! edge-deltas, DST topology replay, raw event recording, metrics and
//! the per-round trace — hangs off one [`RoundEvent`] bus (see
//! [`crate::bus`]): each applied mutation is emitted from exactly one
//! place ([`EdgeSink::edge`] for edges, the join/crash/boundary points
//! below for the rest) and fanned out to whichever consumers are armed.

use crate::bus::{BusTap, EdgeSink, EventBus, RoundLedger};
use crate::dst::{DstReport, DstState};
use crate::{EdgeMetrics, RoundEvent, RoundStats, SimError};
use adn_graph::{Edge, Graph, NodeId};

/// Deterministic multiply-rotate hasher for the staged-set guards: an
/// [`Edge`] hashes as two `usize` writes, each folded in with a fixed odd
/// multiplier. The guards are only probed and inserted — never iterated —
/// so hash order cannot affect execution, and the fixed seed keeps the
/// structure independent of process state (std's default hasher seeds per
/// process and costs several times more per probe on these tiny keys).
#[derive(Default, Clone)]
struct EdgeKeyHasher(u64);

impl std::hash::Hasher for EdgeKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
    }

    fn write_usize(&mut self, x: usize) {
        self.0 = (self.0.rotate_left(32) ^ x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type StagedEdgeSet = std::collections::HashSet<Edge, std::hash::BuildHasherDefault<EdgeKeyHasher>>;

/// One applied edge mutation, recorded by the opt-in edge-delta hook
/// ([`Network::set_edge_delta_tracking`]). Deltas are recorded in
/// application order — committed stages and adversarial faults alike — so
/// replaying them over a snapshot of the graph at the last drain
/// reproduces the current edge set exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeDelta {
    /// The mutated edge (canonical endpoint order).
    pub edge: Edge,
    /// True for an insertion, false for a removal.
    pub added: bool,
}

/// One activation of a batched jump wave, staged through
/// [`Network::stage_jump_wave`]: the `initiator` activates an edge to
/// `target`, and `witness` is a node the caller asserts is currently
/// adjacent to both — the engines' hot loops always know one (the old
/// parent in a line-to-tree jump, the bridge endpoint in a star merge).
/// The claim is *verified* with two adjacency probes, which replaces the
/// general common-neighbour merge scan of [`Network::stage_activation`]
/// with two binary searches; a stale witness falls back to the full scan
/// before the distance-2 rule rejects the activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveActivation {
    /// The node performing the activation (metered as the initiator).
    pub initiator: NodeId,
    /// The other endpoint of the new edge.
    pub target: NodeId,
    /// A node believed adjacent to both endpoints in the current snapshot.
    pub witness: NodeId,
}

/// Summary of a committed round, returned by [`Network::commit_round`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSummary {
    /// The round that was just committed (1-based, matching the paper's
    /// `E(i)` indexing).
    pub round: usize,
    /// Number of edges activated in this round (`|E_ac(i)|`).
    pub activations: usize,
    /// Number of edges deactivated in this round (`|E_dac(i)|`).
    pub deactivations: usize,
    /// Number of active non-initial edges after the round.
    pub activated_edges_now: usize,
}

/// The actively dynamic network: the current snapshot `D(i)`, the initial
/// network `D(1)`, the staged operations of the round in progress, and the
/// accumulated [`EdgeMetrics`].
///
/// A round proceeds by staging any number of activations and deactivations
/// (validated against the snapshot at the *beginning* of the round, as the
/// model prescribes) and then calling [`Network::commit_round`], which
/// applies `E(i+1) = (E(i) ∪ E_ac(i)) \ E_dac(i)` and advances the round
/// counter. Rounds that involve only message passing (no edge operations)
/// can be charged with [`Network::advance_idle_rounds`].
#[derive(Debug, Clone)]
pub struct Network {
    initial: Graph,
    current: Graph,
    round: usize,
    /// Columnar round staging: the staged activation edges in stage
    /// order, duplicate-free (set semantics via the hash guards below),
    /// with the *initiator* of every successful stage in a parallel
    /// column — per-node activation counts are reduced from it at commit
    /// time. The columns are sorted once at commit instead of kept sorted
    /// per stage: a round staging `k` edges pays one `k log k` sort
    /// rather than `k` shifting inserts into a sorted vector.
    staged_activations: Vec<Edge>,
    staged_initiators: Vec<NodeId>,
    /// Staged deactivations, in stage order, duplicate-free.
    staged_deactivations: Vec<Edge>,
    /// Membership guards for the two staged columns (duplicate staging
    /// must stay an observable no-op). Only probed and inserted — never
    /// iterated — so hash order cannot leak into execution.
    staged_activation_set: StagedEdgeSet,
    staged_deactivation_set: StagedEdgeSet,
    /// Per-node count of active non-initial edges, maintained
    /// incrementally so `commit_round` does not have to rebuild the full
    /// activated-edge difference graph every round.
    activated_degree: Vec<usize>,
    /// Number of currently active non-initial edges (incremental mirror of
    /// the old per-round scan).
    activated_now: usize,
    /// Per-node crash marker, set by the DST crash-stop fault. Staged
    /// edges with a crashed endpoint are dropped at commit in one pass —
    /// a crashed node performs no further edge operations.
    crashed: Vec<bool>,
    /// True once any node has crashed; lets the fault-free fast path skip
    /// the per-commit crashed-endpoint scans entirely.
    any_crashed: bool,
    /// Per-commit scratch (touched / grown endpoints), reused so the hot
    /// commit path allocates nothing.
    commit_touched: Vec<NodeId>,
    commit_grew: Vec<NodeId>,
    /// The round-event bus: the one recorded stream every buffered
    /// observer (engine changed-nodes, committee edge-deltas, DST replay,
    /// raw recorder) drains from its own tap. See [`crate::bus`].
    bus: EventBus,
    /// The always-on inline subscriber: accumulated [`EdgeMetrics`],
    /// per-round [`RoundStats`] trace, and the degree histogram behind
    /// the traced `max_degree`.
    ledger: RoundLedger,
    /// Worker-pool width for [`Network::commit_round`]'s sharded merge
    /// (1 = serial; see [`Network::set_commit_threads`]).
    commit_threads: usize,
    /// Optional deterministic-simulation-testing state (adversary +
    /// invariant checker), ticked at every round boundary.
    dst: Option<Box<DstState>>,
}

/// Removes the elements common to both sorted, duplicate-free vectors
/// from each, in one two-pointer pass (in-place compaction).
fn drop_common_sorted(a: &mut Vec<Edge>, b: &mut Vec<Edge>) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    let (mut i, mut j) = (0usize, 0usize);
    let (mut wa, mut wb) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                a[wa] = a[i];
                wa += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                b[wb] = b[j];
                wb += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    while i < a.len() {
        a[wa] = a[i];
        wa += 1;
        i += 1;
    }
    while j < b.len() {
        b[wb] = b[j];
        wb += 1;
        j += 1;
    }
    a.truncate(wa);
    b.truncate(wb);
}

impl Network {
    /// Creates a network whose initial snapshot `D(1)` is `initial`.
    pub fn new(initial: Graph) -> Self {
        let current = initial.clone();
        let mut ledger = RoundLedger::default();
        ledger.metrics.max_total_degree = current.max_degree();
        ledger.metrics.max_active_edges_total = current.edge_count();
        let n = current.node_count();
        Network {
            initial,
            current,
            round: 1,
            staged_activations: Vec::new(),
            staged_initiators: Vec::new(),
            staged_deactivations: Vec::new(),
            staged_activation_set: StagedEdgeSet::default(),
            staged_deactivation_set: StagedEdgeSet::default(),
            activated_degree: vec![0; n],
            activated_now: 0,
            crashed: vec![false; n],
            any_crashed: false,
            commit_touched: Vec::new(),
            commit_grew: Vec::new(),
            bus: EventBus::default(),
            ledger,
            commit_threads: 1,
            dst: None,
        }
    }

    /// Sets the worker-pool width for the sharded `commit_round` merge.
    /// With `threads >= 2`, rounds whose staged columns are large enough
    /// to shard profitably apply their adjacency merges on a scoped
    /// worker pool (one disjoint arena region each); everything
    /// observable — snapshot, metrics, deltas, summaries — is
    /// byte-identical to the serial path for every thread count. Values
    /// `0` and `1` select the serial path; small rounds fall back to it
    /// automatically.
    pub fn set_commit_threads(&mut self, threads: usize) {
        self.commit_threads = threads.max(1);
    }

    /// The configured worker-pool width for `commit_round` (1 = serial).
    pub fn commit_threads(&self) -> usize {
        self.commit_threads
    }

    /// Enables or disables the edge-delta hook (either transition clears
    /// the tap's pending view). While enabled, [`Network::take_edge_deltas`]
    /// reports every applied edge mutation — through committed rounds or
    /// adversarial faults — since the last drain, in application order.
    ///
    /// The hook is **single-consumer**, like the node-change hook: it is
    /// one tap of the round-event bus with one cursor and one drain. The
    /// committee algorithms arm it for the duration of a run and disarm it
    /// on every exit path, so any tracking an outer caller had enabled on
    /// the same network is reset (re-arm and rebuild from the graph
    /// afterwards if needed).
    pub fn set_edge_delta_tracking(&mut self, enabled: bool) {
        self.bus.arm(BusTap::Committee, enabled);
    }

    /// Drains the recorded edge deltas, in application order. Empty
    /// unless [`Network::set_edge_delta_tracking`] is on.
    pub fn take_edge_deltas(&mut self) -> Vec<EdgeDelta> {
        let mut deltas = Vec::new();
        self.bus.drain(BusTap::Committee, |event| {
            if let RoundEvent::Edge { edge, added, .. } = *event {
                deltas.push(EdgeDelta { edge, added });
            }
        });
        deltas
    }

    /// Enables or disables the change-tracking hook (either transition
    /// clears the tap's pending view; the hook is single-consumer — see
    /// [`Network::set_edge_delta_tracking`]). While enabled,
    /// [`Network::take_changed_nodes`]
    /// reports every node whose incident edge set changed — through
    /// committed rounds or adversarial faults — since the last drain.
    pub fn set_change_tracking(&mut self, enabled: bool) {
        self.bus.arm(BusTap::Engine, enabled);
    }

    /// Drains the recorded change set: the nodes whose incident edges
    /// changed since the last drain, sorted ascending and duplicate-free.
    /// Empty unless [`Network::set_change_tracking`] is on.
    pub fn take_changed_nodes(&mut self) -> Vec<NodeId> {
        let mut changed = Vec::new();
        self.bus.drain(BusTap::Engine, |event| {
            if let RoundEvent::Edge { edge, .. } = *event {
                changed.push(edge.a);
                changed.push(edge.b);
            }
        });
        changed.sort_unstable();
        changed.dedup();
        changed
    }

    /// Enables or disables the raw event recorder (either transition
    /// clears the tap's pending view). While enabled,
    /// [`Network::take_events`] drains the application-ordered
    /// [`RoundEvent`] stream itself — mutations, crashes, joins, round
    /// boundaries and idle charges — the ground truth the per-consumer
    /// drains above are projections of. Off by default.
    pub fn set_event_recording(&mut self, enabled: bool) {
        self.bus.arm(BusTap::Recorder, enabled);
    }

    /// Whether the raw event recorder is armed.
    pub fn event_recording(&self) -> bool {
        self.bus.is_armed(BusTap::Recorder)
    }

    /// Drains the recorded round-event stream, in application order.
    /// Empty unless [`Network::set_event_recording`] is on.
    pub fn take_events(&mut self) -> Vec<RoundEvent> {
        let mut events = Vec::new();
        self.bus.drain_into(BusTap::Recorder, &mut events);
        events
    }

    /// Installs a deterministic-simulation-testing state (seeded
    /// adversary + invariant checker). From now on the state is ticked at
    /// every round boundary: the adversary may inject faults and the
    /// invariants are evaluated on the resulting snapshot. Harvest the
    /// result with [`Network::take_dst_report`].
    pub fn install_dst(&mut self, mut state: DstState) {
        self.bus.arm(BusTap::Dst, true);
        state.attach(self);
        self.dst = Some(Box::new(state));
    }

    /// The installed DST state, if any.
    pub fn dst_state(&self) -> Option<&DstState> {
        self.dst.as_deref()
    }

    /// Removes the DST state and finalizes it into a report. Returns
    /// `None` when no state was installed (or it was already taken).
    pub fn take_dst_report(&mut self) -> Option<DstReport> {
        self.bus.arm(BusTap::Dst, false);
        self.dst.take().map(|s| s.into_report())
    }

    /// Drains the pending round events into `buffer` (the caller's
    /// reusable scratch, not cleared here), so the DST channel keeps one
    /// allocation for the whole run. Called once per tick by
    /// `DstState::on_round`.
    pub(crate) fn drain_dst_events(&mut self, buffer: &mut Vec<RoundEvent>) {
        self.bus.drain_into(BusTap::Dst, buffer);
    }

    fn tick_dst(&mut self) {
        if let Some(mut state) = self.dst.take() {
            state.on_round(self);
            self.dst = Some(state);
        }
    }

    /// Enables or disables the per-round [`RoundStats`] trace. While
    /// enabled, every committed round appends one entry (idle rounds are
    /// not traced — they perform no edge operations by definition).
    /// Enabling also builds the degree histogram (one O(n) pass) that
    /// serves the traced `max_degree` in O(1) amortized per mutation;
    /// disabling drops it.
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.ledger.trace_enabled = enabled;
        self.sync_degree_tracker();
    }

    /// Returns true if per-round tracing is enabled.
    pub fn trace_enabled(&self) -> bool {
        self.ledger.trace_enabled
    }

    /// Forces traced rounds back onto the O(n) from-scratch
    /// `Graph::max_degree` scan instead of the incremental degree
    /// histogram. Benchmark comparison knob (the histogram is dropped so
    /// the from-scratch path pays no mirror maintenance), mirroring
    /// `DstState::set_from_scratch_checks`; the values are identical
    /// either way, which debug builds assert on every traced commit.
    pub fn set_trace_from_scratch(&mut self, enabled: bool) {
        self.ledger.trace_from_scratch = enabled;
        self.sync_degree_tracker();
    }

    /// Keeps the degree histogram alive exactly while the traced
    /// `max_degree` is served incrementally.
    fn sync_degree_tracker(&mut self) {
        let want = self.ledger.trace_enabled && !self.ledger.trace_from_scratch;
        if want && !self.ledger.degrees.enabled() {
            self.ledger.degrees.rebuild(&self.current);
        } else if !want && self.ledger.degrees.enabled() {
            self.ledger.degrees.disable();
        }
    }

    /// Records the number of algorithm-specific groups (e.g. committees)
    /// currently alive; the value is stamped into every subsequently traced
    /// round until updated. Algorithms without a group structure leave it
    /// at the default 0.
    pub fn note_groups_alive(&mut self, groups: usize) {
        self.ledger.groups_alive = groups;
    }

    /// The per-round trace captured so far (empty unless tracing was
    /// enabled via [`Network::set_trace_enabled`]).
    pub fn trace(&self) -> &[RoundStats] {
        &self.ledger.trace
    }

    /// Takes ownership of the captured trace, leaving an empty one behind.
    pub fn take_trace(&mut self) -> Vec<RoundStats> {
        std::mem::take(&mut self.ledger.trace)
    }

    /// Caps the recorded per-round activation history (see
    /// [`EdgeMetrics::round_history_limit`]): long service/bench runs
    /// keep totals, means and maxima exact while the per-round vector
    /// stops growing past `limit` entries, with the overflow counted in
    /// [`EdgeMetrics::round_records_dropped`]. `None` removes the cap.
    pub fn set_round_history_limit(&mut self, limit: Option<usize>) {
        self.ledger.metrics.set_round_history_limit(limit);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.current.node_count()
    }

    /// The current round index `i` (1-based; the initial network is the
    /// snapshot at the beginning of round 1).
    pub fn round(&self) -> usize {
        self.round
    }

    /// The current snapshot `D(i)`.
    pub fn graph(&self) -> &Graph {
        &self.current
    }

    /// The initial network `D(1) = G_s`.
    pub fn initial_graph(&self) -> &Graph {
        &self.initial
    }

    /// Returns true if `{u, v}` was an edge of the initial network.
    pub fn is_initial_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.initial.has_edge(u, v)
    }

    /// The accumulated edge-complexity metrics.
    pub fn metrics(&self) -> &EdgeMetrics {
        &self.ledger.metrics
    }

    /// Number of currently active edges that are not initial edges.
    pub fn activated_edge_count(&self) -> usize {
        self.activated_now
    }

    /// Number of active non-initial edges incident to `u` (the node's
    /// *activated degree*), maintained incrementally.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn activated_degree(&self, u: NodeId) -> usize {
        self.activated_degree[u.index()]
    }

    fn check_node(&self, u: NodeId) -> Result<(), SimError> {
        if u.index() >= self.node_count() {
            Err(SimError::NodeOutOfRange {
                node: u,
                n: self.node_count(),
            })
        } else {
            Ok(())
        }
    }

    /// Stages the activation of edge `{u, v}` by node `u` for the current
    /// round.
    ///
    /// Returns `Ok(true)` if the activation was staged, `Ok(false)` if the
    /// edge is already active (the model treats this as a no-op).
    ///
    /// # Errors
    ///
    /// * [`SimError::SelfLoop`] if `u == v`.
    /// * [`SimError::NodeOutOfRange`] if an endpoint is out of range.
    /// * [`SimError::NotPotentialNeighbors`] if `u` and `v` do not share a
    ///   common neighbour in the snapshot at the beginning of this round
    ///   (the distance-2 rule of Section 2.1).
    pub fn stage_activation(&mut self, u: NodeId, v: NodeId) -> Result<bool, SimError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(SimError::SelfLoop { node: u });
        }
        if self.current.has_edge(u, v) {
            return Ok(false);
        }
        // Distance-2 rule: `u != v` and non-adjacency are already
        // established, so the common-neighbour probe alone decides it.
        if self.current.common_neighbor(u, v).is_none() {
            return Err(SimError::NotPotentialNeighbors {
                u,
                v,
                round: self.round,
            });
        }
        let e = Edge::new(u, v);
        if self.staged_activation_set.insert(e) {
            self.staged_activations.push(e);
            self.staged_initiators.push(u);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Stages the deactivation of edge `{u, v}` for the current round.
    ///
    /// Returns `Ok(true)` if the deactivation was staged, `Ok(false)` if
    /// the edge is not currently active (a no-op per the model).
    ///
    /// # Errors
    ///
    /// * [`SimError::SelfLoop`] if `u == v`.
    /// * [`SimError::NodeOutOfRange`] if an endpoint is out of range.
    pub fn stage_deactivation(&mut self, u: NodeId, v: NodeId) -> Result<bool, SimError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(SimError::SelfLoop { node: u });
        }
        if !self.current.has_edge(u, v) {
            return Ok(false);
        }
        let e = Edge::new(u, v);
        if self.staged_deactivation_set.insert(e) {
            self.staged_deactivations.push(e);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Stages a whole jump wave in one call: a column of witnessed
    /// activations and a column of deactivations, validated and staged in
    /// a single pass. Semantically identical to calling
    /// [`Network::stage_activation`] for every wave entry and then
    /// [`Network::stage_deactivation`] for every edge of
    /// `deactivations`, but each activation's distance-2 check is two
    /// adjacency probes against the supplied witness instead of a
    /// common-neighbour merge scan (with the full scan as fallback for a
    /// stale witness). Returns the number of operations newly staged;
    /// already-active / already-inactive edges and duplicate stages are
    /// no-ops, exactly as in the per-edge entry points.
    ///
    /// # Errors
    ///
    /// The same errors as the per-edge entry points, discovered in column
    /// order (activations first). On error, entries before the offending
    /// one remain staged — identical to the equivalent per-edge loop.
    pub fn stage_jump_wave(
        &mut self,
        activations: &[WaveActivation],
        deactivations: &[Edge],
    ) -> Result<usize, SimError> {
        let mut staged = 0usize;
        for w in activations {
            let (u, v) = (w.initiator, w.target);
            self.check_node(u)?;
            self.check_node(v)?;
            if u == v {
                return Err(SimError::SelfLoop { node: u });
            }
            if self.current.has_edge(u, v) {
                continue;
            }
            // Distance-2 rule, witness-first: two binary probes confirm
            // the claimed common neighbour; only a stale witness pays for
            // the general merge scan before rejecting.
            let witnessed = w.witness != u
                && w.witness != v
                && self.current.has_edge(u, w.witness)
                && self.current.has_edge(w.witness, v);
            if !witnessed && self.current.common_neighbor(u, v).is_none() {
                return Err(SimError::NotPotentialNeighbors {
                    u,
                    v,
                    round: self.round,
                });
            }
            let e = Edge::new(u, v);
            if self.staged_activation_set.insert(e) {
                self.staged_activations.push(e);
                self.staged_initiators.push(u);
                staged += 1;
            }
        }
        for &e in deactivations {
            self.check_node(e.a)?;
            self.check_node(e.b)?;
            if e.a == e.b {
                return Err(SimError::SelfLoop { node: e.a });
            }
            if !self.current.has_edge(e.a, e.b) {
                continue;
            }
            let canonical = Edge::new(e.a, e.b);
            if self.staged_deactivation_set.insert(canonical) {
                self.staged_deactivations.push(canonical);
                staged += 1;
            }
        }
        Ok(staged)
    }

    /// Number of operations currently staged (activations + deactivations).
    pub fn staged_operations(&self) -> usize {
        self.staged_activations.len() + self.staged_deactivations.len()
    }

    /// Commits the round in progress: applies
    /// `E(i+1) = (E(i) ∪ E_ac(i)) \ E_dac(i)`, updates the metrics, and
    /// advances the round counter.
    ///
    /// Per the paper's conflict rule, an edge staged for both activation
    /// and deactivation in the same round is left untouched ("their actions
    /// have no effect"); with the staging preconditions above this can only
    /// arise from racy higher-level logic and is resolved conservatively.
    pub fn commit_round(&mut self) -> RoundSummary {
        // The columns were filled in stage order (duplicate-free by the
        // hash guards); one sort each restores the canonical order every
        // downstream pass relies on.
        self.staged_activations.sort_unstable();
        self.staged_deactivations.sort_unstable();
        self.staged_activation_set.clear();
        self.staged_deactivation_set.clear();
        // Conflict rule: both columns are sorted, so dropping the common
        // edges is one two-pointer pass over each.
        drop_common_sorted(&mut self.staged_activations, &mut self.staged_deactivations);

        // Validate staged edges against crashed endpoints in one pass: a
        // node crash-stopped mid-round performs no further edge
        // operations, so its staged edges are dropped, not applied. The
        // scan is skipped entirely while no node has crashed.
        if self.any_crashed {
            let crashed = &self.crashed;
            self.staged_activations
                .retain(|e| !crashed[e.a.index()] && !crashed[e.b.index()]);
            self.staged_deactivations
                .retain(|e| !crashed[e.a.index()] && !crashed[e.b.index()]);
        }

        let activations = self.staged_activations.len();
        let deactivations = self.staged_deactivations.len();

        // Apply the staged columns as two batch merge passes over the
        // flat adjacency, updating the incremental activated-degree
        // counters from the per-edge callbacks. Maxima are taken only
        // after both batches are applied, so a node activated and
        // deactivated in the same round is credited with its end-of-round
        // degree, exactly like the old whole-graph scan.
        let staged_activations = std::mem::take(&mut self.staged_activations);
        let staged_deactivations = std::mem::take(&mut self.staged_deactivations);
        let mut touched = std::mem::take(&mut self.commit_touched);
        let mut grew = std::mem::take(&mut self.commit_grew);
        touched.clear();
        grew.clear();
        {
            // The single emission point: every applied mutation goes
            // through `sink.edge`, which records the bus event and keeps
            // the activation counters and degree histogram current.
            let mut sink = EdgeSink {
                initial: &self.initial,
                activated_degree: &mut self.activated_degree,
                activated_now: &mut self.activated_now,
                bus: &mut self.bus,
                ledger: &mut self.ledger,
            };
            // Sharded fast path: the serial batch entry points filter to
            // fresh adds / present removals themselves; here the filters
            // run up front (valid pre-mutation because the conflict pass
            // left the two columns disjoint, so neither batch changes the
            // other's membership) and the per-node block merges run on a
            // worker pool over disjoint arena regions. The sink then
            // fires from the filtered columns in exactly the serial order
            // — adds first, then removals, each ascending — so every
            // observable (snapshot, events, counters, metrics) is
            // byte-identical to the serial path. `apply_batches_sharded`
            // declines small or irregular batches; those take the serial
            // path below, as does the default `commit_threads == 1`.
            let mut sharded = false;
            if self.commit_threads >= 2 {
                let fresh: Vec<Edge> = staged_activations
                    .iter()
                    .copied()
                    .filter(|e| !self.current.has_edge(e.a, e.b))
                    .collect();
                let present: Vec<Edge> = staged_deactivations
                    .iter()
                    .copied()
                    .filter(|e| self.current.has_edge(e.a, e.b))
                    .collect();
                if self
                    .current
                    .apply_batches_sharded(&fresh, &present, self.commit_threads)
                {
                    sharded = true;
                    for &e in &fresh {
                        grew.push(e.a);
                        grew.push(e.b);
                        if sink.edge(e, true) {
                            touched.push(e.a);
                            touched.push(e.b);
                        }
                    }
                    for &e in &present {
                        sink.edge(e, false);
                    }
                }
            }
            if !sharded {
                self.current.add_edges_batch(&staged_activations, |e| {
                    grew.push(e.a);
                    grew.push(e.b);
                    if sink.edge(e, true) {
                        touched.push(e.a);
                        touched.push(e.b);
                    }
                });
                self.current.remove_edges_batch(&staged_deactivations, |e| {
                    sink.edge(e, false);
                });
            }
        }
        for &u in &touched {
            self.ledger.metrics.max_activated_degree = self
                .ledger
                .metrics
                .max_activated_degree
                .max(self.activated_degree[u.index()]);
        }

        // Metrics bookkeeping. The initiator column records one entry per
        // successful stage (including edges later dropped by the conflict
        // rule, matching the old per-stage map), so the per-node maximum
        // is a sort + run-length scan. Initiators that crash-stopped this
        // round are excluded — a crashed node performs no edge
        // operations, consistent with its staged edges being dropped.
        self.ledger.metrics.rounds += 1;
        self.ledger.metrics.total_activations += activations;
        self.ledger.metrics.total_deactivations += deactivations;
        self.ledger.metrics.push_round_activations(activations);
        let mut initiators = std::mem::take(&mut self.staged_initiators);
        initiators.sort_unstable();
        let mut max_per_node = 0usize;
        let mut run = 0usize;
        let mut prev: Option<NodeId> = None;
        for u in initiators {
            if self.crashed[u.index()] {
                continue;
            }
            if prev == Some(u) {
                run += 1;
            } else {
                run = 1;
                prev = Some(u);
            }
            max_per_node = max_per_node.max(run);
        }
        self.ledger.metrics.max_node_activations_in_round = self
            .ledger
            .metrics
            .max_node_activations_in_round
            .max(max_per_node);

        let activated_now = self.activated_now;
        self.ledger.metrics.max_activated_edges =
            self.ledger.metrics.max_activated_edges.max(activated_now);
        self.ledger.metrics.max_active_edges_total = self
            .ledger
            .metrics
            .max_active_edges_total
            .max(self.current.edge_count());
        // The total-degree maximum is sampled at commit instants. Only
        // endpoints that gained an edge this round can raise it.
        for &u in &grew {
            self.ledger.metrics.max_total_degree = self
                .ledger
                .metrics
                .max_total_degree
                .max(self.current.degree(u));
        }
        self.commit_touched = touched;
        self.commit_grew = grew;
        // The traced max_degree is sampled here — after the staged batches
        // applied, before the DST tick injects next-round faults. The
        // degree histogram serves it in O(1) amortized; the old O(n)
        // from-scratch scan stays on as a debug-build differential oracle
        // (and as the `set_trace_from_scratch` benchmark comparison path).
        let max_degree = if self.ledger.trace_enabled {
            if self.ledger.degrees.enabled() {
                let incremental = self.ledger.degrees.max_degree();
                debug_assert_eq!(
                    incremental,
                    self.current.max_degree(),
                    "degree histogram departed from the from-scratch scan at round {}",
                    self.round
                );
                incremental
            } else {
                self.current.max_degree()
            }
        } else {
            0
        };

        let summary = RoundSummary {
            round: self.round,
            activations,
            deactivations,
            activated_edges_now: activated_now,
        };
        // The round boundary closes this round's event run: its edge
        // events precede it, the DST tick's fault events follow it.
        self.bus.record(RoundEvent::RoundCommitted {
            round: summary.round,
            activations,
            deactivations,
        });
        self.ledger.on_round_committed(
            summary.round,
            activations,
            deactivations,
            activated_now,
            max_degree,
        );
        self.round += 1;
        self.tick_dst();
        summary
    }

    /// Charges `k` rounds in which only message passing happens (no edge
    /// operations). Used by the committee-level algorithms to account for
    /// intra-committee communication, whose duration the paper bounds by
    /// the committee diameter.
    ///
    /// # Panics
    ///
    /// Panics if edge operations are currently staged; idle rounds must not
    /// swallow pending operations.
    pub fn advance_idle_rounds(&mut self, k: usize) {
        assert_eq!(
            self.staged_operations(),
            0,
            "cannot charge idle rounds while edge operations are staged"
        );
        for _ in 0..k {
            self.round += 1;
            self.ledger.on_idle_rounds(1);
            self.bus.record(RoundEvent::IdleRound);
            self.tick_dst();
        }
    }

    // ---- fault-injection entry points (crate-private, used by `dst`) ----
    //
    // Adversarial operations bypass the distance-2 validation (the
    // environment is more powerful than the nodes) and are *not* metered:
    // the edge-complexity measures account for the algorithm's work, not
    // the adversary's. The incremental activated-degree counters are kept
    // consistent so invariant checks and `activated_edge_count` stay
    // correct under faults.

    /// Crash-stops `node`: severs all of its incident edges in one merge
    /// pass (not one tree lookup per edge) and marks the node crashed, so
    /// any operations it staged in the round in progress are dropped at
    /// commit. Returns the number of severed edges, or
    /// [`SimError::BrokenInvariant`] when the adjacency arena is corrupted
    /// (sever validates symmetry up front and mutates nothing on error).
    pub(crate) fn fault_crash_node(&mut self, node: NodeId) -> Result<usize, SimError> {
        let mut sink = EdgeSink {
            initial: &self.initial,
            activated_degree: &mut self.activated_degree,
            activated_now: &mut self.activated_now,
            bus: &mut self.bus,
            ledger: &mut self.ledger,
        };
        let severed = self.current.remove_incident_edges(node, |e| {
            sink.edge(e, false);
        })?;
        self.crashed[node.index()] = true;
        self.any_crashed = true;
        // Ordering contract: the severed-edge removals above precede the
        // crash marker.
        self.bus.record(RoundEvent::NodeCrashed(node));
        Ok(severed)
    }

    /// Per-node crash markers (indexed by node id), maintained by
    /// [`Network::fault_crash_node`]. Shared with the DST invariant checks
    /// so they can test membership without a set lookup per edge.
    pub(crate) fn crashed_mask(&self) -> &[bool] {
        &self.crashed
    }

    // ---- armed fault entry points (public, used by `adn-runtime`) ----
    //
    // The asynchronous schedulers deliver crash and churn events *during*
    // an execution (between message deliveries), so the runtime needs the
    // same adversarial operations the synchronous DST harness uses. These
    // wrappers expose exactly the crash/join pair; edge-level perturbation
    // stays the synchronous adversary's private business.

    /// Crash-stops `node` mid-execution: severs all incident edges and
    /// marks the node crashed so later staged operations touching it are
    /// dropped at commit. Returns the number of severed edges. Out-of-range
    /// nodes are ignored (returns `Ok(0)`);
    /// [`SimError::BrokenInvariant`] reports a corrupted adjacency arena
    /// (nothing is mutated in that case).
    pub fn inject_crash(&mut self, node: NodeId) -> Result<usize, SimError> {
        if node.index() >= self.crashed.len() {
            return Ok(0);
        }
        self.fault_crash_node(node)
    }

    /// Appends a fresh, isolated node mid-execution (churn join). The new
    /// node has no edges and no say until an algorithm learns about it.
    pub fn inject_join(&mut self) -> NodeId {
        self.fault_add_node()
    }

    /// Whether `node` has been crash-stopped (out-of-range nodes report
    /// `false`).
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.get(node.index()).copied().unwrap_or(false)
    }

    /// Removes an edge adversarially. Returns true if it was present.
    pub(crate) fn fault_remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let removed = self.current.remove_edge(u, v).unwrap_or(false);
        if removed {
            let mut sink = EdgeSink {
                initial: &self.initial,
                activated_degree: &mut self.activated_degree,
                activated_now: &mut self.activated_now,
                bus: &mut self.bus,
                ledger: &mut self.ledger,
            };
            sink.edge(Edge::new(u, v), false);
        }
        removed
    }

    /// Inserts an edge adversarially. Returns true if it was absent.
    pub(crate) fn fault_insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let added = self.current.add_edge(u, v).unwrap_or(false);
        if added {
            let mut sink = EdgeSink {
                initial: &self.initial,
                activated_degree: &mut self.activated_degree,
                activated_now: &mut self.activated_now,
                bus: &mut self.bus,
                ledger: &mut self.ledger,
            };
            sink.edge(Edge::new(u, v), true);
            // The commit-time degree sampling only looks at endpoints of
            // staged activations; adversarial growth is accounted here.
            self.ledger.metrics.max_total_degree = self
                .ledger
                .metrics
                .max_total_degree
                .max(self.current.degree(u))
                .max(self.current.degree(v));
        }
        added
    }

    /// Appends a fresh, isolated node (churn). The initial network keeps
    /// its original vertex set; every edge of the new node counts as
    /// activated.
    pub(crate) fn fault_add_node(&mut self) -> NodeId {
        let node = self.current.add_node();
        self.activated_degree.push(0);
        self.crashed.push(false);
        self.ledger.on_join();
        // Ordering contract: the join precedes any attach edge insertion.
        self.bus.record(RoundEvent::NodeJoined(node));
        node
    }

    /// Skews time forward by `k` rounds (message-delay perturbation):
    /// rounds pass, nothing happens, the metered round count grows.
    pub(crate) fn fault_skew(&mut self, k: usize) {
        self.round += k;
        self.ledger.on_idle_rounds(k);
        for _ in 0..k {
            self.bus.record(RoundEvent::IdleRound);
        }
    }

    /// Convenience: stages and commits a single activation in its own
    /// round. Mostly used by tests and the centralized strategies.
    ///
    /// # Errors
    ///
    /// Same as [`Network::stage_activation`].
    pub fn activate_in_own_round(
        &mut self,
        u: NodeId,
        v: NodeId,
    ) -> Result<RoundSummary, SimError> {
        self.stage_activation(u, v)?;
        Ok(self.commit_round())
    }

    /// Returns true if the current snapshot is connected.
    pub fn is_connected(&self) -> bool {
        adn_graph::traversal::is_connected(&self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_graph::generators;

    fn nid(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn activation_requires_distance_two() {
        let mut net = Network::new(generators::line(4));
        // 0 and 2 share neighbour 1: allowed.
        assert!(net.stage_activation(nid(0), nid(2)).unwrap());
        // 0 and 3 are at distance 3: rejected.
        assert!(matches!(
            net.stage_activation(nid(0), nid(3)),
            Err(SimError::NotPotentialNeighbors { .. })
        ));
        // Re-staging the same activation is idempotent.
        assert!(!net.stage_activation(nid(0), nid(2)).unwrap());
        let summary = net.commit_round();
        assert_eq!(summary.activations, 1);
        assert!(net.graph().has_edge(nid(0), nid(2)));
        // Next round 0-3 are now at distance 2 (via 2).
        assert!(net.stage_activation(nid(0), nid(3)).unwrap());
        net.commit_round();
        assert!(net.graph().has_edge(nid(0), nid(3)));
        assert_eq!(net.metrics().total_activations, 2);
        assert_eq!(net.round(), 3);
    }

    #[test]
    fn activating_active_edge_is_noop() {
        let mut net = Network::new(generators::line(3));
        assert!(!net.stage_activation(nid(0), nid(1)).unwrap());
        let s = net.commit_round();
        assert_eq!(s.activations, 0);
        assert_eq!(net.metrics().total_activations, 0);
    }

    #[test]
    fn deactivation_requires_active_edge() {
        let mut net = Network::new(generators::line(3));
        assert!(net.stage_deactivation(nid(0), nid(1)).unwrap());
        assert!(
            !net.stage_deactivation(nid(0), nid(2)).unwrap(),
            "inactive edge is a no-op"
        );
        let s = net.commit_round();
        assert_eq!(s.deactivations, 1);
        assert!(!net.graph().has_edge(nid(0), nid(1)));
        assert_eq!(net.metrics().total_deactivations, 1);
    }

    #[test]
    fn self_loops_and_out_of_range_are_rejected() {
        let mut net = Network::new(generators::line(3));
        assert!(matches!(
            net.stage_activation(nid(1), nid(1)),
            Err(SimError::SelfLoop { .. })
        ));
        assert!(matches!(
            net.stage_activation(nid(0), nid(9)),
            Err(SimError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            net.stage_deactivation(nid(9), nid(0)),
            Err(SimError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn conflicting_activation_and_deactivation_cancel() {
        // Build a triangle-free situation where an edge can end up in both
        // sets: activate (0,2) then in the *same* round deactivate it is
        // impossible through the public API (deactivation checks E(i)), so
        // we simulate the conflict rule by staging deactivation of an
        // existing edge and an activation of the same edge: also impossible
        // (activation checks E(i)). The conflict path is therefore only
        // reachable when higher-level logic races; here we just verify that
        // a normal activate-then-commit followed by deactivate-then-commit
        // behaves sequentially.
        let mut net = Network::new(generators::line(3));
        net.stage_activation(nid(0), nid(2)).unwrap();
        net.commit_round();
        net.stage_deactivation(nid(0), nid(2)).unwrap();
        net.commit_round();
        assert!(!net.graph().has_edge(nid(0), nid(2)));
    }

    #[test]
    fn metrics_track_activated_edges_and_degree() {
        // Star with centre 0 on 5 nodes: leaves are pairwise at distance 2.
        let mut net = Network::new(generators::star(5));
        net.stage_activation(nid(1), nid(2)).unwrap();
        net.stage_activation(nid(1), nid(3)).unwrap();
        net.stage_activation(nid(1), nid(4)).unwrap();
        let s = net.commit_round();
        assert_eq!(s.activations, 3);
        assert_eq!(net.metrics().max_activated_edges, 3);
        // Node 1 now has 3 activated edges.
        assert_eq!(net.metrics().max_activated_degree, 3);
        // Total degree of node 1 is 4 (3 activated + 1 initial).
        assert_eq!(net.metrics().max_total_degree, 4);
        assert_eq!(net.metrics().max_node_activations_in_round, 3);
        // Deactivate one; maxima must not decrease.
        net.stage_deactivation(nid(1), nid(2)).unwrap();
        net.commit_round();
        assert_eq!(net.metrics().max_activated_edges, 3);
        assert_eq!(net.activated_edge_count(), 2);
    }

    #[test]
    fn idle_rounds_advance_time_only() {
        let mut net = Network::new(generators::line(4));
        net.advance_idle_rounds(5);
        assert_eq!(net.round(), 6);
        assert_eq!(net.metrics().rounds, 5);
        assert_eq!(net.metrics().total_activations, 0);
        assert_eq!(net.metrics().activations_per_round.len(), 5);
    }

    #[test]
    fn idle_rounds_contribute_zero_activations() {
        // Pin the documented accounting: idle communication rounds and
        // adversarially skewed rounds each contribute an explicit 0 to
        // `activations_per_round`, and the mean's denominator counts
        // them (activations per *elapsed* round, not per committed one).
        let mut net = Network::new(generators::line(4));
        net.stage_activation(nid(0), nid(2)).unwrap();
        net.commit_round();
        net.advance_idle_rounds(2);
        net.fault_skew(1);
        net.stage_activation(nid(1), nid(3)).unwrap();
        net.commit_round();
        let m = net.metrics();
        assert_eq!(m.activations_per_round, vec![1, 0, 0, 0, 1]);
        assert_eq!(m.rounds, 5);
        assert_eq!(m.recorded_rounds(), 5);
        assert_eq!(m.total_activations, 2);
        assert!((m.mean_activations_per_round() - 2.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn history_cap_keeps_network_metrics_exact() {
        let mut net = Network::new(generators::star(6));
        net.set_round_history_limit(Some(2));
        for leaf in [1usize, 2, 3] {
            net.stage_activation(nid(leaf), nid(leaf + 1)).unwrap();
            net.commit_round();
        }
        net.advance_idle_rounds(2);
        let m = net.metrics();
        assert_eq!(m.activations_per_round, vec![1, 1], "capped prefix");
        assert_eq!(m.round_records_dropped, 3);
        assert_eq!(m.recorded_rounds(), 5);
        assert_eq!(m.total_activations, 3);
        assert_eq!(m.max_activations_in_round(), 1);
    }

    #[test]
    fn event_recorder_streams_mutations_and_boundaries_in_order() {
        let mut net = Network::new(generators::line(5));
        net.stage_activation(nid(0), nid(2)).unwrap();
        net.commit_round();
        assert!(
            net.take_events().is_empty(),
            "recorder off by default: nothing recorded"
        );
        net.set_event_recording(true);
        assert!(net.event_recording());
        net.stage_activation(nid(2), nid(4)).unwrap();
        net.stage_deactivation(nid(1), nid(2)).unwrap();
        net.commit_round();
        net.advance_idle_rounds(1);
        let joined = net.inject_join();
        net.fault_remove_edge(nid(0), nid(1));
        net.inject_crash(nid(4)).unwrap();
        let events = net.take_events();
        assert_eq!(
            events,
            vec![
                RoundEvent::Edge {
                    edge: Edge::new(nid(2), nid(4)),
                    added: true,
                    initial: false,
                },
                RoundEvent::Edge {
                    edge: Edge::new(nid(1), nid(2)),
                    added: false,
                    initial: true,
                },
                RoundEvent::RoundCommitted {
                    round: 2,
                    activations: 1,
                    deactivations: 1,
                },
                RoundEvent::IdleRound,
                RoundEvent::NodeJoined(joined),
                RoundEvent::Edge {
                    edge: Edge::new(nid(0), nid(1)),
                    added: false,
                    initial: true,
                },
                RoundEvent::Edge {
                    edge: Edge::new(nid(2), nid(4)),
                    added: false,
                    initial: false,
                },
                RoundEvent::Edge {
                    edge: Edge::new(nid(3), nid(4)),
                    added: false,
                    initial: true,
                },
                RoundEvent::NodeCrashed(nid(4)),
            ],
            "application order, crash removals before the crash marker"
        );
        assert!(net.take_events().is_empty(), "drain empties the tap");
        net.set_event_recording(false);
        assert!(!net.event_recording());
    }

    #[test]
    fn traced_max_degree_matches_from_scratch_scan() {
        let mut incremental = Network::new(generators::star(8));
        let mut scratch = Network::new(generators::star(8));
        incremental.set_trace_enabled(true);
        scratch.set_trace_enabled(true);
        scratch.set_trace_from_scratch(true);
        for i in 1..7 {
            incremental.stage_activation(nid(i), nid(i + 1)).unwrap();
            scratch.stage_activation(nid(i), nid(i + 1)).unwrap();
        }
        incremental.commit_round();
        scratch.commit_round();
        incremental.stage_deactivation(nid(0), nid(4)).unwrap();
        scratch.stage_deactivation(nid(0), nid(4)).unwrap();
        incremental.commit_round();
        scratch.commit_round();
        incremental.fault_crash_node(nid(0)).unwrap();
        scratch.fault_crash_node(nid(0)).unwrap();
        incremental.commit_round();
        scratch.commit_round();
        assert_eq!(incremental.trace(), scratch.trace());
        assert_eq!(incremental.trace()[0].max_degree, 7, "hub at 7 post-wave");
    }

    #[test]
    #[should_panic(expected = "idle rounds")]
    fn idle_rounds_refuse_staged_operations() {
        let mut net = Network::new(generators::line(4));
        net.stage_activation(nid(0), nid(2)).unwrap();
        net.advance_idle_rounds(1);
    }

    #[test]
    fn staged_edges_to_a_node_crashed_in_the_same_round_are_dropped() {
        // Regression: an edge staged *before* the endpoint crash-stops in
        // the same round must be dropped at commit, not applied to the
        // snapshot or counted as an activation.
        let mut net = Network::new(generators::line(5));
        assert!(net.stage_activation(nid(0), nid(2)).unwrap());
        assert!(net.stage_activation(nid(2), nid(4)).unwrap());
        assert!(net.stage_deactivation(nid(2), nid(3)).unwrap());
        let severed = net.fault_crash_node(nid(2));
        assert_eq!(severed, Ok(2), "both line edges of node 2 are severed");
        let s = net.commit_round();
        assert_eq!(s.activations, 0, "crashed-endpoint activations dropped");
        assert_eq!(s.deactivations, 0, "crashed-endpoint deactivations dropped");
        assert!(!net.graph().has_edge(nid(0), nid(2)));
        assert!(!net.graph().has_edge(nid(2), nid(4)));
        assert_eq!(net.metrics().total_activations, 0);
        assert_eq!(net.activated_edge_count(), 0);
        assert_eq!(net.activated_degree(nid(2)), 0);
        // Stages between live nodes in the same round still commit.
        let mut net2 = Network::new(generators::line(5));
        net2.stage_activation(nid(0), nid(2)).unwrap();
        net2.stage_activation(nid(2), nid(4)).unwrap();
        net2.fault_crash_node(nid(4)).unwrap();
        let s2 = net2.commit_round();
        assert_eq!(s2.activations, 1, "only the edge touching node 4 drops");
        assert!(net2.graph().has_edge(nid(0), nid(2)));
        assert!(!net2.graph().has_edge(nid(2), nid(4)));
    }

    #[test]
    fn crash_severs_incident_edges_and_updates_counters() {
        let mut net = Network::new(generators::star(5));
        net.stage_activation(nid(1), nid(2)).unwrap();
        net.stage_activation(nid(3), nid(4)).unwrap();
        net.commit_round();
        assert_eq!(net.activated_edge_count(), 2);
        // Crash the centre: all 4 initial star edges go; activated edges
        // between leaves survive, activated counters are untouched.
        let severed = net.fault_crash_node(nid(0));
        assert_eq!(severed, Ok(4));
        assert_eq!(net.graph().degree(nid(0)), 0);
        assert_eq!(net.activated_edge_count(), 2);
        // Crash a leaf with an activated edge: counters come back down.
        let severed = net.fault_crash_node(nid(1));
        assert_eq!(severed, Ok(1));
        assert_eq!(net.activated_edge_count(), 1);
        assert_eq!(net.activated_degree(nid(2)), 0);
        assert_eq!(net.activated_degree(nid(3)), 1);
    }

    #[test]
    fn edge_delta_hook_records_commits_and_faults_in_order() {
        let mut net = Network::new(generators::line(5));
        assert!(
            net.take_edge_deltas().is_empty(),
            "hook off by default: nothing recorded"
        );
        net.stage_activation(nid(0), nid(2)).unwrap();
        net.commit_round();
        assert!(net.take_edge_deltas().is_empty(), "still off");

        net.set_edge_delta_tracking(true);
        net.stage_activation(nid(2), nid(4)).unwrap();
        net.stage_deactivation(nid(0), nid(1)).unwrap();
        net.commit_round();
        net.fault_insert_edge(nid(0), nid(1));
        net.fault_remove_edge(nid(0), nid(1));
        let deltas = net.take_edge_deltas();
        let expect = |u: usize, v: usize, added: bool| EdgeDelta {
            edge: Edge::new(nid(u), nid(v)),
            added,
        };
        assert_eq!(
            deltas,
            vec![
                expect(2, 4, true),
                expect(0, 1, false),
                expect(0, 1, true),
                expect(0, 1, false),
            ],
            "application order: committed adds, committed removes, faults"
        );
        assert!(
            net.take_edge_deltas().is_empty(),
            "drain empties the buffer"
        );

        // A crash records one removal per severed edge.
        net.fault_crash_node(nid(2)).unwrap();
        let deltas = net.take_edge_deltas();
        assert!(deltas.iter().all(|d| !d.added && d.edge.touches(nid(2))));
        assert_eq!(
            deltas.len(),
            4,
            "line edges 1-2, 2-3 and activated 0-2, 2-4"
        );

        // Disabling clears any pending deltas.
        net.fault_insert_edge(nid(0), nid(1));
        net.set_edge_delta_tracking(false);
        assert!(net.take_edge_deltas().is_empty());
    }

    #[test]
    fn jump_wave_matches_per_edge_staging() {
        // Star with centre 0: every leaf pair is at distance 2 via 0.
        let mut wave_net = Network::new(generators::star(8));
        let mut edge_net = Network::new(generators::star(8));
        let acts: Vec<WaveActivation> = (1..7)
            .map(|i| WaveActivation {
                initiator: nid(i),
                target: nid(i + 1),
                witness: nid(0),
            })
            .collect();
        let deacts = vec![Edge::new(nid(0), nid(3)), Edge::new(nid(0), nid(5))];
        let staged = wave_net.stage_jump_wave(&acts, &deacts).unwrap();
        assert_eq!(staged, acts.len() + deacts.len());
        for w in &acts {
            edge_net.stage_activation(w.initiator, w.target).unwrap();
        }
        for e in &deacts {
            edge_net.stage_deactivation(e.a, e.b).unwrap();
        }
        assert_eq!(wave_net.commit_round(), edge_net.commit_round());
        assert_eq!(wave_net.graph(), edge_net.graph());
        assert_eq!(wave_net.metrics(), edge_net.metrics());
    }

    #[test]
    fn jump_wave_tolerates_stale_witness_and_rejects_non_potential() {
        let mut net = Network::new(generators::line(5));
        // Stale witness (not adjacent to both) but a real common
        // neighbour exists: the fallback scan accepts the activation.
        let staged = net
            .stage_jump_wave(
                &[WaveActivation {
                    initiator: nid(0),
                    target: nid(2),
                    witness: nid(4),
                }],
                &[],
            )
            .unwrap();
        assert_eq!(staged, 1);
        // Distance 3 with a bogus witness: rejected like the per-edge path.
        assert!(matches!(
            net.stage_jump_wave(
                &[WaveActivation {
                    initiator: nid(1),
                    target: nid(4),
                    witness: nid(0),
                }],
                &[],
            ),
            Err(SimError::NotPotentialNeighbors { .. })
        ));
        // Already-active edges and duplicate stages are counted as no-ops.
        let staged = net
            .stage_jump_wave(
                &[
                    WaveActivation {
                        initiator: nid(0),
                        target: nid(1),
                        witness: nid(2),
                    },
                    WaveActivation {
                        initiator: nid(0),
                        target: nid(2),
                        witness: nid(1),
                    },
                ],
                &[],
            )
            .unwrap();
        assert_eq!(staged, 0);
    }

    #[test]
    fn sharded_commit_matches_serial_on_large_waves() {
        // A star is the worst case for the hub block and the best test of
        // the relocation path: stage a large wave of leaf-leaf edges.
        let n = 2048usize;
        let mut serial = Network::new(generators::star(n));
        let mut sharded = Network::new(generators::star(n));
        sharded.set_commit_threads(4);
        assert_eq!(sharded.commit_threads(), 4);
        serial.set_edge_delta_tracking(true);
        sharded.set_edge_delta_tracking(true);
        let acts: Vec<WaveActivation> = (1..n - 1)
            .map(|i| WaveActivation {
                initiator: nid(i),
                target: nid(i + 1),
                witness: nid(0),
            })
            .collect();
        serial.stage_jump_wave(&acts, &[]).unwrap();
        sharded.stage_jump_wave(&acts, &[]).unwrap();
        assert_eq!(serial.commit_round(), sharded.commit_round());
        assert_eq!(serial.graph(), sharded.graph());
        assert_eq!(serial.metrics(), sharded.metrics());
        assert_eq!(serial.take_edge_deltas(), sharded.take_edge_deltas());
        // Second round mixes removals in; both paths agree again.
        let deacts: Vec<Edge> = (1..n / 2).map(|i| Edge::new(nid(i), nid(i + 1))).collect();
        let acts2: Vec<WaveActivation> = (1..n / 2)
            .map(|i| WaveActivation {
                initiator: nid(i),
                target: nid(i + 2),
                witness: nid(i + 1),
            })
            .collect();
        serial.stage_jump_wave(&acts2, &deacts).unwrap();
        sharded.stage_jump_wave(&acts2, &deacts).unwrap();
        assert_eq!(serial.commit_round(), sharded.commit_round());
        assert_eq!(serial.graph(), sharded.graph());
        assert_eq!(serial.metrics(), sharded.metrics());
        assert_eq!(serial.take_edge_deltas(), sharded.take_edge_deltas());
    }

    #[test]
    fn sharded_commit_falls_back_on_small_rounds() {
        let mut net = Network::new(generators::line(4));
        net.set_commit_threads(8);
        net.stage_activation(nid(0), nid(2)).unwrap();
        let s = net.commit_round();
        assert_eq!(s.activations, 1);
        assert!(net.graph().has_edge(nid(0), nid(2)));
    }

    #[test]
    fn activate_in_own_round_helper() {
        let mut net = Network::new(generators::line(3));
        let s = net.activate_in_own_round(nid(0), nid(2)).unwrap();
        assert_eq!(s.activations, 1);
        assert!(net.is_connected());
        assert!(net.is_initial_edge(nid(0), nid(1)));
        assert!(!net.is_initial_edge(nid(0), nid(2)));
    }
}
