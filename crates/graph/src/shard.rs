//! Sharded batch application: the parallel merge half of the network's
//! deterministically-sharded `commit_round`.
//!
//! A committed round is, per node, an independent rewrite of one sorted
//! block: `(old ∪ adds) \ dels`. Blocks are disjoint intervals of the
//! shared arena, so after a serial pre-pass has grown every overflowing
//! block, the arena can be carved into disjoint `&mut` regions at block
//! boundaries and the per-node merges run on a `std::thread::scope` worker
//! pool — entirely safe Rust, no interior mutability, no atomics. The
//! result is *identical* to applying [`Graph::add_edges_batch`] followed
//! by [`Graph::remove_edges_batch`]: which thread merges which block is
//! invisible, because every block's content is a pure function of its old
//! content and its own mutations, and all bookkeeping (lengths, edge
//! count, callbacks) stays serial in canonical order.
//!
//! The entry point *declines* (returns `false`, mutating nothing) instead
//! of panicking when its preconditions do not hold, so callers fall back
//! to the serial batch path rather than crashing mid-round.

use crate::graph::{grow_cap, Edge, PAD};
use crate::{Graph, NodeId};

/// Below this many directed mutations per worker there is nothing to win:
/// thread spawn plus partitioning costs more than the merge itself.
pub const SHARD_MIN_DIRECTED_PER_WORKER: usize = 512;

/// One node's slice of work, expressed relative to the chunk's arena
/// region so the worker never sees an absolute arena offset.
struct WorkItem {
    /// Block offset inside the chunk's region.
    rel_start: usize,
    /// Live length before this round's mutations.
    old_len: usize,
    /// Range of this node's additions in the directed-additions column.
    add_lo: usize,
    add_hi: usize,
    /// Range of this node's removals in the directed-removals column.
    del_lo: usize,
    del_hi: usize,
}

/// Per-node group boundaries over the two directed columns.
struct TouchedNode {
    node: usize,
    add_lo: usize,
    add_hi: usize,
    del_lo: usize,
    del_hi: usize,
}

/// Expands canonical edges into directed `(source, neighbour)` entries,
/// sorted by source then neighbour.
fn directed_column(edges: &[Edge]) -> Vec<(NodeId, NodeId)> {
    let mut directed: Vec<(NodeId, NodeId)> = Vec::with_capacity(2 * edges.len());
    for &e in edges {
        directed.push((e.a, e.b));
        directed.push((e.b, e.a));
    }
    directed.sort_unstable();
    directed
}

/// Merges the two sorted directed columns into per-node groups.
fn group_by_node(adds: &[(NodeId, NodeId)], dels: &[(NodeId, NodeId)]) -> Vec<TouchedNode> {
    let mut touched: Vec<TouchedNode> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < adds.len() || j < dels.len() {
        let node = match (adds.get(i), dels.get(j)) {
            (Some(a), Some(d)) => a.0.min(d.0),
            (Some(a), None) => a.0,
            (None, Some(d)) => d.0,
            (None, None) => break,
        };
        let add_lo = i;
        while i < adds.len() && adds[i].0 == node {
            i += 1;
        }
        let del_lo = j;
        while j < dels.len() && dels[j].0 == node {
            j += 1;
        }
        touched.push(TouchedNode {
            node: node.index(),
            add_lo,
            add_hi: i,
            del_lo,
            del_hi: j,
        });
    }
    touched
}

/// The fused per-node rewrite: a backward in-place merge of the sorted
/// additions (the block has room — capacity was grown serially) followed
/// by a forward compaction dropping the sorted removals. One visit per
/// block instead of the serial path's two global sweeps.
fn rewrite_block(
    region: &mut [NodeId],
    item: &WorkItem,
    adds: &[(NodeId, NodeId)],
    dels: &[(NodeId, NodeId)],
) {
    let adds = &adds[item.add_lo..item.add_hi];
    let dels = &dels[item.del_lo..item.del_hi];
    let grown = item.old_len + adds.len();
    let block = &mut region[item.rel_start..item.rel_start + grown];
    if !adds.is_empty() {
        let mut i = item.old_len;
        let mut j = adds.len();
        let mut w = grown;
        while j > 0 {
            if i > 0 && block[i - 1] > adds[j - 1].1 {
                block[w - 1] = block[i - 1];
                i -= 1;
            } else {
                block[w - 1] = adds[j - 1].1;
                j -= 1;
            }
            w -= 1;
        }
    }
    if !dels.is_empty() {
        let mut j = 0usize;
        let mut w = 0usize;
        for r in 0..grown {
            let v = block[r];
            if j < dels.len() && dels[j].1 == v {
                j += 1;
            } else {
                block[w] = v;
                w += 1;
            }
        }
    }
}

impl Graph {
    /// Applies `adds` then `dels` — both canonical, sorted ascending and
    /// duplicate-free, with every `adds` edge absent and every `dels`
    /// edge present — across a pool of `threads` scoped workers, one
    /// disjoint arena region each. Equivalent to
    /// `add_edges_batch(adds, ..) ; remove_edges_batch(dels, ..)` on the
    /// same input (callbacks excluded — the caller drives those from the
    /// same columns).
    ///
    /// Returns `true` if the batch was applied. Returns `false` — having
    /// mutated **nothing** — when the input does not meet the
    /// preconditions above (unsorted or duplicated columns, out-of-range
    /// endpoints, an add already present, a del absent, overlapping add
    /// and del sets) or when `threads < 2` or the batch is too small to
    /// shard profitably; the caller is expected to fall back to the
    /// serial batch path. Declining instead of panicking keeps the shard
    /// path free of fault-reachable aborts.
    pub fn apply_batches_sharded(&mut self, adds: &[Edge], dels: &[Edge], threads: usize) -> bool {
        if threads < 2 {
            return false;
        }
        let directed_total = 2 * (adds.len() + dels.len());
        if directed_total < 2 * SHARD_MIN_DIRECTED_PER_WORKER {
            return false;
        }
        // Precondition sweep (read-only; all declines happen before any
        // mutation). Sortedness and duplicate-freedom of the canonical
        // columns, in-range endpoints, adds fresh, dels present, and
        // add/del disjointness (implied by fresh + present).
        if adds.windows(2).any(|w| w[0] >= w[1]) || dels.windows(2).any(|w| w[0] >= w[1]) {
            return false;
        }
        for &e in adds {
            if e.b.index() >= self.n || self.has_edge(e.a, e.b) {
                return false;
            }
        }
        for &e in dels {
            if e.b.index() >= self.n || !self.has_edge(e.a, e.b) {
                return false;
            }
        }

        let directed_add = directed_column(adds);
        let directed_del = directed_column(dels);
        let touched = group_by_node(&directed_add, &directed_del);
        if touched.is_empty() {
            return false;
        }

        // Serial pre-pass: grow every block that cannot absorb its
        // additions in place. Compaction is deferred to the end of the
        // call — `compact` squashes every block to `cap == len`, so a
        // mid-pass compaction would strip slack off blocks already grown
        // for their pending additions.
        for t in &touched {
            let need = self.len[t.node] + (t.add_hi - t.add_lo);
            if need > self.cap[t.node] {
                self.relocate_grow(t.node, need);
            }
        }

        // Partition the touched blocks, sorted by arena offset, into
        // contiguous chunks of roughly equal merge work.
        let mut order: Vec<usize> = (0..touched.len()).collect();
        order.sort_unstable_by_key(|&i| self.start[touched[i].node]);
        let workers = threads.min(touched.len());
        let total_work: usize = touched
            .iter()
            .map(|t| self.len[t.node] + (t.add_hi - t.add_lo) + (t.del_hi - t.del_lo))
            .sum();
        let target = total_work.div_ceil(workers).max(1);

        // Each chunk is a run of blocks plus the arena interval that
        // contains exactly those blocks' capacity ranges.
        struct Chunk {
            begin: usize,
            end: usize,
            items: Vec<WorkItem>,
        }
        let mut chunks: Vec<Chunk> = Vec::with_capacity(workers);
        let mut acc = 0usize;
        for &idx in &order {
            let t = &touched[idx];
            let s = self.start[t.node];
            let work = self.len[t.node] + (t.add_hi - t.add_lo) + (t.del_hi - t.del_lo);
            let open_new = match chunks.last() {
                Some(_) => acc >= target && chunks.len() < workers,
                None => true,
            };
            if open_new {
                chunks.push(Chunk {
                    begin: s,
                    end: s + self.cap[t.node],
                    items: Vec::new(),
                });
                acc = 0;
            }
            let chunk = match chunks.last_mut() {
                Some(c) => c,
                None => return false, // unreachable; keep the path panic-free
            };
            chunk.end = s + self.cap[t.node];
            chunk.items.push(WorkItem {
                rel_start: s - chunk.begin,
                old_len: self.len[t.node],
                add_lo: t.add_lo,
                add_hi: t.add_hi,
                del_lo: t.del_lo,
                del_hi: t.del_hi,
            });
            acc += work;
        }

        // Carve the arena into one disjoint mutable region per chunk and
        // run the rewrites on scoped workers; the final chunk runs on the
        // current thread so a two-way shard spawns a single worker.
        {
            let directed_add = &directed_add;
            let directed_del = &directed_del;
            let mut remaining: &mut [NodeId] = &mut self.arena;
            let mut consumed = 0usize;
            std::thread::scope(|scope| {
                let mut inline: Option<(&mut [NodeId], &Chunk)> = None;
                for (c, chunk) in chunks.iter().enumerate() {
                    let (_, rest) =
                        std::mem::take(&mut remaining).split_at_mut(chunk.begin - consumed);
                    let (region, rest) = rest.split_at_mut(chunk.end - chunk.begin);
                    remaining = rest;
                    consumed = chunk.end;
                    if c + 1 == chunks.len() {
                        inline = Some((region, chunk));
                    } else {
                        scope.spawn(move || {
                            for item in &chunk.items {
                                rewrite_block(region, item, directed_add, directed_del);
                            }
                        });
                    }
                }
                if let Some((region, chunk)) = inline {
                    for item in &chunk.items {
                        rewrite_block(region, item, directed_add, directed_del);
                    }
                }
            });
        }

        // Serial bookkeeping: lengths are pure functions of the counts.
        for t in &touched {
            self.len[t.node] = self.len[t.node] + (t.add_hi - t.add_lo) - (t.del_hi - t.del_lo);
        }
        self.edge_count = self.edge_count + adds.len() - dels.len();
        self.maybe_compact();
        true
    }

    /// Moves `u`'s block to the arena tail with capacity for `need`
    /// elements (contents preserved, old slots become dead space). The
    /// caller decides when to compact: the sharded pre-pass must keep the
    /// grown slack intact until its merge has run.
    pub(crate) fn relocate_grow(&mut self, u: usize, need: usize) {
        let s = self.start[u];
        let l = self.len[u];
        let new_cap = grow_cap(self.cap[u], need);
        let new_start = self.arena.len();
        self.arena.reserve(new_cap);
        self.arena.extend_from_within(s..s + l);
        self.arena.resize(new_start + new_cap, PAD);
        self.dead += self.cap[u];
        self.start[u] = new_start;
        self.len[u] = l;
        self.cap[u] = new_cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn nid(i: usize) -> NodeId {
        NodeId(i)
    }

    /// Builds a random graph plus disjoint fresh-add / present-del batches
    /// large enough to clear the sharding threshold.
    fn build_case(seed: u64, n: usize) -> (Graph, Vec<Edge>, Vec<Edge>) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut g = Graph::new(n);
        for _ in 0..4 * n {
            let u = rng.gen_range(0, n);
            let mut v = rng.gen_range(0, n - 1);
            if v >= u {
                v += 1;
            }
            let _ = g.add_edge(nid(u), nid(v));
        }
        let mut adds: Vec<Edge> = Vec::new();
        let mut dels: Vec<Edge> = Vec::new();
        for u in 0..n {
            for &v in g.neighbors_slice(nid(u)) {
                if v.index() > u && rng.gen_bool(0.3) {
                    dels.push(Edge::new(nid(u), v));
                }
            }
        }
        for _ in 0..2 * n {
            let u = rng.gen_range(0, n);
            let mut v = rng.gen_range(0, n - 1);
            if v >= u {
                v += 1;
            }
            let e = Edge::new(nid(u), nid(v));
            if !g.has_edge(e.a, e.b) {
                adds.push(e);
            }
        }
        adds.sort_unstable();
        adds.dedup();
        dels.sort_unstable();
        dels.dedup();
        (g, adds, dels)
    }

    #[test]
    fn sharded_application_matches_serial_batches() {
        for seed in 0u64..6 {
            let (g, adds, dels) = build_case(0xA11CE ^ seed, 192);
            for threads in [2usize, 3, 4, 7] {
                let mut sharded = g.clone();
                let applied = sharded.apply_batches_sharded(&adds, &dels, threads);
                assert!(applied, "seed {seed}: batch large enough to shard");
                let mut serial = g.clone();
                serial.add_edges_batch(&adds, |_| {});
                serial.remove_edges_batch(&dels, |_| {});
                assert_eq!(sharded, serial, "seed {seed} threads {threads}");
                assert!(sharded.check_invariants(), "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn sharded_application_declines_bad_input_without_mutating() {
        let (g, adds, dels) = build_case(77, 192);
        // threads < 2
        let mut c = g.clone();
        assert!(!c.apply_batches_sharded(&adds, &dels, 1));
        assert_eq!(c, g);
        // unsorted adds
        let mut swapped = adds.clone();
        swapped.swap(0, 1);
        let mut c = g.clone();
        assert!(!c.apply_batches_sharded(&swapped, &dels, 4));
        assert_eq!(c, g);
        // an "add" that is already present
        let mut stale = adds.clone();
        stale[0] = dels[0];
        stale.sort_unstable();
        let mut c = g.clone();
        assert!(!c.apply_batches_sharded(&stale, &dels, 4));
        assert_eq!(c, g);
        // a "del" that is absent
        let mut phantom = dels.clone();
        phantom[0] = adds[0];
        phantom.sort_unstable();
        let mut c = g.clone();
        assert!(!c.apply_batches_sharded(&adds, &phantom, 4));
        assert_eq!(c, g);
        // out-of-range endpoint
        let mut oor = adds.clone();
        oor.push(Edge::new(nid(0), nid(100_000)));
        oor.sort_unstable();
        let mut c = g.clone();
        assert!(!c.apply_batches_sharded(&oor, &dels, 4));
        assert_eq!(c, g);
        // too small to shard
        let mut c = g.clone();
        assert!(!c.apply_batches_sharded(&adds[..2], &[], 4));
        assert_eq!(c, g);
    }

    #[test]
    fn sharded_application_survives_fragmented_arenas() {
        // Heavily fragment the arena first (hub growth forces repeated
        // relocations), then shard a batch across it.
        let mut g = Graph::new(2048);
        for v in 1..1024usize {
            g.add_edge(nid(0), nid(v)).unwrap();
        }
        let adds: Vec<Edge> = (1024..2048).map(|v| Edge::new(nid(1), nid(v))).collect();
        let dels: Vec<Edge> = (2..514).map(|v| Edge::new(nid(0), nid(v))).collect();
        let mut sharded = g.clone();
        assert!(sharded.apply_batches_sharded(&adds, &dels, 4));
        let mut serial = g.clone();
        serial.add_edges_batch(&adds, |_| {});
        serial.remove_edges_batch(&dels, |_| {});
        assert_eq!(sharded, serial);
        assert!(sharded.check_invariants());
    }
}
