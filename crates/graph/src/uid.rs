//! UID namespaces and assignments.
//!
//! Every node starts with a unique identifier drawn from a namespace `U`
//! (Section 2.1). Algorithms are comparison based, so only the relative
//! order of UIDs matters; the assignments below control that order, which
//! is exactly what the lower-bound constructions of Section 6 manipulate
//! (the *increasing order ring*, Definition D.8).

use crate::rng::DetRng;
use crate::{NodeId, Uid};

/// How UIDs are assigned to the nodes `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UidAssignment {
    /// Node `i` receives UID `i + 1` (so the maximum-UID node is `n - 1`).
    Sequential,
    /// Node `i` receives UID `n - i` (so the maximum-UID node is `0`).
    Reversed,
    /// UIDs `1..=n` are assigned by a seeded random permutation.
    RandomPermutation {
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// The increasing-order-ring assignment of Definition D.8: node 0 gets
    /// the smallest UID and UIDs increase clockwise (with node indices
    /// interpreted as positions on a ring). Identical to `Sequential` on
    /// the index space, named separately because the lower-bound
    /// experiments require exactly this assignment on a ring topology.
    IncreasingRing,
}

/// A concrete UID assignment for `n` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UidMap {
    uids: Vec<Uid>,
}

impl UidMap {
    /// Builds a UID map for `n` nodes according to `assignment`.
    pub fn new(n: usize, assignment: UidAssignment) -> Self {
        let uids = match assignment {
            UidAssignment::Sequential | UidAssignment::IncreasingRing => {
                (0..n).map(|i| Uid(i as u64 + 1)).collect()
            }
            UidAssignment::Reversed => (0..n).map(|i| Uid((n - i) as u64)).collect(),
            UidAssignment::RandomPermutation { seed } => {
                let mut values: Vec<u64> = (1..=n as u64).collect();
                let mut rng = DetRng::seed_from_u64(seed);
                rng.shuffle(&mut values);
                values.into_iter().map(Uid).collect()
            }
        };
        UidMap { uids }
    }

    /// Builds a UID map directly from explicit values.
    ///
    /// # Panics
    ///
    /// Panics if the values are not pairwise distinct.
    pub fn from_values(values: Vec<u64>) -> Self {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), values.len(), "UIDs must be unique");
        UidMap {
            uids: values.into_iter().map(Uid).collect(),
        }
    }

    /// Number of nodes covered by the map.
    pub fn len(&self) -> usize {
        self.uids.len()
    }

    /// Returns true if the map covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.uids.is_empty()
    }

    /// UID of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn uid(&self, u: NodeId) -> Uid {
        self.uids[u.index()]
    }

    /// The node holding the maximum UID (the node the paper calls
    /// `u_max`), or `None` for an empty map.
    pub fn max_uid_node(&self) -> Option<NodeId> {
        self.uids
            .iter()
            .enumerate()
            .max_by_key(|(_, uid)| **uid)
            .map(|(i, _)| NodeId(i))
    }

    /// The node holding the minimum UID, or `None` for an empty map.
    pub fn min_uid_node(&self) -> Option<NodeId> {
        self.uids
            .iter()
            .enumerate()
            .min_by_key(|(_, uid)| **uid)
            .map(|(i, _)| NodeId(i))
    }

    /// Iterator over `(node, uid)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Uid)> + '_ {
        self.uids.iter().enumerate().map(|(i, &u)| (NodeId(i), u))
    }

    /// The underlying UID vector, indexed by node.
    pub fn as_slice(&self) -> &[Uid] {
        &self.uids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_assignment() {
        let m = UidMap::new(5, UidAssignment::Sequential);
        assert_eq!(m.len(), 5);
        assert!(!m.is_empty());
        assert_eq!(m.uid(NodeId(0)), Uid(1));
        assert_eq!(m.uid(NodeId(4)), Uid(5));
        assert_eq!(m.max_uid_node(), Some(NodeId(4)));
        assert_eq!(m.min_uid_node(), Some(NodeId(0)));
    }

    #[test]
    fn reversed_assignment() {
        let m = UidMap::new(4, UidAssignment::Reversed);
        assert_eq!(m.uid(NodeId(0)), Uid(4));
        assert_eq!(m.max_uid_node(), Some(NodeId(0)));
    }

    #[test]
    fn random_permutation_is_deterministic_and_bijective() {
        let a = UidMap::new(50, UidAssignment::RandomPermutation { seed: 9 });
        let b = UidMap::new(50, UidAssignment::RandomPermutation { seed: 9 });
        assert_eq!(a, b);
        let c = UidMap::new(50, UidAssignment::RandomPermutation { seed: 10 });
        assert_ne!(a, c);
        let mut values: Vec<u64> = a.as_slice().iter().map(|u| u.value()).collect();
        values.sort_unstable();
        assert_eq!(values, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn increasing_ring_matches_sequential() {
        let a = UidMap::new(8, UidAssignment::IncreasingRing);
        let b = UidMap::new(8, UidAssignment::Sequential);
        assert_eq!(a, b);
    }

    #[test]
    fn from_values_and_iter() {
        let m = UidMap::from_values(vec![10, 3, 77]);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs[0], (NodeId(0), Uid(10)));
        assert_eq!(m.max_uid_node(), Some(NodeId(2)));
        assert_eq!(m.min_uid_node(), Some(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn from_values_rejects_duplicates() {
        let _ = UidMap::from_values(vec![1, 2, 2]);
    }

    #[test]
    fn empty_map() {
        let m = UidMap::new(0, UidAssignment::Sequential);
        assert!(m.is_empty());
        assert_eq!(m.max_uid_node(), None);
        assert_eq!(m.min_uid_node(), None);
    }
}
