//! Breadth-first search, distances, diameter, connectivity, spanning trees
//! and Euler tours.

use crate::{Graph, NodeId, RootedTree};
use std::collections::VecDeque;

/// Distances (in hops) from `source` to every node; `None` for unreachable
/// nodes.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<Option<usize>> {
    let n = graph.node_count();
    let mut dist = vec![None; n];
    if source.index() >= n {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &v in graph.neighbors_slice(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Shortest-path distance between `u` and `v`, or `None` if disconnected.
pub fn distance(graph: &Graph, u: NodeId, v: NodeId) -> Option<usize> {
    bfs_distances(graph, u).get(v.index()).copied().flatten()
}

/// Eccentricity of `source`: the maximum distance to any reachable node, or
/// `None` if some node is unreachable (the graph is disconnected).
pub fn eccentricity(graph: &Graph, source: NodeId) -> Option<usize> {
    let dist = bfs_distances(graph, source);
    let mut ecc = 0usize;
    for d in dist {
        match d {
            Some(d) => ecc = ecc.max(d),
            None => return None,
        }
    }
    Some(ecc)
}

/// Diameter of the graph (maximum eccentricity), or `None` if the graph is
/// disconnected or empty.
///
/// Computed by all-pairs BFS: O(n · (n + m)). Every experiment in this
/// reproduction runs on graphs small enough for this to be cheap relative
/// to the simulated executions themselves.
pub fn diameter(graph: &Graph) -> Option<usize> {
    let n = graph.node_count();
    if n == 0 {
        return None;
    }
    let mut best = 0usize;
    for u in graph.nodes() {
        best = best.max(eccentricity(graph, u)?);
    }
    Some(best)
}

/// Returns true if the graph is connected (vacuously true for `n <= 1`).
pub fn is_connected(graph: &Graph) -> bool {
    let n = graph.node_count();
    if n <= 1 {
        return true;
    }
    bfs_distances(graph, NodeId(0)).iter().all(Option::is_some)
}

/// Connected components, each a sorted list of nodes; components are listed
/// in order of their smallest node.
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::new();
        seen[start] = true;
        queue.push_back(NodeId(start));
        while let Some(u) = queue.pop_front() {
            component.push(u);
            for &v in graph.neighbors_slice(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        component.sort();
        components.push(component);
    }
    components
}

/// BFS spanning tree rooted at `root`.
///
/// Returns `None` if the graph is disconnected (a spanning tree does not
/// exist) or `root` is out of range.
pub fn bfs_spanning_tree(graph: &Graph, root: NodeId) -> Option<RootedTree> {
    let n = graph.node_count();
    if root.index() >= n {
        return None;
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[root.index()] = true;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors_slice(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                parent[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    if visited.iter().all(|&b| b) {
        RootedTree::from_parents(root, parent).ok()
    } else {
        None
    }
}

/// An Euler tour (closed walk traversing every tree edge exactly twice) of
/// a rooted tree, as the sequence of visited nodes starting and ending at
/// the root.
///
/// The tour has exactly `2·(n-1) + 1` entries for a tree on `n ≥ 1` nodes.
/// This is the walk the paper's centralized strategy (Theorem 6.3 /
/// Appendix D) uses to build a *virtual ring* with `|V'| ≤ 2·|V|` on which
/// `CutInHalf` is executed.
pub fn euler_tour(tree: &RootedTree) -> Vec<NodeId> {
    fn visit(tree: &RootedTree, u: NodeId, out: &mut Vec<NodeId>) {
        out.push(u);
        for &c in tree.children(u) {
            visit(tree, c, out);
            out.push(u);
        }
    }
    let mut out = Vec::with_capacity(2 * tree.node_count());
    visit(tree, tree.root(), &mut out);
    out
}

/// Collapses an Euler tour into a *virtual line ordering*: the sequence of
/// first appearances of each node along the tour.
///
/// Consecutive entries of the returned ordering are at distance at most 3
/// in the original tree (standard Euler-tour shortcut property); the
/// centralized strategy uses the tour itself, this helper is used by tests
/// and by the analysis layer to sanity-check tour coverage.
pub fn euler_tour_first_visits(tour: &[NodeId], n: usize) -> Vec<NodeId> {
    let mut seen = vec![false; n];
    let mut out = Vec::with_capacity(n);
    for &u in tour {
        if !seen[u.index()] {
            seen[u.index()] = true;
            out.push(u);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn nid(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn distances_on_a_line() {
        let g = generators::line(5);
        let d = bfs_distances(&g, nid(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(distance(&g, nid(0), nid(4)), Some(4));
        assert_eq!(eccentricity(&g, nid(2)), Some(2));
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn disconnected_graphs_report_none() {
        let g = Graph::from_edges(4, vec![(nid(0), nid(1))]).unwrap();
        assert!(!is_connected(&g));
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, nid(0)), None);
        assert_eq!(distance(&g, nid(0), nid(3)), None);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![nid(0), nid(1)]);
    }

    #[test]
    fn ring_diameter_is_half() {
        let g = generators::ring(10);
        assert_eq!(diameter(&g), Some(5));
        assert!(is_connected(&g));
    }

    #[test]
    fn spanning_tree_covers_all_nodes() {
        let g = generators::ring(8);
        let t = bfs_spanning_tree(&g, nid(3)).expect("ring is connected");
        assert_eq!(t.node_count(), 8);
        assert_eq!(t.root(), nid(3));
        // A spanning tree of a connected graph on n nodes has n-1 edges.
        assert_eq!(t.edge_count(), 7);
        // Every non-root node has a parent that is adjacent in the graph.
        for u in g.nodes() {
            if u != t.root() {
                let p = t.parent(u).unwrap();
                assert!(g.has_edge(u, p));
            }
        }
    }

    #[test]
    fn spanning_tree_of_disconnected_graph_is_none() {
        let g = Graph::from_edges(4, vec![(nid(0), nid(1))]).unwrap();
        assert!(bfs_spanning_tree(&g, nid(0)).is_none());
    }

    #[test]
    fn euler_tour_length_and_coverage() {
        let g = generators::line(6);
        let t = bfs_spanning_tree(&g, nid(0)).unwrap();
        let tour = euler_tour(&t);
        assert_eq!(tour.len(), 2 * (6 - 1) + 1);
        assert_eq!(tour.first(), Some(&nid(0)));
        assert_eq!(tour.last(), Some(&nid(0)));
        let firsts = euler_tour_first_visits(&tour, 6);
        assert_eq!(firsts.len(), 6);
    }

    #[test]
    fn euler_tour_consecutive_entries_are_tree_edges() {
        let g = generators::random_connected(40, 0.1, 7);
        let t = bfs_spanning_tree(&g, nid(0)).unwrap();
        let tree_graph = t.to_graph();
        let tour = euler_tour(&t);
        for w in tour.windows(2) {
            assert!(tree_graph.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::new(1);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(0));
        let t = bfs_spanning_tree(&g, nid(0)).unwrap();
        assert_eq!(euler_tour(&t), vec![nid(0)]);
    }
}
