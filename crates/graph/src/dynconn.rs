//! Incremental connectivity over the live subgraph.
//!
//! [`DynConn`] maintains a spanning forest of the subgraph induced by
//! live (non-crashed) nodes, so a per-round connectivity check costs
//! O(1) instead of a fresh BFS: the structure is fed the same edge
//! deltas and crash/join events the network already produces, and pays
//! only for what changed.
//!
//! * **Insertions** union two components in near-constant time: component
//!   labels live in a union-find with path halving and union by size, so
//!   an insert is two finds and at most one link — no relabelling.
//! * **Deletions** of non-tree edges are free (membership probe only).
//!   When a spanning-tree edge dies, the repair searches for a
//!   replacement among the smaller half's neighbourhoods: an alternating
//!   tree walk from both endpoints finds the smaller side in
//!   O(min-side), then that side's graph edges are scanned for one that
//!   crosses back. Only when no replacement exists does the structure
//!   pay for a *scoped rebuild* — relabelling just the severed side with
//!   a fresh component label.
//! * **Crashes** sever all incident edges through the same deletion
//!   path (the caller feeds one removal per severed edge, then the
//!   crash itself), so a crash costs what its severed edges cost.
//!
//! The verdict only depends on the surviving edge set and the live set,
//! never on the order repairs happened in, so batches may be replayed
//! against the post-batch snapshot: a replacement drawn "from the
//! future" of the batch is an edge a later delta would have inserted
//! anyway, and the union-find guard (a replacement must share the
//! pre-split component) keeps cross-component edges of half-applied
//! batches out of the tree.

use crate::graph::Graph;
use crate::NodeId;

/// Sentinel label for dead (crashed) nodes.
const DEAD: usize = usize::MAX;

/// An incrementally maintained spanning forest over the live subgraph.
/// See the [module docs](self) for the maintenance strategy.
///
/// The structure mirrors a [`Graph`] it does not own: the caller replays
/// every mutation (in application order) through [`DynConn::insert_edge`],
/// [`DynConn::remove_edge`], [`DynConn::add_node`] and [`DynConn::crash`],
/// passing the post-batch snapshot to the removal path so repairs can
/// scan real neighbourhoods for replacement edges.
#[derive(Debug, Clone, Default)]
pub struct DynConn {
    /// Component label slot per node (`DEAD` once crashed). Slots are
    /// resolved through the union-find below.
    label: Vec<usize>,
    /// Union-find over label slots: parent per slot.
    parent: Vec<usize>,
    /// Live member count per slot (meaningful at roots; drives union by
    /// size and sizes the scoped rebuild of a split).
    size: Vec<usize>,
    /// Spanning-forest adjacency (tree edges only, both directions).
    tree: Vec<Vec<NodeId>>,
    alive: Vec<bool>,
    live_count: usize,
    live_components: usize,
    /// Repair scratch: stamped visit marks plus the two side worklists of
    /// the alternating walk, reused so steady-state repairs allocate
    /// nothing.
    stamp: u64,
    mark: Vec<u64>,
    side_a: Vec<NodeId>,
    side_b: Vec<NodeId>,
}

impl DynConn {
    /// Builds the forest for the whole graph (every node live).
    pub fn from_graph(graph: &Graph) -> Self {
        Self::from_graph_with_crashed(graph, &[])
    }

    /// Builds the forest for the subgraph induced by nodes whose
    /// `crashed` entry is unset (missing entries count as live). One BFS
    /// per live component seeds the spanning forest and the component
    /// labels.
    pub fn from_graph_with_crashed(graph: &Graph, crashed: &[bool]) -> Self {
        let n = graph.node_count();
        let is_dead = |u: usize| crashed.get(u).copied().unwrap_or(false);
        let mut conn = DynConn {
            label: vec![DEAD; n],
            parent: Vec::new(),
            size: Vec::new(),
            tree: vec![Vec::new(); n],
            alive: (0..n).map(|u| !is_dead(u)).collect(),
            live_count: 0,
            live_components: 0,
            stamp: 0,
            mark: vec![0; n],
            side_a: Vec::new(),
            side_b: Vec::new(),
        };
        conn.live_count = conn.alive.iter().filter(|&&a| a).count();
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if !conn.alive[start] || conn.label[start] != DEAD {
                continue;
            }
            let slot = conn.alloc_slot(0);
            conn.live_components += 1;
            let mut members = 0usize;
            conn.label[start] = slot;
            queue.push_back(NodeId(start));
            while let Some(u) = queue.pop_front() {
                members += 1;
                for &v in graph.neighbors_slice(u) {
                    if conn.alive[v.index()] && conn.label[v.index()] == DEAD {
                        conn.label[v.index()] = slot;
                        conn.tree[u.index()].push(v);
                        conn.tree[v.index()].push(u);
                        queue.push_back(v);
                    }
                }
            }
            conn.size[slot] = members;
        }
        conn
    }

    /// Number of tracked nodes (live and crashed).
    pub fn node_count(&self) -> usize {
        self.label.len()
    }

    /// Number of live (non-crashed) nodes.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Number of connected components among the live nodes.
    pub fn live_components(&self) -> usize {
        self.live_components
    }

    /// True iff the live subgraph is connected (vacuously for one or
    /// zero live nodes) — the same verdict a BFS over the live subgraph
    /// would return, in O(1).
    pub fn is_connected(&self) -> bool {
        self.live_components <= 1
    }

    /// Appends a fresh live node as its own singleton component (churn
    /// join). The new node's id must equal the mirrored graph's new id.
    pub fn add_node(&mut self) -> NodeId {
        let node = NodeId(self.label.len());
        let slot = self.alloc_slot(1);
        self.label.push(slot);
        self.tree.push(Vec::new());
        self.alive.push(true);
        self.mark.push(0);
        self.live_count += 1;
        self.live_components += 1;
        node
    }

    /// Records the insertion of edge `{u, v}`: two finds and at most one
    /// union-by-size link. Edges between distinct components become tree
    /// edges; intra-component edges need no bookkeeping (the repair path
    /// rediscovers them by scanning the graph). Edges touching a dead
    /// node are ignored.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) {
        if !self.alive[u.index()] || !self.alive[v.index()] {
            debug_assert!(false, "insert through a crashed endpoint {u}-{v}");
            return;
        }
        let ru = self.find(self.label[u.index()]);
        let rv = self.find(self.label[v.index()]);
        if ru == rv {
            return;
        }
        let (big, small) = if self.size[ru] >= self.size[rv] {
            (ru, rv)
        } else {
            (rv, ru)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.tree[u.index()].push(v);
        self.tree[v.index()].push(u);
        self.live_components -= 1;
    }

    /// Records the removal of edge `{u, v}`. `graph` must be the
    /// snapshot *after* the removal (for batches: after the whole
    /// batch); its neighbourhoods are scanned for a replacement when a
    /// tree edge dies. Non-tree removals cost one adjacency probe.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId, graph: &Graph) {
        if !self.alive[u.index()] || !self.alive[v.index()] {
            return;
        }
        let Some(pos) = self.tree[u.index()].iter().position(|&x| x == v) else {
            return; // non-tree edge: the forest is untouched
        };
        self.tree[u.index()].swap_remove(pos);
        let pos_v = self.tree[v.index()]
            .iter()
            .position(|&x| x == u)
            .expect("tree adjacency is symmetric");
        self.tree[v.index()].swap_remove(pos_v);
        self.repair(u, v, graph);
    }

    /// Marks `node` crashed. Every incident edge must already have been
    /// replayed as removed (the network severs before it marks), so the
    /// node is a tree-isolated singleton component by the time the crash
    /// arrives; `graph` covers the defensive path that severs any tree
    /// edge the caller failed to replay.
    pub fn crash(&mut self, node: NodeId, graph: &Graph) {
        if !self.alive[node.index()] {
            return;
        }
        debug_assert!(
            self.tree[node.index()].is_empty(),
            "crash of {node} before its severed edges were replayed"
        );
        while let Some(&t) = self.tree[node.index()].last() {
            self.remove_edge(node, t, graph);
        }
        let root = self.find(self.label[node.index()]);
        debug_assert_eq!(self.size[root], 1, "crashing node was not isolated");
        self.size[root] = self.size[root].saturating_sub(1);
        self.alive[node.index()] = false;
        self.label[node.index()] = DEAD;
        self.live_count -= 1;
        self.live_components -= 1;
    }

    fn alloc_slot(&mut self, members: usize) -> usize {
        let slot = self.parent.len();
        self.parent.push(slot);
        self.size.push(members);
        slot
    }

    /// Union-find lookup with path halving.
    fn find(&mut self, mut slot: usize) -> usize {
        while self.parent[slot] != slot {
            self.parent[slot] = self.parent[self.parent[slot]];
            slot = self.parent[slot];
        }
        slot
    }

    /// Repairs the forest after tree edge `{u, v}` died: walk the two
    /// severed halves' trees alternately (one expansion each per step,
    /// so the cost is twice the smaller half), then scan the smaller
    /// half's graph neighbourhoods for an edge crossing back to the
    /// rest of the old component. Found: it becomes the new tree edge
    /// and the component stays whole. Not found: the component really
    /// split — the scoped rebuild relabels just the severed side.
    fn repair(&mut self, u: NodeId, v: NodeId, graph: &Graph) {
        let mark_a = self.stamp + 1;
        let mark_b = self.stamp + 2;
        self.stamp += 2;
        let mut side_a = std::mem::take(&mut self.side_a);
        let mut side_b = std::mem::take(&mut self.side_b);
        side_a.clear();
        side_b.clear();
        side_a.push(u);
        side_b.push(v);
        self.mark[u.index()] = mark_a;
        self.mark[v.index()] = mark_b;
        let (mut ia, mut ib) = (0usize, 0usize);
        // The first walk to exhaust its worklist has enumerated the
        // smaller (or equal) side; the walks cannot meet because the
        // dead tree edge was already unlinked.
        let a_is_smaller = loop {
            if ia == side_a.len() {
                break true;
            }
            let x = side_a[ia];
            ia += 1;
            for &y in &self.tree[x.index()] {
                if self.mark[y.index()] != mark_a {
                    self.mark[y.index()] = mark_a;
                    side_a.push(y);
                }
            }
            if ib == side_b.len() {
                break false;
            }
            let x = side_b[ib];
            ib += 1;
            for &y in &self.tree[x.index()] {
                if self.mark[y.index()] != mark_b {
                    self.mark[y.index()] = mark_b;
                    side_b.push(y);
                }
            }
        };
        let (side, side_mark) = if a_is_smaller {
            (&side_a, mark_a)
        } else {
            (&side_b, mark_b)
        };
        // Both halves still resolve to the pre-split root; a replacement
        // must cross out of the side but stay inside that component (the
        // root guard rejects edges of half-applied batches that reach
        // into other components). The bounds guard rejects neighbors the
        // forest does not know yet — the final-snapshot adjacency can
        // already reference a node whose `NodeJoined` event sits later
        // in the same batch; its insert events re-union any split this
        // skip causes.
        let old_root = self.find(self.label[u.index()]);
        let mut replacement: Option<(NodeId, NodeId)> = None;
        'scan: for &x in side {
            for &y in graph.neighbors_slice(x) {
                if y.index() < self.alive.len()
                    && self.alive[y.index()]
                    && self.mark[y.index()] != side_mark
                    && self.find(self.label[y.index()]) == old_root
                {
                    replacement = Some((x, y));
                    break 'scan;
                }
            }
        }
        match replacement {
            Some((x, y)) => {
                self.tree[x.index()].push(y);
                self.tree[y.index()].push(x);
            }
            None => {
                // Scoped rebuild: only the severed side changes label.
                let split = self.alloc_slot(side.len());
                for &x in side {
                    self.label[x.index()] = split;
                }
                self.size[old_root] -= side.len();
                self.live_components += 1;
            }
        }
        self.side_a = side_a;
        self.side_b = side_b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal;

    /// Reference verdict: live-component count by repeated BFS.
    fn reference_components(graph: &Graph, alive: &[bool]) -> usize {
        let n = graph.node_count();
        let mut seen = vec![false; n];
        let mut components = 0usize;
        for s in 0..n {
            if !alive[s] || seen[s] {
                continue;
            }
            components += 1;
            seen[s] = true;
            let mut queue = std::collections::VecDeque::from([NodeId(s)]);
            while let Some(u) = queue.pop_front() {
                for &v in graph.neighbors_slice(u) {
                    if alive[v.index()] && !seen[v.index()] {
                        seen[v.index()] = true;
                        queue.push_back(v);
                    }
                }
            }
        }
        components
    }

    fn assert_agrees(conn: &DynConn, graph: &Graph, alive: &[bool]) {
        assert_eq!(
            conn.live_components(),
            reference_components(graph, alive),
            "component count diverged"
        );
        assert_eq!(conn.live_count(), alive.iter().filter(|&&a| a).count());
    }

    #[test]
    fn builds_components_of_initial_graph() {
        let line = generators::line(8);
        let conn = DynConn::from_graph(&line);
        assert!(conn.is_connected());
        assert_eq!(conn.live_components(), 1);
        assert_eq!(conn.live_count(), 8);

        // Two disjoint edges + two isolated nodes = 4 components.
        let mut g = Graph::new(6);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(2), NodeId(3)).unwrap();
        let conn = DynConn::from_graph(&g);
        assert_eq!(conn.live_components(), 4);
        assert!(!conn.is_connected());
    }

    #[test]
    fn tree_edge_removal_without_replacement_splits() {
        let mut g = generators::line(6);
        let mut conn = DynConn::from_graph(&g);
        g.remove_edge(NodeId(2), NodeId(3)).unwrap();
        conn.remove_edge(NodeId(2), NodeId(3), &g);
        assert_eq!(conn.live_components(), 2);
        assert!(!conn.is_connected());
        // Re-inserting merges back.
        g.add_edge(NodeId(2), NodeId(3)).unwrap();
        conn.insert_edge(NodeId(2), NodeId(3));
        assert!(conn.is_connected());
    }

    #[test]
    fn tree_edge_removal_with_replacement_stays_connected() {
        // Ring: every tree-edge removal has the other way around as a
        // replacement.
        let mut g = generators::ring(8);
        let mut conn = DynConn::from_graph(&g);
        g.remove_edge(NodeId(0), NodeId(1)).unwrap();
        conn.remove_edge(NodeId(0), NodeId(1), &g);
        assert!(
            conn.is_connected(),
            "the ring stays connected minus one edge"
        );
        g.remove_edge(NodeId(4), NodeId(5)).unwrap();
        conn.remove_edge(NodeId(4), NodeId(5), &g);
        assert!(!conn.is_connected(), "two opposite cuts split the ring");
        assert_eq!(conn.live_components(), 2);
    }

    #[test]
    fn crash_isolates_and_join_grows() {
        let mut g = generators::star(5);
        let mut alive = vec![true; 5];
        let mut conn = DynConn::from_graph(&g);
        // Sever the centre's edges, then crash it: 4 leaves remain, all
        // isolated.
        let severed: Vec<NodeId> = g.neighbors_slice(NodeId(0)).to_vec();
        for v in severed {
            g.remove_edge(NodeId(0), v).unwrap();
            conn.remove_edge(NodeId(0), v, &g);
        }
        conn.crash(NodeId(0), &g);
        alive[0] = false;
        assert_agrees(&conn, &g, &alive);
        assert_eq!(conn.live_components(), 4);
        // A join attaches to leaf 1.
        let node = g.add_node();
        let joined = conn.add_node();
        assert_eq!(node, joined);
        alive.push(true);
        assert_eq!(conn.live_components(), 5);
        g.add_edge(node, NodeId(1)).unwrap();
        conn.insert_edge(node, NodeId(1));
        assert_agrees(&conn, &g, &alive);
    }

    #[test]
    fn randomized_differential_against_bfs_reference() {
        let mut rng = crate::rng::DetRng::seed_from_u64(0xD1FF);
        for trial in 0..40 {
            let n = 6 + (trial % 9);
            let mut g = generators::random_line_with_chords(n, n / 2, trial as u64);
            let mut conn = DynConn::from_graph(&g);
            let mut alive = vec![true; g.node_count()];
            for _ in 0..60 {
                match rng.gen_range(0, 4) {
                    0 => {
                        // Insert a random absent live-live edge.
                        let u = rng.gen_range(0, g.node_count());
                        let v = rng.gen_range(0, g.node_count());
                        if u != v && alive[u] && alive[v] && !g.has_edge(NodeId(u), NodeId(v)) {
                            g.add_edge(NodeId(u), NodeId(v)).unwrap();
                            conn.insert_edge(NodeId(u), NodeId(v));
                        }
                    }
                    1 => {
                        // Remove a random present edge.
                        let edges = g.edge_vec();
                        if !edges.is_empty() {
                            let e = edges[rng.gen_range(0, edges.len())];
                            if alive[e.a.index()] && alive[e.b.index()] {
                                g.remove_edge(e.a, e.b).unwrap();
                                conn.remove_edge(e.a, e.b, &g);
                            }
                        }
                    }
                    2 => {
                        // Crash a random live node (keep two alive).
                        if alive.iter().filter(|&&a| a).count() > 2 {
                            let u = rng.gen_range(0, g.node_count());
                            if alive[u] {
                                let severed: Vec<NodeId> = g.neighbors_slice(NodeId(u)).to_vec();
                                for v in severed {
                                    g.remove_edge(NodeId(u), v).unwrap();
                                    conn.remove_edge(NodeId(u), v, &g);
                                }
                                conn.crash(NodeId(u), &g);
                                alive[u] = false;
                            }
                        }
                    }
                    _ => {
                        // Join attached to a random live node.
                        let live: Vec<usize> = (0..g.node_count()).filter(|&i| alive[i]).collect();
                        let at = live[rng.gen_range(0, live.len())];
                        let node = g.add_node();
                        conn.add_node();
                        alive.push(true);
                        g.add_edge(node, NodeId(at)).unwrap();
                        conn.insert_edge(node, NodeId(at));
                    }
                }
                assert_agrees(&conn, &g, &alive);
            }
        }
    }

    #[test]
    fn batch_replay_against_post_batch_snapshot_is_exact() {
        // Replay a batch out of lockstep: mutate the graph fully first,
        // then feed the deltas in application order against the *final*
        // snapshot — the contract the DST harness uses (it drains one
        // round's deltas after the commit already happened).
        let mut g = generators::ring(10);
        let mut conn = DynConn::from_graph(&g);
        let batch_removed = [
            Edge::new(NodeId(0), NodeId(1)),
            Edge::new(NodeId(5), NodeId(6)),
        ];
        let batch_added = [Edge::new(NodeId(1), NodeId(6))];
        for e in &batch_removed {
            g.remove_edge(e.a, e.b).unwrap();
        }
        for e in &batch_added {
            g.add_edge(e.a, e.b).unwrap();
        }
        for e in &batch_removed {
            conn.remove_edge(e.a, e.b, &g);
        }
        for e in &batch_added {
            conn.insert_edge(e.a, e.b);
        }
        let alive = vec![true; g.node_count()];
        assert_agrees(&conn, &g, &alive);
        assert!(conn.is_connected(), "the chord bridges both ring cuts");
        assert!(traversal::is_connected(&g));
    }

    use crate::Edge;

    #[test]
    fn from_graph_with_crashed_skips_dead_nodes() {
        let g = generators::line(5);
        let conn = DynConn::from_graph_with_crashed(&g, &[false, false, true, false, false]);
        assert_eq!(conn.live_count(), 4);
        assert_eq!(conn.live_components(), 2, "the dead middle splits the line");
        assert!(!conn.is_connected());
    }

    #[test]
    fn repair_skips_neighbors_not_yet_joined() {
        // A removal event can replay before a `NodeJoined` event of the
        // same batch: the final graph snapshot then exposes adjacency to
        // a node the forest does not know yet. The replacement scan must
        // skip it, and the join's own events must mend the split.
        let mut g = generators::line(3); // 0-1-2
        let mut conn = DynConn::from_graph(&g);
        let joined = g.add_node();
        g.add_edge(NodeId(1), joined).unwrap();
        g.add_edge(NodeId(2), joined).unwrap();
        g.remove_edge(NodeId(1), NodeId(2)).unwrap();
        // The scan over node 2's final-snapshot neighborhood sees only
        // the not-yet-joined node: no usable replacement, scoped split.
        conn.remove_edge(NodeId(1), NodeId(2), &g);
        assert_eq!(conn.live_components(), 2);
        // Replaying the rest of the batch re-unions through the joiner.
        assert_eq!(conn.add_node(), joined);
        conn.insert_edge(NodeId(1), joined);
        conn.insert_edge(NodeId(2), joined);
        assert!(conn.is_connected());
        assert_agrees(&conn, &g, &[true; 4]);
    }
}
