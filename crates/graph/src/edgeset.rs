//! A flat, sorted edge set.
//!
//! The reconfiguration algorithms thread small "protected edge" sets
//! through the subroutines (ring edges a tree rebuild must not drop) and
//! build per-phase edge sets (merged-ring edges, final tree edges). These
//! sets are built once and then only probed, so a sorted `Vec<Edge>` with
//! binary-search membership beats a `BTreeSet<Edge>`: construction is one
//! sort over a contiguous buffer, probes are cache-friendly, and iteration
//! is a slice walk — in the same ascending order the `BTreeSet` form used,
//! so deterministic executions are preserved.

use crate::{Edge, NodeId};

/// A sorted, duplicate-free set of [`Edge`]s backed by a flat `Vec`.
///
/// Build it in bulk (`from_vec`, `collect()`, `extend`) and probe it with
/// [`SortedEdgeSet::contains`]; ascending iteration order matches the
/// `BTreeSet<Edge>` representation it replaces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SortedEdgeSet {
    edges: Vec<Edge>,
}

impl SortedEdgeSet {
    /// The empty set.
    pub fn new() -> Self {
        SortedEdgeSet::default()
    }

    /// Builds the set from an arbitrary vector (one sort + dedup pass).
    pub fn from_vec(mut edges: Vec<Edge>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        SortedEdgeSet { edges }
    }

    /// Builds the set of the edges between consecutive entries of `cycle`,
    /// closing the cycle (last back to first) when it has at least three
    /// nodes — the shape of a committee ring's edge set.
    pub fn ring_edges(cycle: &[NodeId]) -> Self {
        let mut edges: Vec<Edge> = cycle.windows(2).map(|w| Edge::new(w[0], w[1])).collect();
        if cycle.len() >= 3 {
            edges.push(Edge::new(cycle[cycle.len() - 1], cycle[0]));
        }
        SortedEdgeSet::from_vec(edges)
    }

    /// True if `e` is in the set (binary search).
    pub fn contains(&self, e: &Edge) -> bool {
        self.edges.binary_search(e).is_ok()
    }

    /// Inserts `e`, returning true if it was absent.
    pub fn insert(&mut self, e: Edge) -> bool {
        match self.edges.binary_search(&e) {
            Ok(_) => false,
            Err(pos) => {
                self.edges.insert(pos, e);
                true
            }
        }
    }

    /// Number of edges in the set.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the set has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges as a sorted slice.
    pub fn as_slice(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterates the edges in ascending (canonical) order.
    pub fn iter(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }
}

impl FromIterator<Edge> for SortedEdgeSet {
    fn from_iter<I: IntoIterator<Item = Edge>>(iter: I) -> Self {
        SortedEdgeSet::from_vec(iter.into_iter().collect())
    }
}

impl IntoIterator for SortedEdgeSet {
    type Item = Edge;
    type IntoIter = std::vec::IntoIter<Edge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.into_iter()
    }
}

impl<'a> IntoIterator for &'a SortedEdgeSet {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: usize, b: usize) -> Edge {
        Edge::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let set = SortedEdgeSet::from_vec(vec![e(3, 1), e(0, 2), e(1, 3), e(0, 1)]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.as_slice(), &[e(0, 1), e(0, 2), e(1, 3)]);
        assert!(set.contains(&e(1, 3)));
        assert!(set.contains(&e(3, 1)), "canonical form is order-free");
        assert!(!set.contains(&e(2, 3)));
    }

    #[test]
    fn matches_btreeset_iteration_order() {
        use std::collections::BTreeSet;
        let edges = vec![e(5, 2), e(1, 9), e(0, 3), e(2, 5), e(4, 8)];
        let reference: BTreeSet<Edge> = edges.iter().copied().collect();
        let flat: SortedEdgeSet = edges.into_iter().collect();
        assert!(flat.iter().copied().eq(reference.iter().copied()));
        assert_eq!(flat.len(), reference.len());
    }

    #[test]
    fn insert_keeps_order_and_reports_novelty() {
        let mut set = SortedEdgeSet::new();
        assert!(set.is_empty());
        assert!(set.insert(e(2, 4)));
        assert!(set.insert(e(0, 1)));
        assert!(!set.insert(e(4, 2)));
        assert_eq!(set.as_slice(), &[e(0, 1), e(2, 4)]);
    }

    #[test]
    fn ring_edges_close_cycles_of_three_or_more() {
        let ring: Vec<NodeId> = [4usize, 1, 7].into_iter().map(NodeId).collect();
        let set = SortedEdgeSet::ring_edges(&ring);
        assert_eq!(set.as_slice(), &[e(1, 4), e(1, 7), e(4, 7)]);
        // Pairs have a single edge, singletons none.
        assert_eq!(SortedEdgeSet::ring_edges(&ring[..2]).as_slice(), &[e(1, 4)]);
        assert!(SortedEdgeSet::ring_edges(&ring[..1]).is_empty());
        assert!(SortedEdgeSet::ring_edges(&[]).is_empty());
    }
}
