//! Generators for the initial-network and target-network families used in
//! the paper and its reproduction experiments.
//!
//! All random generators are deterministic given a seed (they use the
//! crate's own [`DetRng`]), so every experiment in this repository is
//! reproducible.

use crate::rng::DetRng;
use crate::{Graph, NodeId, RootedTree};

fn nid(i: usize) -> NodeId {
    NodeId(i)
}

/// Spanning line (path) `v0 - v1 - … - v{n-1}`.
///
/// The paper's canonical worst case: diameter `n - 1`.
pub fn line(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(nid(i - 1), nid(i)).expect("valid line edge");
    }
    g
}

/// Ring (cycle) on `n` nodes. For `n < 3` this degenerates to a line.
pub fn ring(n: usize) -> Graph {
    let mut g = line(n);
    if n >= 3 {
        g.add_edge(nid(n - 1), nid(0)).expect("valid closing edge");
    }
    g
}

/// Spanning star centred at node `0` (the target family of `GraphToStar`,
/// i.e. a Depth-1 tree).
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(nid(0), nid(i)).expect("valid star edge");
    }
    g
}

/// Complete graph `K_n` (the result of the clique-formation baseline).
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(nid(i), nid(j)).expect("valid clique edge");
        }
    }
    g
}

/// Complete binary tree on `n` nodes in heap order (node `i` has children
/// `2i+1` and `2i+2`), rooted at node `0`.
pub fn complete_binary_tree(n: usize) -> Graph {
    complete_kary_tree(n, 2)
}

/// Complete `k`-ary tree on `n` nodes in heap order, rooted at node `0`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn complete_kary_tree(n: usize, k: usize) -> Graph {
    assert!(k >= 1, "arity must be at least 1");
    let mut g = Graph::new(n);
    for i in 1..n {
        let parent = (i - 1) / k;
        g.add_edge(nid(parent), nid(i)).expect("valid tree edge");
    }
    g
}

/// Rooted view of the heap-ordered complete `k`-ary tree on `n` nodes.
pub fn complete_kary_rooted(n: usize, k: usize) -> RootedTree {
    let g = complete_kary_tree(n, k);
    RootedTree::from_tree_graph(&g, nid(0)).expect("k-ary tree is a tree")
}

/// Wreath graph: the union of a ring on `n` nodes and a complete binary
/// tree spanning the ring (Definition 4.1 of the paper).
///
/// The ring is `0 - 1 - … - n-1 - 0` and the tree is the heap-ordered
/// complete binary tree rooted at node `0`.
pub fn wreath(n: usize) -> Graph {
    ring(n).union(&complete_binary_tree(n))
}

/// Thin wreath graph: the union of a ring on `n` nodes and a complete
/// `k`-ary tree spanning the ring, with `k = max(2, ⌈log2 n⌉)` —
/// the polylogarithmic-degree gadget of Section 5.
pub fn thin_wreath(n: usize) -> Graph {
    let k = (usize::BITS - n.max(2).leading_zeros()) as usize;
    ring(n).union(&complete_kary_tree(n, k.max(2)))
}

/// 2-dimensional grid graph with `rows × cols` nodes (row-major indexing).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut g = Graph::new(n);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                g.add_edge(nid(i), nid(i + 1)).expect("valid grid edge");
            }
            if r + 1 < rows {
                g.add_edge(nid(i), nid(i + cols)).expect("valid grid edge");
            }
        }
    }
    g
}

/// `d`-dimensional hypercube on `2^d` nodes.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for i in 0..n {
        for bit in 0..d {
            let j = i ^ (1usize << bit);
            if j > i {
                g.add_edge(nid(i), nid(j)).expect("valid hypercube edge");
            }
        }
    }
    g
}

/// Caterpillar: a spine line on `spine` nodes, each spine node carrying
/// `legs` pendant leaves. Total node count `spine * (1 + legs)`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine * (1 + legs);
    let mut g = Graph::new(n);
    for i in 1..spine {
        g.add_edge(nid(i - 1), nid(i)).expect("valid spine edge");
    }
    for s in 0..spine {
        for l in 0..legs {
            let leaf = spine + s * legs + l;
            g.add_edge(nid(s), nid(leaf)).expect("valid leg edge");
        }
    }
    g
}

/// Lollipop: a clique on `clique` nodes attached to a path on `tail` nodes.
/// Total node count `clique + tail`.
pub fn lollipop(clique: usize, tail: usize) -> Graph {
    let n = clique + tail;
    let mut g = Graph::new(n);
    for i in 0..clique {
        for j in (i + 1)..clique {
            g.add_edge(nid(i), nid(j)).expect("valid clique edge");
        }
    }
    for i in 0..tail {
        let prev = if i == 0 {
            clique.saturating_sub(1)
        } else {
            clique + i - 1
        };
        if n > 1 {
            g.add_edge(nid(prev), nid(clique + i))
                .expect("valid tail edge");
        }
    }
    g
}

/// Uniform random recursive tree on `n` nodes: node `i` attaches to a
/// uniformly random earlier node. Expected depth Θ(log n), unbounded degree.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0, i);
        g.add_edge(nid(parent), nid(i)).expect("valid tree edge");
    }
    g
}

/// Random tree with maximum degree `max_degree` (≥ 2): node `i` attaches to
/// a random earlier node that still has spare degree. Used for the
/// bounded-degree workloads of `GraphToWreath`.
///
/// # Panics
///
/// Panics if `max_degree < 2` and `n > 2`.
pub fn random_bounded_degree_tree(n: usize, max_degree: usize, seed: u64) -> Graph {
    if n > 2 {
        assert!(max_degree >= 2, "need max_degree >= 2 to span {n} nodes");
    }
    let mut rng = DetRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    let mut available: Vec<usize> = if n > 0 { vec![0] } else { vec![] };
    for i in 1..n {
        let idx = rng.gen_range(0, available.len());
        let parent = available[idx];
        g.add_edge(nid(parent), nid(i)).expect("valid tree edge");
        if g.degree(nid(parent)) >= max_degree {
            available.swap_remove(idx);
        }
        if max_degree > 1 {
            available.push(i);
        }
    }
    g
}

/// Random spanning-line-plus-chords graph: a Hamiltonian path through a
/// random permutation of the nodes plus `extra_edges` random chords.
/// Connected by construction and close to the paper's hard instances when
/// `extra_edges` is small.
pub fn random_line_with_chords(n: usize, extra_edges: usize, seed: u64) -> Graph {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    let mut g = Graph::new(n);
    for w in perm.windows(2) {
        g.add_edge(nid(w[0]), nid(w[1])).expect("valid path edge");
    }
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extra_edges && attempts < 20 * (extra_edges + 1) && n >= 2 {
        attempts += 1;
        let u = rng.gen_range(0, n);
        let v = rng.gen_range(0, n);
        if u != v && !g.has_edge(nid(u), nid(v)) {
            g.add_edge(nid(u), nid(v)).expect("valid chord");
            added += 1;
        }
    }
    g
}

/// Connected Erdős–Rényi graph: `G(n, p)` conditioned on connectivity by
/// overlaying a uniform random recursive tree (so the result is always
/// connected, and for moderate `p` is statistically close to `G(n, p)`).
pub fn random_connected(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut g = random_tree(n, seed.wrapping_add(0x9E3779B97F4A7C15));
    for i in 0..n {
        for j in (i + 1)..n {
            if !g.has_edge(nid(i), nid(j)) && rng.gen_bool(p) {
                g.add_edge(nid(i), nid(j)).expect("valid random edge");
            }
        }
    }
    g
}

/// Binomial ("Bernoulli") graph restricted to bounded degree: starts from a
/// ring (degree 2) and adds random chords only between nodes whose degree
/// is still below `max_degree`.
pub fn random_bounded_degree_connected(
    n: usize,
    max_degree: usize,
    extra_edges: usize,
    seed: u64,
) -> Graph {
    assert!(max_degree >= 2, "need max_degree >= 2");
    let mut rng = DetRng::seed_from_u64(seed);
    let mut g = if n >= 3 { ring(n) } else { line(n) };
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extra_edges && attempts < 50 * (extra_edges + 1) && n >= 2 {
        attempts += 1;
        let u = rng.gen_range(0, n);
        let v = rng.gen_range(0, n);
        if u != v
            && !g.has_edge(nid(u), nid(v))
            && g.degree(nid(u)) < max_degree
            && g.degree(nid(v)) < max_degree
        {
            g.add_edge(nid(u), nid(v)).expect("valid chord");
            added += 1;
        }
    }
    g
}

/// Barbell graph: two cliques of size `k` connected by a path of `bridge`
/// nodes. A classic high-diameter, locally-dense instance.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    let n = 2 * k + bridge;
    let mut g = Graph::new(n);
    for i in 0..k {
        for j in (i + 1)..k {
            g.add_edge(nid(i), nid(j)).expect("valid clique edge");
        }
    }
    let offset = k + bridge;
    for i in 0..k {
        for j in (i + 1)..k {
            g.add_edge(nid(offset + i), nid(offset + j))
                .expect("valid clique edge");
        }
    }
    // Path connecting the two cliques.
    let mut prev = if k > 0 { k - 1 } else { 0 };
    for b in 0..bridge {
        g.add_edge(nid(prev), nid(k + b))
            .expect("valid bridge edge");
        prev = k + b;
    }
    if k > 0 && n > k {
        g.add_edge(nid(prev), nid(offset))
            .expect("valid bridge edge");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_connected};

    #[test]
    fn line_and_ring_shapes() {
        let l = line(6);
        assert_eq!(l.edge_count(), 5);
        assert_eq!(l.max_degree(), 2);
        let r = ring(6);
        assert_eq!(r.edge_count(), 6);
        assert_eq!(r.max_degree(), 2);
        assert_eq!(diameter(&r), Some(3));
        // Degenerate sizes.
        assert_eq!(ring(2).edge_count(), 1);
        assert_eq!(line(1).edge_count(), 0);
        assert_eq!(line(0).edge_count(), 0);
    }

    #[test]
    fn star_and_complete_shapes() {
        let s = star(9);
        assert_eq!(s.edge_count(), 8);
        assert_eq!(s.degree(NodeId(0)), 8);
        assert_eq!(diameter(&s), Some(2));
        let k = complete(5);
        assert_eq!(k.edge_count(), 10);
        assert_eq!(diameter(&k), Some(1));
    }

    #[test]
    fn complete_binary_tree_shape() {
        let t = complete_binary_tree(15);
        assert_eq!(t.edge_count(), 14);
        assert!(t.max_degree() <= 3);
        let rooted = RootedTree::from_tree_graph(&t, NodeId(0)).unwrap();
        assert_eq!(rooted.depth(), 3);
    }

    #[test]
    fn kary_tree_depth_shrinks_with_arity() {
        let binary = complete_kary_rooted(100, 2);
        let wide = complete_kary_rooted(100, 8);
        assert!(wide.depth() < binary.depth());
        assert!(wide.max_degree() <= 9);
    }

    #[test]
    fn wreath_contains_ring_and_tree() {
        let w = wreath(16);
        // Ring edges present.
        assert!(w.has_edge(NodeId(0), NodeId(15)));
        assert!(w.has_edge(NodeId(3), NodeId(4)));
        // Tree edges present.
        assert!(w.has_edge(NodeId(0), NodeId(1)));
        assert!(w.has_edge(NodeId(1), NodeId(3)));
        assert!(is_connected(&w));
        // Diameter is logarithmic-ish thanks to the tree.
        assert!(diameter(&w).unwrap() <= 8);
    }

    #[test]
    fn thin_wreath_has_small_diameter() {
        let tw = thin_wreath(256);
        assert!(is_connected(&tw));
        assert!(diameter(&tw).unwrap() <= 6, "log-ary tree keeps it shallow");
    }

    #[test]
    fn grid_and_hypercube() {
        let g = grid(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 5 * 3);
        assert_eq!(diameter(&g), Some(7));
        let h = hypercube(4);
        assert_eq!(h.node_count(), 16);
        assert_eq!(h.edge_count(), 32);
        assert_eq!(diameter(&h), Some(4));
    }

    #[test]
    fn caterpillar_and_lollipop_and_barbell_connected() {
        assert!(is_connected(&caterpillar(5, 3)));
        assert!(is_connected(&lollipop(5, 6)));
        let b = barbell(4, 3);
        assert!(is_connected(&b));
        assert_eq!(b.node_count(), 11);
    }

    #[test]
    fn random_trees_are_trees_and_deterministic() {
        let t1 = random_tree(50, 42);
        let t2 = random_tree(50, 42);
        assert_eq!(t1, t2, "same seed, same tree");
        assert_eq!(t1.edge_count(), 49);
        assert!(is_connected(&t1));
        let t3 = random_tree(50, 43);
        assert_ne!(t1, t3, "different seed should (a.s.) differ");
    }

    #[test]
    fn bounded_degree_tree_respects_bound() {
        for seed in 0..5 {
            let t = random_bounded_degree_tree(80, 3, seed);
            assert_eq!(t.edge_count(), 79);
            assert!(is_connected(&t));
            assert!(t.max_degree() <= 3);
        }
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..3 {
            let g = random_connected(60, 0.05, seed);
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn random_line_with_chords_is_connected() {
        let g = random_line_with_chords(64, 10, 3);
        assert!(is_connected(&g));
        assert!(g.edge_count() >= 63);
    }

    #[test]
    fn bounded_degree_connected_respects_bound() {
        let g = random_bounded_degree_connected(64, 4, 40, 11);
        assert!(is_connected(&g));
        assert!(g.max_degree() <= 4);
    }
}
