//! A simple undirected graph over a fixed vertex set `0..n`.

use crate::{GraphError, NodeId};
use std::collections::BTreeSet;

/// An undirected edge, stored in canonical (sorted) order.
///
/// Two `Edge` values compare equal iff they connect the same pair of nodes,
/// regardless of the order in which the endpoints were supplied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// The smaller endpoint.
    pub a: NodeId,
    /// The larger endpoint.
    pub b: NodeId,
}

impl Edge {
    /// Creates a canonical edge between `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`; the model only allows simple graphs.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loops are not allowed in the model");
        if u < v {
            Edge { a: u, b: v }
        } else {
            Edge { a: v, b: u }
        }
    }

    /// Returns the endpoint opposite `node`, or `None` if `node` is not an
    /// endpoint of this edge.
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Returns true if `node` is an endpoint of this edge.
    pub fn touches(&self, node: NodeId) -> bool {
        self.a == node || self.b == node
    }
}

/// A simple undirected graph on the fixed vertex set `{0, …, n-1}`.
///
/// This is the snapshot `D(i) = (V, E(i))` of the paper's temporal graph:
/// the vertex set never changes, only the edge set does. Adjacency is kept
/// as a sorted set per node so that iteration order is deterministic, which
/// matters for reproducible executions of the deterministic algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adjacency: Vec<BTreeSet<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph (no edges) on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adjacency: vec![BTreeSet::new(); n],
            edge_count: 0,
        }
    }

    /// Creates a graph on `n` nodes from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or a self-loop is
    /// requested. Duplicate edges are silently collapsed (the model forbids
    /// multi-edges).
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Appends a fresh, isolated node to the vertex set and returns its id.
    ///
    /// The base model keeps the vertex set fixed; this exists for the
    /// *churn* faults of the deterministic simulation-testing layer
    /// (`adn_sim::dst`), where an adversary may let nodes join the network
    /// between rounds.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(BTreeSet::new());
        self.n += 1;
        NodeId(self.n - 1)
    }

    /// Number of edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns true if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edge_count == 0
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId)
    }

    fn check_node(&self, u: NodeId) -> Result<(), GraphError> {
        if u.index() >= self.n {
            Err(GraphError::NodeOutOfRange { node: u, n: self.n })
        } else {
            Ok(())
        }
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge was
    /// newly inserted, `false` if it was already present.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let inserted = self.adjacency[u.index()].insert(v);
        self.adjacency[v.index()].insert(u);
        if inserted {
            self.edge_count += 1;
        }
        Ok(inserted)
    }

    /// Removes the undirected edge `{u, v}`. Returns `true` if the edge was
    /// present and removed, `false` if it was absent.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        let removed = self.adjacency[u.index()].remove(&v);
        self.adjacency[v.index()].remove(&u);
        if removed {
            self.edge_count -= 1;
        }
        Ok(removed)
    }

    /// Returns true if the edge `{u, v}` is present.
    ///
    /// Out-of-range queries simply return `false`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency
            .get(u.index())
            .map(|adj| adj.contains(&v))
            .unwrap_or(false)
    }

    /// Neighbours of `u` (the paper's `N_1(u)`), in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[u.index()].iter().copied()
    }

    /// The set of nodes at distance exactly two from `u` (the paper's
    /// `N_2(u)`, the *potential neighbours*): nodes `w` such that some `v`
    /// is adjacent to both `u` and `w`, and `w` is not adjacent to `u` and
    /// `w != u`.
    pub fn potential_neighbors(&self, u: NodeId) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        for v in self.neighbors(u) {
            for w in self.neighbors(v) {
                if w != u && !self.has_edge(u, w) {
                    out.insert(w);
                }
            }
        }
        out
    }

    /// Returns true if `u` and `w` are at distance exactly two (share a
    /// common neighbour and are not adjacent).
    pub fn at_distance_two(&self, u: NodeId, w: NodeId) -> bool {
        if u == w || self.has_edge(u, w) {
            return false;
        }
        self.neighbors(u).any(|v| self.has_edge(v, w))
    }

    /// A common neighbour of `u` and `w`, if any (a witness for the
    /// distance-2 activation rule).
    pub fn common_neighbor(&self, u: NodeId, w: NodeId) -> Option<NodeId> {
        self.neighbors(u).find(|&v| self.has_edge(v, w))
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u.index()].len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency
            .iter()
            .map(|adj| adj.len())
            .max()
            .unwrap_or(0)
    }

    /// Iterator over all edges in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, adj)| {
            adj.iter()
                .filter(move |v| v.index() > u)
                .map(move |&v| Edge::new(NodeId(u), v))
        })
    }

    /// Collects the edge set into a vector (canonical order).
    pub fn edge_vec(&self) -> Vec<Edge> {
        self.edges().collect()
    }

    /// Returns the union of this graph with `other` (same vertex set).
    ///
    /// # Panics
    ///
    /// Panics if the two graphs have different node counts.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(
            self.n, other.n,
            "graph union requires identical vertex sets"
        );
        let mut g = self.clone();
        for e in other.edges() {
            let _ = g.add_edge(e.a, e.b);
        }
        g
    }

    /// Returns the graph containing exactly the edges of `self` that are
    /// not in `other` (same vertex set). This is the paper's
    /// `D(i) \ D(1)` used to define the *maximum activated degree*.
    ///
    /// # Panics
    ///
    /// Panics if the two graphs have different node counts.
    pub fn difference(&self, other: &Graph) -> Graph {
        assert_eq!(
            self.n, other.n,
            "graph difference requires identical vertex sets"
        );
        let mut g = Graph::new(self.n);
        for e in self.edges() {
            if !other.has_edge(e.a, e.b) {
                let _ = g.add_edge(e.a, e.b);
            }
        }
        g
    }

    /// Checks that the internal adjacency structure is symmetric and the
    /// edge count matches. Used by property tests.
    pub fn check_invariants(&self) -> bool {
        let mut count = 0usize;
        for u in 0..self.n {
            for &v in &self.adjacency[u] {
                if v.index() >= self.n || v.index() == u {
                    return false;
                }
                if !self.adjacency[v.index()].contains(&NodeId(u)) {
                    return false;
                }
                if v.index() > u {
                    count += 1;
                }
            }
        }
        count == self.edge_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn edge_is_canonical() {
        let e1 = Edge::new(nid(3), nid(1));
        let e2 = Edge::new(nid(1), nid(3));
        assert_eq!(e1, e2);
        assert_eq!(e1.a, nid(1));
        assert_eq!(e1.b, nid(3));
        assert_eq!(e1.other(nid(1)), Some(nid(3)));
        assert_eq!(e1.other(nid(3)), Some(nid(1)));
        assert_eq!(e1.other(nid(5)), None);
        assert!(e1.touches(nid(1)));
        assert!(!e1.touches(nid(2)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(nid(2), nid(2));
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(nid(0), nid(1)).unwrap());
        assert!(!g.add_edge(nid(1), nid(0)).unwrap(), "duplicate collapses");
        assert!(g.add_edge(nid(1), nid(2)).unwrap());
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(nid(0), nid(1)));
        assert!(g.has_edge(nid(1), nid(0)));
        assert!(!g.has_edge(nid(0), nid(2)));
        assert!(g.remove_edge(nid(0), nid(1)).unwrap());
        assert!(!g.remove_edge(nid(0), nid(1)).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert!(g.check_invariants());
    }

    #[test]
    fn rejects_out_of_range_and_self_loops() {
        let mut g = Graph::new(3);
        assert!(matches!(
            g.add_edge(nid(0), nid(3)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.add_edge(nid(1), nid(1)),
            Err(GraphError::SelfLoop { .. })
        ));
    }

    #[test]
    fn potential_neighbors_are_distance_two() {
        // Path 0 - 1 - 2 - 3
        let g = Graph::from_edges(
            4,
            vec![(nid(0), nid(1)), (nid(1), nid(2)), (nid(2), nid(3))],
        )
        .unwrap();
        let p0 = g.potential_neighbors(nid(0));
        assert_eq!(p0.into_iter().collect::<Vec<_>>(), vec![nid(2)]);
        assert!(g.at_distance_two(nid(0), nid(2)));
        assert!(!g.at_distance_two(nid(0), nid(3)));
        assert!(!g.at_distance_two(nid(0), nid(1)));
        assert_eq!(g.common_neighbor(nid(0), nid(2)), Some(nid(1)));
        assert_eq!(g.common_neighbor(nid(0), nid(3)), None);
    }

    #[test]
    fn degrees_and_edges() {
        let g = Graph::from_edges(
            5,
            vec![(nid(0), nid(1)), (nid(0), nid(2)), (nid(0), nid(3))],
        )
        .unwrap();
        assert_eq!(g.degree(nid(0)), 3);
        assert_eq!(g.degree(nid(4)), 0);
        assert_eq!(g.max_degree(), 3);
        let edges = g.edge_vec();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&Edge::new(nid(0), nid(3))));
    }

    #[test]
    fn union_and_difference() {
        let a = Graph::from_edges(4, vec![(nid(0), nid(1)), (nid(1), nid(2))]).unwrap();
        let b = Graph::from_edges(4, vec![(nid(1), nid(2)), (nid(2), nid(3))]).unwrap();
        let u = a.union(&b);
        assert_eq!(u.edge_count(), 3);
        let d = u.difference(&a);
        assert_eq!(d.edge_count(), 1);
        assert!(d.has_edge(nid(2), nid(3)));
    }

    #[test]
    fn nodes_iterator_covers_vertex_set() {
        let g = Graph::new(3);
        let nodes: Vec<_> = g.nodes().collect();
        assert_eq!(nodes, vec![nid(0), nid(1), nid(2)]);
        assert!(g.is_empty());
    }
}
