//! A simple undirected graph over a fixed vertex set `0..n`.

use crate::{GraphError, NodeId};

/// An undirected edge, stored in canonical (sorted) order.
///
/// Two `Edge` values compare equal iff they connect the same pair of nodes,
/// regardless of the order in which the endpoints were supplied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// The smaller endpoint.
    pub a: NodeId,
    /// The larger endpoint.
    pub b: NodeId,
}

impl Edge {
    /// Creates a canonical edge between `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`; the model only allows simple graphs.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loops are not allowed in the model");
        if u < v {
            Edge { a: u, b: v }
        } else {
            Edge { a: v, b: u }
        }
    }

    /// Returns the endpoint opposite `node`, or `None` if `node` is not an
    /// endpoint of this edge.
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Returns true if `node` is an endpoint of this edge.
    pub fn touches(&self, node: NodeId) -> bool {
        self.a == node || self.b == node
    }
}

/// A simple undirected graph on the fixed vertex set `{0, …, n-1}`.
///
/// This is the snapshot `D(i) = (V, E(i))` of the paper's temporal graph:
/// the vertex set never changes, only the edge set does. Adjacency is a
/// sorted, duplicate-free `Vec<NodeId>` per node — a flat representation
/// whose iteration order is identical to the previous per-node `BTreeSet`
/// (ascending), so every deterministic execution is preserved, while
/// neighbour scans are contiguous and batch edits are merge passes rather
/// than tree rebuilds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adjacency: Vec<Vec<NodeId>>,
    edge_count: usize,
}

/// Merges `add` (sorted ascending, duplicate-free, disjoint from `list`)
/// into the sorted `list` in one backward pass.
fn merge_sorted_additions(list: &mut Vec<NodeId>, add: &[NodeId]) {
    if add.is_empty() {
        return;
    }
    let old_len = list.len();
    list.resize(old_len + add.len(), NodeId(0));
    let mut i = old_len; // unmerged prefix of the original list
    let mut j = add.len(); // unmerged prefix of the additions
    let mut w = list.len(); // next write position (from the back)
    while j > 0 {
        if i > 0 && list[i - 1] > add[j - 1] {
            list[w - 1] = list[i - 1];
            i -= 1;
        } else {
            list[w - 1] = add[j - 1];
            j -= 1;
        }
        w -= 1;
    }
}

/// Removes every element of `del` (sorted ascending, duplicate-free, all
/// present in `list`) from the sorted `list` in one forward pass.
fn remove_sorted_elements(list: &mut Vec<NodeId>, del: &[NodeId]) {
    if del.is_empty() {
        return;
    }
    let mut j = 0usize;
    let mut w = 0usize;
    for r in 0..list.len() {
        let v = list[r];
        if j < del.len() && del[j] == v {
            j += 1;
        } else {
            list[w] = v;
            w += 1;
        }
    }
    list.truncate(w);
}

impl Graph {
    /// Creates an empty graph (no edges) on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Creates a graph on `n` nodes from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or a self-loop is
    /// requested. Duplicate edges are silently collapsed (the model forbids
    /// multi-edges).
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Appends a fresh, isolated node to the vertex set and returns its id.
    ///
    /// The base model keeps the vertex set fixed; this exists for the
    /// *churn* faults of the deterministic simulation-testing layer
    /// (`adn_sim::dst`), where an adversary may let nodes join the network
    /// between rounds.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        self.n += 1;
        NodeId(self.n - 1)
    }

    /// Number of edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns true if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edge_count == 0
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId)
    }

    fn check_node(&self, u: NodeId) -> Result<(), GraphError> {
        if u.index() >= self.n {
            Err(GraphError::NodeOutOfRange { node: u, n: self.n })
        } else {
            Ok(())
        }
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge was
    /// newly inserted, `false` if it was already present.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        match self.adjacency[u.index()].binary_search(&v) {
            Ok(_) => Ok(false),
            Err(pos) => {
                self.adjacency[u.index()].insert(pos, v);
                let back = self.adjacency[v.index()]
                    .binary_search(&u)
                    .expect_err("adjacency must stay symmetric");
                self.adjacency[v.index()].insert(back, u);
                self.edge_count += 1;
                Ok(true)
            }
        }
    }

    /// Removes the undirected edge `{u, v}`. Returns `true` if the edge was
    /// present and removed, `false` if it was absent.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        match self.adjacency[u.index()].binary_search(&v) {
            Err(_) => Ok(false),
            Ok(pos) => {
                self.adjacency[u.index()].remove(pos);
                let back = self.adjacency[v.index()]
                    .binary_search(&u)
                    .expect("adjacency must stay symmetric");
                self.adjacency[v.index()].remove(back);
                self.edge_count -= 1;
                Ok(true)
            }
        }
    }

    /// Inserts a batch of canonical edges in one merge pass per touched
    /// node and calls `on_insert` for every edge that was newly inserted
    /// (in the order of `edges`). Returns the number of new edges.
    ///
    /// Amortized cost is `O(degree + batch)` per touched node, versus one
    /// `O(degree)` memmove per edge for repeated [`Graph::add_edge`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `edges` contains
    /// duplicate not-yet-present edges — the case that would corrupt the
    /// adjacency (callers stage through set-semantics vectors, so a
    /// duplicate is a logic error, not data). Duplicates of already
    /// present edges are harmlessly skipped by the freshness pre-filter.
    pub fn add_edges_batch<F: FnMut(Edge)>(&mut self, edges: &[Edge], mut on_insert: F) -> usize {
        if edges.is_empty() {
            return 0;
        }
        let mut fresh: Vec<Edge> = Vec::with_capacity(edges.len());
        for &e in edges {
            assert!(
                e.a.index() < self.n && e.b.index() < self.n,
                "edge {{{}, {}}} out of range (n = {})",
                e.a,
                e.b,
                self.n
            );
            if !self.has_edge(e.a, e.b) {
                fresh.push(e);
            }
        }
        // One directed entry per endpoint, grouped by source node.
        let mut directed: Vec<(NodeId, NodeId)> = Vec::with_capacity(2 * fresh.len());
        for &e in &fresh {
            directed.push((e.a, e.b));
            directed.push((e.b, e.a));
        }
        directed.sort_unstable();
        assert!(
            directed.windows(2).all(|w| w[0] != w[1]),
            "duplicate edges in batch"
        );
        let mut i = 0;
        let mut add: Vec<NodeId> = Vec::new();
        while i < directed.len() {
            let u = directed[i].0;
            add.clear();
            while i < directed.len() && directed[i].0 == u {
                add.push(directed[i].1);
                i += 1;
            }
            merge_sorted_additions(&mut self.adjacency[u.index()], &add);
        }
        self.edge_count += fresh.len();
        for &e in &fresh {
            on_insert(e);
        }
        fresh.len()
    }

    /// Removes a batch of canonical edges in one merge pass per touched
    /// node and calls `on_remove` for every edge that was present (in the
    /// order of `edges`). Returns the number of edges removed.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `edges` contains
    /// duplicate present edges — the case that would corrupt the
    /// adjacency; duplicates of absent edges are harmlessly skipped.
    pub fn remove_edges_batch<F: FnMut(Edge)>(
        &mut self,
        edges: &[Edge],
        mut on_remove: F,
    ) -> usize {
        if edges.is_empty() {
            return 0;
        }
        let mut present: Vec<Edge> = Vec::with_capacity(edges.len());
        for &e in edges {
            assert!(
                e.a.index() < self.n && e.b.index() < self.n,
                "edge {{{}, {}}} out of range (n = {})",
                e.a,
                e.b,
                self.n
            );
            if self.has_edge(e.a, e.b) {
                present.push(e);
            }
        }
        let mut directed: Vec<(NodeId, NodeId)> = Vec::with_capacity(2 * present.len());
        for &e in &present {
            directed.push((e.a, e.b));
            directed.push((e.b, e.a));
        }
        directed.sort_unstable();
        assert!(
            directed.windows(2).all(|w| w[0] != w[1]),
            "duplicate edges in batch"
        );
        let mut i = 0;
        let mut del: Vec<NodeId> = Vec::new();
        while i < directed.len() {
            let u = directed[i].0;
            del.clear();
            while i < directed.len() && directed[i].0 == u {
                del.push(directed[i].1);
                i += 1;
            }
            remove_sorted_elements(&mut self.adjacency[u.index()], &del);
        }
        self.edge_count -= present.len();
        for &e in &present {
            on_remove(e);
        }
        present.len()
    }

    /// Severs every edge incident to `u` in one pass (one merge per
    /// neighbour plus clearing `u`'s own list) and calls `on_remove` for
    /// each severed edge in ascending neighbour order. Returns the number
    /// of severed edges. Used by the DST crash-stop fault.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn remove_incident_edges<F: FnMut(Edge)>(&mut self, u: NodeId, mut on_remove: F) -> usize {
        let neighbors = std::mem::take(&mut self.adjacency[u.index()]);
        for &v in &neighbors {
            let pos = self.adjacency[v.index()]
                .binary_search(&u)
                .expect("adjacency must stay symmetric");
            self.adjacency[v.index()].remove(pos);
        }
        self.edge_count -= neighbors.len();
        for &v in &neighbors {
            on_remove(Edge::new(u, v));
        }
        neighbors.len()
    }

    /// Returns true if the edge `{u, v}` is present.
    ///
    /// Out-of-range queries simply return `false`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency
            .get(u.index())
            .map(|adj| adj.binary_search(&v).is_ok())
            .unwrap_or(false)
    }

    /// Neighbours of `u` (the paper's `N_1(u)`), in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[u.index()].iter().copied()
    }

    /// Neighbours of `u` as a sorted slice — the zero-cost form of
    /// [`Graph::neighbors`] for hot scans.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors_slice(&self, u: NodeId) -> &[NodeId] {
        &self.adjacency[u.index()]
    }

    /// The set of nodes at distance exactly two from `u` (the paper's
    /// `N_2(u)`, the *potential neighbours*): nodes `w` such that some `v`
    /// is adjacent to both `u` and `w`, and `w` is not adjacent to `u` and
    /// `w != u`. Returned sorted ascending, the same order the old
    /// `BTreeSet` form iterated in.
    ///
    /// Computed as a flat union of the (sorted) neighbour lists of
    /// `N_1(u)`: iterated two-pointer merges while the degree is small
    /// (the common case — bounded `O(deg(u) · D)` with a tiny constant),
    /// switching to gather + sort + dedup on hub nodes (bounded
    /// `O(D log D)` for `D = Σ deg(v)`, immune to the quadratic re-merge
    /// blowup of long pairwise-union chains), then one subtraction pass.
    /// No per-element tree inserts anywhere.
    pub fn potential_neighbors(&self, u: NodeId) -> Vec<NodeId> {
        // Above this degree, long pairwise-union chains re-copy the accumulated
        // union too often; sorting the gathered candidates is bounded.
        const MERGE_MAX_DEGREE: usize = 64;
        let n1 = &self.adjacency[u.index()];
        let mut out: Vec<NodeId> = Vec::new();
        if n1.len() <= MERGE_MAX_DEGREE {
            let mut scratch: Vec<NodeId> = Vec::new();
            for &v in n1 {
                let list = &self.adjacency[v.index()];
                if out.is_empty() {
                    out.extend_from_slice(list);
                    continue;
                }
                // Two-pointer union of `out` and `list` into `scratch`.
                scratch.clear();
                scratch.reserve(out.len() + list.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < out.len() && j < list.len() {
                    match out[i].cmp(&list[j]) {
                        std::cmp::Ordering::Less => {
                            scratch.push(out[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            scratch.push(list[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            scratch.push(out[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                scratch.extend_from_slice(&out[i..]);
                scratch.extend_from_slice(&list[j..]);
                std::mem::swap(&mut out, &mut scratch);
            }
        } else {
            let total: usize = n1.iter().map(|v| self.adjacency[v.index()].len()).sum();
            out.reserve(total);
            for &v in n1 {
                out.extend_from_slice(&self.adjacency[v.index()]);
            }
            out.sort_unstable();
            out.dedup();
        }
        // Subtract `{u} ∪ N_1(u)` in one forward pass (both sides sorted).
        let mut j = 0usize;
        out.retain(|&w| {
            while j < n1.len() && n1[j] < w {
                j += 1;
            }
            w != u && !(j < n1.len() && n1[j] == w)
        });

        // Differential check against the old BTreeSet-based semantics.
        #[cfg(debug_assertions)]
        {
            let mut reference = std::collections::BTreeSet::new();
            for v in self.neighbors(u) {
                for w in self.neighbors(v) {
                    if w != u && !self.has_edge(u, w) {
                        reference.insert(w);
                    }
                }
            }
            debug_assert!(
                out.iter().copied().eq(reference.iter().copied()),
                "merge-based potential_neighbors diverged from reference for {u}: \
                 {out:?} vs {reference:?}"
            );
        }
        out
    }

    /// Returns true if `u` and `w` are at distance exactly two (share a
    /// common neighbour and are not adjacent).
    pub fn at_distance_two(&self, u: NodeId, w: NodeId) -> bool {
        if u == w || self.has_edge(u, w) {
            return false;
        }
        self.common_neighbor(u, w).is_some()
    }

    /// A common neighbour of `u` and `w`, if any (a witness for the
    /// distance-2 activation rule). Both lists are sorted, so this is a
    /// two-pointer intersection probe; the witness returned is the
    /// smallest common neighbour, exactly as the old linear scan found.
    pub fn common_neighbor(&self, u: NodeId, w: NodeId) -> Option<NodeId> {
        let a = self.adjacency.get(u.index())?;
        let b = self.adjacency.get(w.index())?;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return Some(a[i]),
            }
        }
        None
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u.index()].len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency
            .iter()
            .map(|adj| adj.len())
            .max()
            .unwrap_or(0)
    }

    /// Iterator over all edges in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, adj)| {
            adj.iter()
                .filter(move |v| v.index() > u)
                .map(move |&v| Edge::new(NodeId(u), v))
        })
    }

    /// Collects the edge set into a vector (canonical order).
    pub fn edge_vec(&self) -> Vec<Edge> {
        self.edges().collect()
    }

    /// Returns the union of this graph with `other` (same vertex set).
    ///
    /// # Panics
    ///
    /// Panics if the two graphs have different node counts.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(
            self.n, other.n,
            "graph union requires identical vertex sets"
        );
        let mut g = self.clone();
        for e in other.edges() {
            let _ = g.add_edge(e.a, e.b);
        }
        g
    }

    /// Returns the graph containing exactly the edges of `self` that are
    /// not in `other` (same vertex set). This is the paper's
    /// `D(i) \ D(1)` used to define the *maximum activated degree*.
    ///
    /// # Panics
    ///
    /// Panics if the two graphs have different node counts.
    pub fn difference(&self, other: &Graph) -> Graph {
        assert_eq!(
            self.n, other.n,
            "graph difference requires identical vertex sets"
        );
        let mut g = Graph::new(self.n);
        for e in self.edges() {
            if !other.has_edge(e.a, e.b) {
                let _ = g.add_edge(e.a, e.b);
            }
        }
        g
    }

    /// Checks that the internal adjacency structure is sorted,
    /// duplicate-free and symmetric, and that the edge count matches.
    /// Used by property tests.
    pub fn check_invariants(&self) -> bool {
        let mut count = 0usize;
        for u in 0..self.n {
            let adj = &self.adjacency[u];
            if adj.windows(2).any(|w| w[0] >= w[1]) {
                return false; // unsorted or duplicated
            }
            for &v in adj {
                if v.index() >= self.n || v.index() == u {
                    return false;
                }
                if self.adjacency[v.index()].binary_search(&NodeId(u)).is_err() {
                    return false;
                }
                if v.index() > u {
                    count += 1;
                }
            }
        }
        count == self.edge_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn edge_is_canonical() {
        let e1 = Edge::new(nid(3), nid(1));
        let e2 = Edge::new(nid(1), nid(3));
        assert_eq!(e1, e2);
        assert_eq!(e1.a, nid(1));
        assert_eq!(e1.b, nid(3));
        assert_eq!(e1.other(nid(1)), Some(nid(3)));
        assert_eq!(e1.other(nid(3)), Some(nid(1)));
        assert_eq!(e1.other(nid(5)), None);
        assert!(e1.touches(nid(1)));
        assert!(!e1.touches(nid(2)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(nid(2), nid(2));
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(nid(0), nid(1)).unwrap());
        assert!(!g.add_edge(nid(1), nid(0)).unwrap(), "duplicate collapses");
        assert!(g.add_edge(nid(1), nid(2)).unwrap());
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(nid(0), nid(1)));
        assert!(g.has_edge(nid(1), nid(0)));
        assert!(!g.has_edge(nid(0), nid(2)));
        assert!(g.remove_edge(nid(0), nid(1)).unwrap());
        assert!(!g.remove_edge(nid(0), nid(1)).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert!(g.check_invariants());
    }

    #[test]
    fn rejects_out_of_range_and_self_loops() {
        let mut g = Graph::new(3);
        assert!(matches!(
            g.add_edge(nid(0), nid(3)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.add_edge(nid(1), nid(1)),
            Err(GraphError::SelfLoop { .. })
        ));
    }

    #[test]
    fn potential_neighbors_are_distance_two() {
        // Path 0 - 1 - 2 - 3
        let g = Graph::from_edges(
            4,
            vec![(nid(0), nid(1)), (nid(1), nid(2)), (nid(2), nid(3))],
        )
        .unwrap();
        let p0 = g.potential_neighbors(nid(0));
        assert_eq!(p0, vec![nid(2)]);
        assert!(g.at_distance_two(nid(0), nid(2)));
        assert!(!g.at_distance_two(nid(0), nid(3)));
        assert!(!g.at_distance_two(nid(0), nid(1)));
        assert_eq!(g.common_neighbor(nid(0), nid(2)), Some(nid(1)));
        assert_eq!(g.common_neighbor(nid(0), nid(3)), None);
    }

    #[test]
    fn potential_neighbors_merge_matches_scan_on_dense_graphs() {
        // A lollipop-ish graph exercises overlapping neighbour lists: the
        // union has many duplicates and the subtraction removes a block.
        let mut g = Graph::new(8);
        for u in 0..4usize {
            for v in (u + 1)..4 {
                g.add_edge(nid(u), nid(v)).unwrap();
            }
        }
        for i in 3..7usize {
            g.add_edge(nid(i), nid(i + 1)).unwrap();
        }
        for u in g.nodes().collect::<Vec<_>>() {
            let got = g.potential_neighbors(u);
            let mut expect: Vec<NodeId> = g.nodes().filter(|&w| g.at_distance_two(u, w)).collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "node {u}");
            assert!(got.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        }
    }

    #[test]
    fn batch_add_and_remove_match_singles() {
        let stream = [
            (0usize, 1usize),
            (1, 2),
            (0, 2),
            (3, 5),
            (2, 5),
            (0, 1), // duplicate of an earlier edge: skipped, not fresh
        ];
        let mut singles = Graph::new(6);
        for &(u, v) in &stream {
            let _ = singles.add_edge(nid(u), nid(v)).unwrap();
        }
        let mut batched = Graph::new(6);
        // Set semantics: feed the deduplicated edge list.
        let edges: Vec<Edge> = vec![
            Edge::new(nid(0), nid(1)),
            Edge::new(nid(1), nid(2)),
            Edge::new(nid(0), nid(2)),
            Edge::new(nid(3), nid(5)),
            Edge::new(nid(2), nid(5)),
        ];
        let mut inserted = Vec::new();
        let fresh = batched.add_edges_batch(&edges, |e| inserted.push(e));
        assert_eq!(fresh, 5);
        assert_eq!(inserted, edges);
        assert_eq!(batched, singles);
        assert!(batched.check_invariants());

        // Batch-inserting again finds nothing fresh.
        assert_eq!(batched.add_edges_batch(&edges, |_| panic!("no fresh")), 0);

        // Remove a sub-batch plus one absent edge.
        let removals = vec![
            Edge::new(nid(0), nid(2)),
            Edge::new(nid(3), nid(4)), // absent: skipped
            Edge::new(nid(3), nid(5)),
        ];
        let mut removed = Vec::new();
        let gone = batched.remove_edges_batch(&removals, |e| removed.push(e));
        assert_eq!(gone, 2);
        assert_eq!(
            removed,
            vec![Edge::new(nid(0), nid(2)), Edge::new(nid(3), nid(5))]
        );
        singles.remove_edge(nid(0), nid(2)).unwrap();
        singles.remove_edge(nid(3), nid(5)).unwrap();
        assert_eq!(batched, singles);
        assert!(batched.check_invariants());
    }

    #[test]
    fn remove_incident_edges_isolates_a_node() {
        let mut g = Graph::from_edges(
            5,
            vec![
                (nid(0), nid(1)),
                (nid(0), nid(2)),
                (nid(0), nid(3)),
                (nid(2), nid(3)),
            ],
        )
        .unwrap();
        let mut severed = Vec::new();
        let k = g.remove_incident_edges(nid(0), |e| severed.push(e));
        assert_eq!(k, 3);
        assert_eq!(
            severed,
            vec![
                Edge::new(nid(0), nid(1)),
                Edge::new(nid(0), nid(2)),
                Edge::new(nid(0), nid(3)),
            ]
        );
        assert_eq!(g.degree(nid(0)), 0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(nid(2), nid(3)));
        assert!(g.check_invariants());
        // Severing an isolated node is a no-op.
        assert_eq!(g.remove_incident_edges(nid(0), |_| panic!("no edges")), 0);
    }

    #[test]
    fn neighbors_slice_matches_iterator() {
        let g = Graph::from_edges(4, vec![(nid(1), nid(0)), (nid(1), nid(3))]).unwrap();
        assert_eq!(g.neighbors_slice(nid(1)), &[nid(0), nid(3)]);
        let collected: Vec<NodeId> = g.neighbors(nid(1)).collect();
        assert_eq!(collected, g.neighbors_slice(nid(1)));
    }

    #[test]
    fn degrees_and_edges() {
        let g = Graph::from_edges(
            5,
            vec![(nid(0), nid(1)), (nid(0), nid(2)), (nid(0), nid(3))],
        )
        .unwrap();
        assert_eq!(g.degree(nid(0)), 3);
        assert_eq!(g.degree(nid(4)), 0);
        assert_eq!(g.max_degree(), 3);
        let edges = g.edge_vec();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&Edge::new(nid(0), nid(3))));
    }

    #[test]
    fn union_and_difference() {
        let a = Graph::from_edges(4, vec![(nid(0), nid(1)), (nid(1), nid(2))]).unwrap();
        let b = Graph::from_edges(4, vec![(nid(1), nid(2)), (nid(2), nid(3))]).unwrap();
        let u = a.union(&b);
        assert_eq!(u.edge_count(), 3);
        let d = u.difference(&a);
        assert_eq!(d.edge_count(), 1);
        assert!(d.has_edge(nid(2), nid(3)));
    }

    #[test]
    fn nodes_iterator_covers_vertex_set() {
        let g = Graph::new(3);
        let nodes: Vec<_> = g.nodes().collect();
        assert_eq!(nodes, vec![nid(0), nid(1), nid(2)]);
        assert!(g.is_empty());
    }
}
