//! A simple undirected graph over a fixed vertex set `0..n`.

use crate::{GraphError, NodeId};

/// An undirected edge, stored in canonical (sorted) order.
///
/// Two `Edge` values compare equal iff they connect the same pair of nodes,
/// regardless of the order in which the endpoints were supplied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// The smaller endpoint.
    pub a: NodeId,
    /// The larger endpoint.
    pub b: NodeId,
}

impl Edge {
    /// Creates a canonical edge between `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`; the model only allows simple graphs.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loops are not allowed in the model");
        if u < v {
            Edge { a: u, b: v }
        } else {
            Edge { a: v, b: u }
        }
    }

    /// Returns the endpoint opposite `node`, or `None` if `node` is not an
    /// endpoint of this edge.
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Returns true if `node` is an endpoint of this edge.
    pub fn touches(&self, node: NodeId) -> bool {
        self.a == node || self.b == node
    }
}

/// Smallest capacity a freshly allocated block receives.
pub(crate) const MIN_BLOCK_CAP: usize = 4;

/// Compaction trigger: at least this many dead slots *and* at least a
/// quarter of the arena dead. The floor keeps tiny graphs from compacting
/// on every relocation; the ratio bounds dead space at a third of live
/// capacity. (A relocated block that doubled up to capacity `C` abandons
/// only `C - MIN_BLOCK_CAP` slots along the way — always less than the
/// live capacity it leaves behind — so a half-arena threshold would never
/// fire under organic growth.)
const COMPACT_MIN_DEAD: usize = 64;

/// Value written into never-read slack slots (`len..cap` of a block) so a
/// stray read shows up as an obviously-broken node id instead of a
/// plausible one.
pub(crate) const PAD: NodeId = NodeId(usize::MAX);

/// A simple undirected graph on the fixed vertex set `{0, …, n-1}`.
///
/// This is the snapshot `D(i) = (V, E(i))` of the paper's temporal graph:
/// the vertex set never changes (except under simulated churn), only the
/// edge set does.
///
/// Adjacency is a CSR-style arena in struct-of-arrays form: three dense
/// per-node columns (`start`, `len`, `cap`) describe one *block* per node
/// inside a single shared `arena` of neighbour ids. A node's neighbours
/// are the sorted, duplicate-free slice `arena[start..start + len]`, so
/// iteration order is identical to the previous per-node `Vec<NodeId>`
/// (and original `BTreeSet`) representations — ascending — and every
/// deterministic execution is preserved. Mutations work in place while a
/// block has slack (`len < cap`); a block that overflows is relocated to
/// the arena tail with doubled capacity, abandoning its old slots, and a
/// `dead`-slot counter triggers a periodic compaction that rewrites the
/// blocks tightly in node order. The trigger depends only on the operation
/// sequence, so layout management is deterministic; layout itself is never
/// observable (equality, iteration and lookups all go through the block
/// slices).
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) n: usize,
    /// Per-node block offset into `arena`.
    pub(crate) start: Vec<usize>,
    /// Per-node live neighbour count.
    pub(crate) len: Vec<usize>,
    /// Per-node block capacity (slots reserved at `start`).
    pub(crate) cap: Vec<usize>,
    /// Shared neighbour storage; every slot belongs to exactly one block's
    /// capacity or is counted in `dead`.
    pub(crate) arena: Vec<NodeId>,
    /// Slots abandoned by block relocations, reclaimed at compaction.
    pub(crate) dead: usize,
    pub(crate) edge_count: usize,
}

/// Structural equality: same vertex set, same edge set. Arena layout
/// (block placement, slack, dead space) is an implementation detail two
/// equal graphs may disagree on.
impl PartialEq for Graph {
    fn eq(&self, other: &Graph) -> bool {
        self.n == other.n
            && self.edge_count == other.edge_count
            && (0..self.n).all(|u| self.block(u) == other.block(u))
    }
}

impl Eq for Graph {}

/// Doubles `cap` (from the minimum block size) until it holds `need`.
pub(crate) fn grow_cap(cap: usize, need: usize) -> usize {
    let mut c = cap.max(MIN_BLOCK_CAP);
    while c < need {
        c *= 2;
    }
    c
}

impl Graph {
    /// Creates an empty graph (no edges) on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            start: vec![0; n],
            len: vec![0; n],
            cap: vec![0; n],
            arena: Vec::new(),
            dead: 0,
            edge_count: 0,
        }
    }

    /// Creates a graph on `n` nodes from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or a self-loop is
    /// requested. Duplicate edges are silently collapsed (the model forbids
    /// multi-edges).
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Appends a fresh, isolated node to the vertex set and returns its id.
    ///
    /// The base model keeps the vertex set fixed; this exists for the
    /// *churn* faults of the deterministic simulation-testing layer
    /// (`adn_sim::dst`), where an adversary may let nodes join the network
    /// between rounds. The new node's block is zero-capacity: its first
    /// edge allocates at the arena tail.
    pub fn add_node(&mut self) -> NodeId {
        self.start.push(0);
        self.len.push(0);
        self.cap.push(0);
        self.n += 1;
        NodeId(self.n - 1)
    }

    /// Number of edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns true if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edge_count == 0
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId)
    }

    fn check_node(&self, u: NodeId) -> Result<(), GraphError> {
        if u.index() >= self.n {
            Err(GraphError::NodeOutOfRange { node: u, n: self.n })
        } else {
            Ok(())
        }
    }

    /// The live neighbour slice of node `u` (by raw index).
    #[inline]
    pub(crate) fn block(&self, u: usize) -> &[NodeId] {
        &self.arena[self.start[u]..self.start[u] + self.len[u]]
    }

    /// Inserts `v` at `pos` of `u`'s sorted block, relocating on overflow.
    fn insert_at(&mut self, u: usize, pos: usize, v: NodeId) {
        let l = self.len[u];
        if l < self.cap[u] {
            let s = self.start[u];
            self.arena.copy_within(s + pos..s + l, s + pos + 1);
            self.arena[s + pos] = v;
            self.len[u] = l + 1;
        } else {
            self.relocate_insert(u, pos, v);
        }
    }

    /// Moves `u`'s full block to the arena tail with grown capacity,
    /// folding the insertion of `v` at `pos` into the copy. The old slots
    /// become dead space.
    fn relocate_insert(&mut self, u: usize, pos: usize, v: NodeId) {
        let s = self.start[u];
        let l = self.len[u];
        let new_cap = grow_cap(self.cap[u], l + 1);
        let new_start = self.arena.len();
        self.arena.reserve(new_cap);
        self.arena.extend_from_within(s..s + pos);
        self.arena.push(v);
        self.arena.extend_from_within(s + pos..s + l);
        self.arena.resize(new_start + new_cap, PAD);
        self.dead += self.cap[u];
        self.start[u] = new_start;
        self.len[u] = l + 1;
        self.cap[u] = new_cap;
        self.maybe_compact();
    }

    /// Removes the element at `pos` of `u`'s block (capacity is retained
    /// as slack for future insertions; only relocations create dead
    /// space).
    fn remove_at(&mut self, u: usize, pos: usize) {
        let s = self.start[u];
        let l = self.len[u];
        self.arena.copy_within(s + pos + 1..s + l, s + pos);
        self.len[u] = l - 1;
    }

    /// Merges `add` (sorted ascending, duplicate-free, disjoint from the
    /// block) into `u`'s sorted block: one backward in-place pass while
    /// the block has room, otherwise a relocation that interleaves the
    /// merge with the copy to the tail.
    fn merge_block_additions(&mut self, u: usize, add: &[NodeId]) {
        if add.is_empty() {
            return;
        }
        let s = self.start[u];
        let l = self.len[u];
        let need = l + add.len();
        if need <= self.cap[u] {
            let block = &mut self.arena[s..s + need];
            let mut i = l;
            let mut j = add.len();
            let mut w = need;
            while j > 0 {
                if i > 0 && block[i - 1] > add[j - 1] {
                    block[w - 1] = block[i - 1];
                    i -= 1;
                } else {
                    block[w - 1] = add[j - 1];
                    j -= 1;
                }
                w -= 1;
            }
            self.len[u] = need;
        } else {
            let new_cap = grow_cap(self.cap[u], need);
            let new_start = self.arena.len();
            self.arena.reserve(new_cap);
            let mut i = 0usize;
            let mut j = 0usize;
            while i < l && j < add.len() {
                let x = self.arena[s + i];
                if x < add[j] {
                    self.arena.push(x);
                    i += 1;
                } else {
                    self.arena.push(add[j]);
                    j += 1;
                }
            }
            self.arena.extend_from_within(s + i..s + l);
            self.arena.extend_from_slice(&add[j..]);
            self.arena.resize(new_start + new_cap, PAD);
            self.dead += self.cap[u];
            self.start[u] = new_start;
            self.len[u] = need;
            self.cap[u] = new_cap;
            self.maybe_compact();
        }
    }

    /// Removes every element of `del` (sorted ascending, duplicate-free,
    /// all present) from `u`'s sorted block in one forward pass.
    fn remove_block_elements(&mut self, u: usize, del: &[NodeId]) {
        if del.is_empty() {
            return;
        }
        let s = self.start[u];
        let l = self.len[u];
        let mut j = 0usize;
        let mut w = 0usize;
        for r in 0..l {
            let v = self.arena[s + r];
            if j < del.len() && del[j] == v {
                j += 1;
            } else {
                self.arena[s + w] = v;
                w += 1;
            }
        }
        self.len[u] = w;
    }

    /// Compacts the arena if relocations have abandoned enough slots.
    pub(crate) fn maybe_compact(&mut self) {
        if self.dead >= COMPACT_MIN_DEAD && self.dead * 4 >= self.arena.len() {
            self.compact();
        }
    }

    /// Rewrites every block tightly (capacity = length) in node order,
    /// reclaiming all dead space. Runs automatically when relocations have
    /// abandoned at least a quarter of the arena; exposed for callers that want to
    /// pack before a read-heavy phase or measure tight memory use.
    pub fn compact(&mut self) {
        let live: usize = self.len.iter().sum();
        let mut packed: Vec<NodeId> = Vec::with_capacity(live);
        for u in 0..self.n {
            let s = self.start[u];
            let l = self.len[u];
            self.start[u] = packed.len();
            self.cap[u] = l;
            packed.extend_from_slice(&self.arena[s..s + l]);
        }
        self.arena = packed;
        self.dead = 0;
    }

    /// Number of arena slots currently abandoned by block relocations
    /// (reclaimed at the next compaction).
    pub fn dead_slots(&self) -> usize {
        self.dead
    }

    /// Total arena slots (live neighbours + per-block slack + dead space).
    pub fn arena_slots(&self) -> usize {
        self.arena.len()
    }

    /// Bytes of adjacency storage currently held: the neighbour arena plus
    /// the three SoA columns, at allocated (not just used) size.
    pub fn memory_footprint_bytes(&self) -> usize {
        self.arena.capacity() * std::mem::size_of::<NodeId>()
            + (self.start.capacity() + self.len.capacity() + self.cap.capacity())
                * std::mem::size_of::<usize>()
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge was
    /// newly inserted, `false` if it was already present.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        match self.block(u.index()).binary_search(&v) {
            Ok(_) => Ok(false),
            Err(pos) => {
                self.insert_at(u.index(), pos, v);
                let back = self
                    .block(v.index())
                    .binary_search(&u)
                    .expect_err("adjacency must stay symmetric");
                self.insert_at(v.index(), back, u);
                self.edge_count += 1;
                Ok(true)
            }
        }
    }

    /// Removes the undirected edge `{u, v}`. Returns `true` if the edge was
    /// present and removed, `false` if it was absent.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        match self.block(u.index()).binary_search(&v) {
            Err(_) => Ok(false),
            Ok(pos) => {
                let back = match self.block(v.index()).binary_search(&u) {
                    Ok(b) => b,
                    Err(_) => {
                        return Err(GraphError::BrokenInvariant {
                            reason: format!("edge ({u}, {v}) present forward but not backward"),
                        })
                    }
                };
                self.remove_at(u.index(), pos);
                self.remove_at(v.index(), back);
                self.edge_count -= 1;
                Ok(true)
            }
        }
    }

    /// Inserts a batch of canonical edges in one merge pass per touched
    /// node and calls `on_insert` for every edge that was newly inserted
    /// (in the order of `edges`). Returns the number of new edges.
    ///
    /// Amortized cost is `O(degree + batch)` per touched node, versus one
    /// `O(degree)` memmove per edge for repeated [`Graph::add_edge`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `edges` contains
    /// duplicate not-yet-present edges — the case that would corrupt the
    /// adjacency (callers stage through set-semantics vectors, so a
    /// duplicate is a logic error, not data). Duplicates of already
    /// present edges are harmlessly skipped by the freshness pre-filter.
    pub fn add_edges_batch<F: FnMut(Edge)>(&mut self, edges: &[Edge], mut on_insert: F) -> usize {
        if edges.is_empty() {
            return 0;
        }
        let mut fresh: Vec<Edge> = Vec::with_capacity(edges.len());
        for &e in edges {
            assert!(
                e.a.index() < self.n && e.b.index() < self.n,
                "edge {{{}, {}}} out of range (n = {})",
                e.a,
                e.b,
                self.n
            );
            if !self.has_edge(e.a, e.b) {
                fresh.push(e);
            }
        }
        // One directed entry per endpoint, grouped by source node.
        let mut directed: Vec<(NodeId, NodeId)> = Vec::with_capacity(2 * fresh.len());
        for &e in &fresh {
            directed.push((e.a, e.b));
            directed.push((e.b, e.a));
        }
        directed.sort_unstable();
        assert!(
            directed.windows(2).all(|w| w[0] != w[1]),
            "duplicate edges in batch"
        );
        let mut i = 0;
        let mut add: Vec<NodeId> = Vec::new();
        while i < directed.len() {
            let u = directed[i].0;
            add.clear();
            while i < directed.len() && directed[i].0 == u {
                add.push(directed[i].1);
                i += 1;
            }
            self.merge_block_additions(u.index(), &add);
        }
        self.edge_count += fresh.len();
        for &e in &fresh {
            on_insert(e);
        }
        fresh.len()
    }

    /// Removes a batch of canonical edges in one merge pass per touched
    /// node and calls `on_remove` for every edge that was present (in the
    /// order of `edges`). Returns the number of edges removed.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `edges` contains
    /// duplicate present edges — the case that would corrupt the
    /// adjacency; duplicates of absent edges are harmlessly skipped.
    pub fn remove_edges_batch<F: FnMut(Edge)>(
        &mut self,
        edges: &[Edge],
        mut on_remove: F,
    ) -> usize {
        if edges.is_empty() {
            return 0;
        }
        let mut present: Vec<Edge> = Vec::with_capacity(edges.len());
        for &e in edges {
            assert!(
                e.a.index() < self.n && e.b.index() < self.n,
                "edge {{{}, {}}} out of range (n = {})",
                e.a,
                e.b,
                self.n
            );
            if self.has_edge(e.a, e.b) {
                present.push(e);
            }
        }
        let mut directed: Vec<(NodeId, NodeId)> = Vec::with_capacity(2 * present.len());
        for &e in &present {
            directed.push((e.a, e.b));
            directed.push((e.b, e.a));
        }
        directed.sort_unstable();
        assert!(
            directed.windows(2).all(|w| w[0] != w[1]),
            "duplicate edges in batch"
        );
        let mut i = 0;
        let mut del: Vec<NodeId> = Vec::new();
        while i < directed.len() {
            let u = directed[i].0;
            del.clear();
            while i < directed.len() && directed[i].0 == u {
                del.push(directed[i].1);
                i += 1;
            }
            self.remove_block_elements(u.index(), &del);
        }
        self.edge_count -= present.len();
        for &e in &present {
            on_remove(e);
        }
        present.len()
    }

    /// Severs every edge incident to `u` in one pass (one in-block removal
    /// per neighbour plus zeroing `u`'s own length) and calls `on_remove`
    /// for each severed edge in ascending neighbour order. Returns the
    /// number of severed edges. Used by the DST crash-stop fault.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] when `u` is outside the vertex set;
    /// [`GraphError::BrokenInvariant`] when a neighbour's block is missing
    /// the back-edge (validated up front, so an error leaves the graph
    /// unmodified).
    pub fn remove_incident_edges<F: FnMut(Edge)>(
        &mut self,
        u: NodeId,
        mut on_remove: F,
    ) -> Result<usize, GraphError> {
        if u.index() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        let neighbors: Vec<NodeId> = self.block(u.index()).to_vec();
        let mut back_positions: Vec<usize> = Vec::with_capacity(neighbors.len());
        for &v in &neighbors {
            match self.block(v.index()).binary_search(&u) {
                Ok(pos) => back_positions.push(pos),
                Err(_) => {
                    return Err(GraphError::BrokenInvariant {
                        reason: format!("edge ({u}, {v}) present forward but not backward"),
                    })
                }
            }
        }
        self.len[u.index()] = 0;
        for (&v, &pos) in neighbors.iter().zip(&back_positions) {
            self.remove_at(v.index(), pos);
        }
        self.edge_count -= neighbors.len();
        for &v in &neighbors {
            on_remove(Edge::new(u, v));
        }
        Ok(neighbors.len())
    }

    /// Returns true if the edge `{u, v}` is present.
    ///
    /// Out-of-range queries simply return `false`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.n {
            return false;
        }
        self.block(u.index()).binary_search(&v).is_ok()
    }

    /// Neighbours of `u` (the paper's `N_1(u)`), in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.block(u.index()).iter().copied()
    }

    /// Neighbours of `u` as a sorted slice — the zero-cost form of
    /// [`Graph::neighbors`] for hot scans. With the arena representation
    /// this is one contiguous sub-slice of the shared neighbour storage.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors_slice(&self, u: NodeId) -> &[NodeId] {
        self.block(u.index())
    }

    /// The set of nodes at distance exactly two from `u` (the paper's
    /// `N_2(u)`, the *potential neighbours*): nodes `w` such that some `v`
    /// is adjacent to both `u` and `w`, and `w` is not adjacent to `u` and
    /// `w != u`. Returned sorted ascending, the same order the old
    /// `BTreeSet` form iterated in.
    ///
    /// Computed as a flat union of the (sorted) neighbour lists of
    /// `N_1(u)`: iterated two-pointer merges while the degree is small
    /// (the common case — bounded `O(deg(u) · D)` with a tiny constant),
    /// switching to gather + sort + dedup on hub nodes (bounded
    /// `O(D log D)` for `D = Σ deg(v)`, immune to the quadratic re-merge
    /// blowup of long pairwise-union chains), then one subtraction pass.
    /// No per-element tree inserts anywhere.
    pub fn potential_neighbors(&self, u: NodeId) -> Vec<NodeId> {
        // Above this degree, long pairwise-union chains re-copy the accumulated
        // union too often; sorting the gathered candidates is bounded.
        const MERGE_MAX_DEGREE: usize = 64;
        let n1 = self.block(u.index());
        let mut out: Vec<NodeId> = Vec::new();
        if n1.len() <= MERGE_MAX_DEGREE {
            let mut scratch: Vec<NodeId> = Vec::new();
            for &v in n1 {
                let list = self.block(v.index());
                if out.is_empty() {
                    out.extend_from_slice(list);
                    continue;
                }
                // Two-pointer union of `out` and `list` into `scratch`.
                scratch.clear();
                scratch.reserve(out.len() + list.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < out.len() && j < list.len() {
                    match out[i].cmp(&list[j]) {
                        std::cmp::Ordering::Less => {
                            scratch.push(out[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            scratch.push(list[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            scratch.push(out[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                scratch.extend_from_slice(&out[i..]);
                scratch.extend_from_slice(&list[j..]);
                std::mem::swap(&mut out, &mut scratch);
            }
        } else {
            let total: usize = n1.iter().map(|v| self.len[v.index()]).sum();
            out.reserve(total);
            for &v in n1 {
                out.extend_from_slice(self.block(v.index()));
            }
            out.sort_unstable();
            out.dedup();
        }
        // Subtract `{u} ∪ N_1(u)` in one forward pass (both sides sorted).
        let mut j = 0usize;
        out.retain(|&w| {
            while j < n1.len() && n1[j] < w {
                j += 1;
            }
            w != u && !(j < n1.len() && n1[j] == w)
        });

        // Differential check against the old BTreeSet-based semantics.
        #[cfg(debug_assertions)]
        {
            let mut reference = std::collections::BTreeSet::new();
            for v in self.neighbors(u) {
                for w in self.neighbors(v) {
                    if w != u && !self.has_edge(u, w) {
                        reference.insert(w);
                    }
                }
            }
            debug_assert!(
                out.iter().copied().eq(reference.iter().copied()),
                "merge-based potential_neighbors diverged from reference for {u}: \
                 {out:?} vs {reference:?}"
            );
        }
        out
    }

    /// Returns true if `u` and `w` are at distance exactly two (share a
    /// common neighbour and are not adjacent).
    pub fn at_distance_two(&self, u: NodeId, w: NodeId) -> bool {
        if u == w || self.has_edge(u, w) {
            return false;
        }
        self.common_neighbor(u, w).is_some()
    }

    /// A common neighbour of `u` and `w`, if any (a witness for the
    /// distance-2 activation rule). Both lists are sorted, so this is a
    /// two-pointer intersection probe; the witness returned is the
    /// smallest common neighbour, exactly as the old linear scan found.
    pub fn common_neighbor(&self, u: NodeId, w: NodeId) -> Option<NodeId> {
        if u.index() >= self.n || w.index() >= self.n {
            return None;
        }
        let a = self.block(u.index());
        let b = self.block(w.index());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return Some(a[i]),
            }
        }
        None
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        self.len[u.index()]
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.len.iter().copied().max().unwrap_or(0)
    }

    /// Iterator over all edges in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.n).flat_map(move |u| {
            self.block(u)
                .iter()
                .filter(move |v| v.index() > u)
                .map(move |&v| Edge::new(NodeId(u), v))
        })
    }

    /// Collects the edge set into a vector (canonical order).
    pub fn edge_vec(&self) -> Vec<Edge> {
        self.edges().collect()
    }

    /// Returns the union of this graph with `other` (same vertex set).
    ///
    /// # Panics
    ///
    /// Panics if the two graphs have different node counts.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(
            self.n, other.n,
            "graph union requires identical vertex sets"
        );
        let mut g = self.clone();
        for e in other.edges() {
            let _ = g.add_edge(e.a, e.b);
        }
        g
    }

    /// Returns the graph containing exactly the edges of `self` that are
    /// not in `other` (same vertex set). This is the paper's
    /// `D(i) \ D(1)` used to define the *maximum activated degree*.
    ///
    /// # Panics
    ///
    /// Panics if the two graphs have different node counts.
    pub fn difference(&self, other: &Graph) -> Graph {
        assert_eq!(
            self.n, other.n,
            "graph difference requires identical vertex sets"
        );
        let mut g = Graph::new(self.n);
        for e in self.edges() {
            if !other.has_edge(e.a, e.b) {
                let _ = g.add_edge(e.a, e.b);
            }
        }
        g
    }

    /// Checks that the internal structure is consistent: every block is
    /// in-bounds with `len <= cap`, blocks do not overlap, every arena
    /// slot is owned by exactly one block or counted dead, neighbour
    /// slices are sorted, duplicate-free and symmetric, and the edge count
    /// matches. Used by property tests.
    pub fn check_invariants(&self) -> bool {
        if self.start.len() != self.n || self.len.len() != self.n || self.cap.len() != self.n {
            return false;
        }
        let mut cap_total = 0usize;
        let mut owned = vec![false; self.arena.len()];
        let mut count = 0usize;
        for u in 0..self.n {
            let (s, l, c) = (self.start[u], self.len[u], self.cap[u]);
            if l > c {
                return false;
            }
            let Some(end) = s.checked_add(c) else {
                return false;
            };
            if end > self.arena.len() {
                return false;
            }
            cap_total += c;
            for slot in &mut owned[s..end] {
                if *slot {
                    return false; // overlapping blocks
                }
                *slot = true;
            }
            let adj = self.block(u);
            if adj.windows(2).any(|w| w[0] >= w[1]) {
                return false; // unsorted or duplicated
            }
            for &v in adj {
                if v.index() >= self.n || v.index() == u {
                    return false;
                }
                if self.block(v.index()).binary_search(&NodeId(u)).is_err() {
                    return false;
                }
                if v.index() > u {
                    count += 1;
                }
            }
        }
        cap_total + self.dead == self.arena.len() && count == self.edge_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn edge_is_canonical() {
        let e1 = Edge::new(nid(3), nid(1));
        let e2 = Edge::new(nid(1), nid(3));
        assert_eq!(e1, e2);
        assert_eq!(e1.a, nid(1));
        assert_eq!(e1.b, nid(3));
        assert_eq!(e1.other(nid(1)), Some(nid(3)));
        assert_eq!(e1.other(nid(3)), Some(nid(1)));
        assert_eq!(e1.other(nid(5)), None);
        assert!(e1.touches(nid(1)));
        assert!(!e1.touches(nid(2)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(nid(2), nid(2));
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(nid(0), nid(1)).unwrap());
        assert!(!g.add_edge(nid(1), nid(0)).unwrap(), "duplicate collapses");
        assert!(g.add_edge(nid(1), nid(2)).unwrap());
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(nid(0), nid(1)));
        assert!(g.has_edge(nid(1), nid(0)));
        assert!(!g.has_edge(nid(0), nid(2)));
        assert!(g.remove_edge(nid(0), nid(1)).unwrap());
        assert!(!g.remove_edge(nid(0), nid(1)).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert!(g.check_invariants());
    }

    #[test]
    fn rejects_out_of_range_and_self_loops() {
        let mut g = Graph::new(3);
        assert!(matches!(
            g.add_edge(nid(0), nid(3)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.add_edge(nid(1), nid(1)),
            Err(GraphError::SelfLoop { .. })
        ));
    }

    #[test]
    fn potential_neighbors_are_distance_two() {
        // Path 0 - 1 - 2 - 3
        let g = Graph::from_edges(
            4,
            vec![(nid(0), nid(1)), (nid(1), nid(2)), (nid(2), nid(3))],
        )
        .unwrap();
        let p0 = g.potential_neighbors(nid(0));
        assert_eq!(p0, vec![nid(2)]);
        assert!(g.at_distance_two(nid(0), nid(2)));
        assert!(!g.at_distance_two(nid(0), nid(3)));
        assert!(!g.at_distance_two(nid(0), nid(1)));
        assert_eq!(g.common_neighbor(nid(0), nid(2)), Some(nid(1)));
        assert_eq!(g.common_neighbor(nid(0), nid(3)), None);
    }

    #[test]
    fn potential_neighbors_merge_matches_scan_on_dense_graphs() {
        // A lollipop-ish graph exercises overlapping neighbour lists: the
        // union has many duplicates and the subtraction removes a block.
        let mut g = Graph::new(8);
        for u in 0..4usize {
            for v in (u + 1)..4 {
                g.add_edge(nid(u), nid(v)).unwrap();
            }
        }
        for i in 3..7usize {
            g.add_edge(nid(i), nid(i + 1)).unwrap();
        }
        for u in g.nodes().collect::<Vec<_>>() {
            let got = g.potential_neighbors(u);
            let mut expect: Vec<NodeId> = g.nodes().filter(|&w| g.at_distance_two(u, w)).collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "node {u}");
            assert!(got.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        }
    }

    #[test]
    fn batch_add_and_remove_match_singles() {
        let stream = [
            (0usize, 1usize),
            (1, 2),
            (0, 2),
            (3, 5),
            (2, 5),
            (0, 1), // duplicate of an earlier edge: skipped, not fresh
        ];
        let mut singles = Graph::new(6);
        for &(u, v) in &stream {
            let _ = singles.add_edge(nid(u), nid(v)).unwrap();
        }
        let mut batched = Graph::new(6);
        // Set semantics: feed the deduplicated edge list.
        let edges: Vec<Edge> = vec![
            Edge::new(nid(0), nid(1)),
            Edge::new(nid(1), nid(2)),
            Edge::new(nid(0), nid(2)),
            Edge::new(nid(3), nid(5)),
            Edge::new(nid(2), nid(5)),
        ];
        let mut inserted = Vec::new();
        let fresh = batched.add_edges_batch(&edges, |e| inserted.push(e));
        assert_eq!(fresh, 5);
        assert_eq!(inserted, edges);
        assert_eq!(batched, singles);
        assert!(batched.check_invariants());

        // Batch-inserting again finds nothing fresh.
        assert_eq!(batched.add_edges_batch(&edges, |_| panic!("no fresh")), 0);

        // Remove a sub-batch plus one absent edge.
        let removals = vec![
            Edge::new(nid(0), nid(2)),
            Edge::new(nid(3), nid(4)), // absent: skipped
            Edge::new(nid(3), nid(5)),
        ];
        let mut removed = Vec::new();
        let gone = batched.remove_edges_batch(&removals, |e| removed.push(e));
        assert_eq!(gone, 2);
        assert_eq!(
            removed,
            vec![Edge::new(nid(0), nid(2)), Edge::new(nid(3), nid(5))]
        );
        singles.remove_edge(nid(0), nid(2)).unwrap();
        singles.remove_edge(nid(3), nid(5)).unwrap();
        assert_eq!(batched, singles);
        assert!(batched.check_invariants());
    }

    #[test]
    fn remove_incident_edges_isolates_a_node() {
        let mut g = Graph::from_edges(
            5,
            vec![
                (nid(0), nid(1)),
                (nid(0), nid(2)),
                (nid(0), nid(3)),
                (nid(2), nid(3)),
            ],
        )
        .unwrap();
        let mut severed = Vec::new();
        let k = g.remove_incident_edges(nid(0), |e| severed.push(e));
        assert_eq!(k, Ok(3));
        assert_eq!(
            severed,
            vec![
                Edge::new(nid(0), nid(1)),
                Edge::new(nid(0), nid(2)),
                Edge::new(nid(0), nid(3)),
            ]
        );
        assert_eq!(g.degree(nid(0)), 0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(nid(2), nid(3)));
        assert!(g.check_invariants());
        // Severing an isolated node is a no-op.
        assert_eq!(
            g.remove_incident_edges(nid(0), |_| panic!("no edges")),
            Ok(0)
        );
    }

    #[test]
    fn neighbors_slice_matches_iterator() {
        let g = Graph::from_edges(4, vec![(nid(1), nid(0)), (nid(1), nid(3))]).unwrap();
        assert_eq!(g.neighbors_slice(nid(1)), &[nid(0), nid(3)]);
        let collected: Vec<NodeId> = g.neighbors(nid(1)).collect();
        assert_eq!(collected, g.neighbors_slice(nid(1)));
    }

    #[test]
    fn degrees_and_edges() {
        let g = Graph::from_edges(
            5,
            vec![(nid(0), nid(1)), (nid(0), nid(2)), (nid(0), nid(3))],
        )
        .unwrap();
        assert_eq!(g.degree(nid(0)), 3);
        assert_eq!(g.degree(nid(4)), 0);
        assert_eq!(g.max_degree(), 3);
        let edges = g.edge_vec();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&Edge::new(nid(0), nid(3))));
    }

    #[test]
    fn union_and_difference() {
        let a = Graph::from_edges(4, vec![(nid(0), nid(1)), (nid(1), nid(2))]).unwrap();
        let b = Graph::from_edges(4, vec![(nid(1), nid(2)), (nid(2), nid(3))]).unwrap();
        let u = a.union(&b);
        assert_eq!(u.edge_count(), 3);
        let d = u.difference(&a);
        assert_eq!(d.edge_count(), 1);
        assert!(d.has_edge(nid(2), nid(3)));
    }

    #[test]
    fn nodes_iterator_covers_vertex_set() {
        let g = Graph::new(3);
        let nodes: Vec<_> = g.nodes().collect();
        assert_eq!(nodes, vec![nid(0), nid(1), nid(2)]);
        assert!(g.is_empty());
    }

    #[test]
    fn equality_is_layout_independent() {
        // The same edge set reached through different operation orders
        // produces different arena layouts (relocations, slack, dead
        // space) but equal graphs.
        let mut a = Graph::new(6);
        for v in 1..6 {
            a.add_edge(nid(0), nid(v)).unwrap(); // hub grows: relocations
        }
        let mut b = Graph::new(6);
        for v in (1..6).rev() {
            b.add_edge(nid(0), nid(v)).unwrap();
        }
        b.add_edge(nid(1), nid(2)).unwrap();
        b.remove_edge(nid(1), nid(2)).unwrap();
        assert_eq!(a, b);
        b.compact();
        assert_eq!(a, b, "compaction preserves equality");
        assert!(a.check_invariants() && b.check_invariants());
    }

    #[test]
    fn overflow_relocation_and_compaction_keep_invariants() {
        // Grow one hub past several capacity doublings, forcing
        // relocations and eventually an automatic compaction.
        let n = 600;
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge(nid(0), nid(v)).unwrap();
            assert_eq!(g.degree(nid(0)), v);
        }
        assert!(g.check_invariants());
        assert_eq!(g.neighbors_slice(nid(0)).len(), n - 1);
        assert!(
            g.neighbors_slice(nid(0)).windows(2).all(|w| w[0] < w[1]),
            "hub block stays sorted across relocations"
        );
        // Explicit compaction packs tight: no dead slots, arena == live.
        g.compact();
        assert_eq!(g.dead_slots(), 0);
        assert_eq!(g.arena_slots(), 2 * g.edge_count());
        assert!(g.check_invariants());
        // A compacted block has no slack: the next insert relocates and
        // the structure stays consistent.
        let w = g.add_node();
        g.add_edge(nid(1), w).unwrap();
        g.add_edge(nid(0), w).unwrap();
        assert!(g.check_invariants());
        assert!(g.memory_footprint_bytes() > 0);
    }

    #[test]
    fn churn_node_starts_with_zero_capacity_block() {
        let mut g = Graph::new(2);
        g.add_edge(nid(0), nid(1)).unwrap();
        let v = g.add_node();
        assert_eq!(g.degree(v), 0);
        assert_eq!(g.neighbors_slice(v), &[] as &[NodeId]);
        g.add_edge(v, nid(0)).unwrap();
        assert_eq!(g.neighbors_slice(v), &[nid(0)]);
        assert!(g.check_invariants());
    }
}
