//! # adn-graph — static graph substrate
//!
//! Static (per-round snapshot) graph machinery used by the actively dynamic
//! network reproduction of *"Distributed Computation and Reconfiguration in
//! Actively Dynamic Networks"* (Michail, Skretas, Spirakis — PODC 2020).
//!
//! This crate provides:
//!
//! * [`Graph`] — a simple undirected graph over a fixed vertex set
//!   `0..n`, with O(1) adjacency queries (the snapshot `D(i) = (V, E(i))`
//!   of the paper's temporal graph).
//! * [`RootedTree`] — an explicitly rooted, oriented tree (parents /
//!   children / depths), the object manipulated by the `TreeToStar` and
//!   `LineToCompleteBinaryTree` subroutines.
//! * [`generators`] — the initial-network and target-network families used
//!   throughout the paper: lines, rings, stars, complete binary / k-ary
//!   trees, wreaths, thin wreaths, grids, random trees, connected
//!   Erdős–Rényi graphs, and more.
//! * [`traversal`] — BFS, distances, diameter, eccentricity, connectivity,
//!   spanning trees and Euler tours.
//! * [`properties`] — structural predicates (`is_star`, `is_line`,
//!   `is_ring`, depth/degree bounds, …) used to verify that the
//!   transformation algorithms reach their target family.
//! * [`uid`] — UID namespaces and assignments (sequential, random
//!   permutation, and the *increasing-order ring* assignment used by the
//!   paper's Ω(n log n) lower bound).
//!
//! # Example
//!
//! ```
//! use adn_graph::{generators, traversal};
//!
//! let line = generators::line(16);
//! assert_eq!(traversal::diameter(&line), Some(15));
//! let star = generators::star(16);
//! assert_eq!(traversal::diameter(&star), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynconn;
pub mod edgeset;
pub mod error;
pub mod families;
pub mod generators;
pub mod graph;
pub mod properties;
pub mod rng;
pub mod rooted;
pub mod shard;
pub mod traversal;
pub mod uid;

mod ids;

pub use dynconn::DynConn;
pub use edgeset::SortedEdgeSet;
pub use error::GraphError;
pub use families::GraphFamily;
pub use graph::{Edge, Graph};
pub use ids::{NodeId, Uid};
pub use rooted::RootedTree;
pub use uid::{UidAssignment, UidMap};
