//! Structural predicates used to verify that transformation algorithms
//! reach the target families claimed by the paper.

use crate::traversal::{diameter, is_connected};
use crate::{Graph, NodeId, RootedTree};

/// Returns true if the graph is a tree: connected with exactly `n - 1`
/// edges.
pub fn is_tree(graph: &Graph) -> bool {
    let n = graph.node_count();
    n > 0 && graph.edge_count() == n - 1 && is_connected(graph)
}

/// Returns the centre of the graph if it is a spanning star
/// (one node adjacent to every other node, and no other edges).
///
/// For `n <= 2` any connected graph is trivially a star; node 0 (or the
/// higher-degree node) is returned.
pub fn star_center(graph: &Graph) -> Option<NodeId> {
    let n = graph.node_count();
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(NodeId(0));
    }
    if graph.edge_count() != n - 1 {
        return None;
    }
    let center = graph.nodes().max_by_key(|&u| graph.degree(u))?;
    if graph.degree(center) != n - 1 {
        return None;
    }
    // All other nodes must have degree exactly 1.
    for u in graph.nodes() {
        if u != center && graph.degree(u) != 1 {
            return None;
        }
    }
    Some(center)
}

/// Returns true if the graph is a spanning star.
pub fn is_star(graph: &Graph) -> bool {
    star_center(graph).is_some()
}

/// Returns true if the graph is a simple path (spanning line).
pub fn is_line(graph: &Graph) -> bool {
    let n = graph.node_count();
    if n == 0 {
        return false;
    }
    if n == 1 {
        return graph.edge_count() == 0;
    }
    if graph.edge_count() != n - 1 || !is_connected(graph) {
        return false;
    }
    let deg1 = graph.nodes().filter(|&u| graph.degree(u) == 1).count();
    let deg2 = graph.nodes().filter(|&u| graph.degree(u) == 2).count();
    deg1 == 2 && deg2 == n - 2
}

/// Returns true if the graph is a spanning ring (cycle).
pub fn is_ring(graph: &Graph) -> bool {
    let n = graph.node_count();
    if n < 3 {
        return false;
    }
    graph.edge_count() == n && is_connected(graph) && graph.nodes().all(|u| graph.degree(u) == 2)
}

/// Returns true if `graph` is a rooted tree of depth at most `d` when
/// rooted at `root` — the paper's *Depth-d Tree* target predicate.
pub fn is_depth_d_tree(graph: &Graph, root: NodeId, d: usize) -> bool {
    if !is_tree(graph) {
        return false;
    }
    match RootedTree::from_tree_graph(graph, root) {
        Ok(t) => t.depth() <= d,
        Err(_) => false,
    }
}

/// Returns true if the graph, rooted at `root`, is a binary tree
/// (every node has at most 2 children) of depth at most `max_depth`.
pub fn is_bounded_binary_tree(graph: &Graph, root: NodeId, max_depth: usize) -> bool {
    is_bounded_arity_tree(graph, root, 2, max_depth)
}

/// Returns true if the graph, rooted at `root`, is a tree where every node
/// has at most `arity` children and depth is at most `max_depth`.
pub fn is_bounded_arity_tree(graph: &Graph, root: NodeId, arity: usize, max_depth: usize) -> bool {
    if !is_tree(graph) {
        return false;
    }
    match RootedTree::from_tree_graph(graph, root) {
        Ok(t) => t.depth() <= max_depth && graph.nodes().all(|u| t.child_count(u) <= arity),
        Err(_) => false,
    }
}

/// Returns true if the graph is a wreath in the paper's sense
/// (Definition 4.1): its edge set is the union of a spanning ring and a
/// spanning tree whose depth is at most `max_tree_depth` and whose arity is
/// at most `arity` when rooted at `root`.
///
/// We verify this constructively: the provided `ring_edges` and
/// `tree_edges` decompositions must each be subsets of the graph and
/// satisfy the respective structural predicates, and their union must be
/// the whole edge set.
pub fn is_wreath_decomposition(
    graph: &Graph,
    ring_edges: &Graph,
    tree_edges: &Graph,
    root: NodeId,
    arity: usize,
    max_tree_depth: usize,
) -> bool {
    if graph.node_count() != ring_edges.node_count()
        || graph.node_count() != tree_edges.node_count()
    {
        return false;
    }
    // Union must equal the graph.
    if ring_edges.union(tree_edges) != *graph {
        return false;
    }
    is_ring(ring_edges) && is_bounded_arity_tree(tree_edges, root, arity, max_tree_depth)
}

/// Maximum degree bound check (convenience wrapper used by tests and the
/// analysis harness).
pub fn has_max_degree_at_most(graph: &Graph, bound: usize) -> bool {
    graph.max_degree() <= bound
}

/// Returns true if the graph is connected and its diameter is at most
/// `bound`.
pub fn has_diameter_at_most(graph: &Graph, bound: usize) -> bool {
    matches!(diameter(graph), Some(d) if d <= bound)
}

/// Integer base-2 logarithm, rounded up, of `n` (with `ceil_log2(0) = 0`
/// and `ceil_log2(1) = 0`). Used pervasively to express the paper's
/// `⌈log n⌉` bounds in tests and analysis.
pub fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Integer base-2 logarithm, rounded down, of `n` (`floor_log2(0) = 0`).
pub fn floor_log2(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        (usize::BITS - 1 - n.leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn recognises_stars() {
        assert!(is_star(&generators::star(10)));
        assert_eq!(star_center(&generators::star(10)), Some(NodeId(0)));
        assert!(!is_star(&generators::line(10)));
        assert!(!is_star(&generators::ring(10)));
        assert!(is_star(&generators::line(2)));
        assert!(is_star(&Graph::new(1)));
        assert!(star_center(&Graph::new(0)).is_none());
        // A star plus an extra edge is no longer a star.
        let mut g = generators::star(5);
        g.add_edge(NodeId(1), NodeId(2)).unwrap();
        assert!(!is_star(&g));
    }

    #[test]
    fn recognises_lines_and_rings() {
        assert!(is_line(&generators::line(7)));
        assert!(!is_line(&generators::ring(7)));
        assert!(!is_line(&generators::star(7)));
        assert!(is_ring(&generators::ring(7)));
        assert!(!is_ring(&generators::line(7)));
        assert!(!is_ring(&generators::ring(2)));
        assert!(is_line(&Graph::new(1)));
    }

    #[test]
    fn recognises_trees_and_depth_bounds() {
        let cbt = generators::complete_binary_tree(31);
        assert!(is_tree(&cbt));
        assert!(is_depth_d_tree(&cbt, NodeId(0), 4));
        assert!(!is_depth_d_tree(&cbt, NodeId(0), 3));
        assert!(is_bounded_binary_tree(&cbt, NodeId(0), 4));
        assert!(!is_bounded_binary_tree(&generators::star(8), NodeId(0), 4));
        assert!(is_depth_d_tree(&generators::star(8), NodeId(0), 1));
    }

    #[test]
    fn bounded_arity_checks() {
        let t = generators::complete_kary_tree(40, 4);
        assert!(is_bounded_arity_tree(&t, NodeId(0), 4, 4));
        assert!(!is_bounded_arity_tree(&t, NodeId(0), 3, 10));
    }

    #[test]
    fn wreath_decomposition_check() {
        let n = 16;
        let ring = generators::ring(n);
        let tree = generators::complete_binary_tree(n);
        let w = ring.union(&tree);
        assert!(is_wreath_decomposition(&w, &ring, &tree, NodeId(0), 2, 5));
        // Wrong decomposition: swap ring and tree roles.
        assert!(!is_wreath_decomposition(&w, &tree, &ring, NodeId(0), 2, 5));
    }

    #[test]
    fn degree_and_diameter_bounds() {
        let g = generators::ring(12);
        assert!(has_max_degree_at_most(&g, 2));
        assert!(!has_max_degree_at_most(&g, 1));
        assert!(has_diameter_at_most(&g, 6));
        assert!(!has_diameter_at_most(&g, 5));
    }

    #[test]
    fn log_helpers() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(8), 3);
        assert_eq!(floor_log2(9), 3);
    }
}
