//! Strongly-typed identifiers: node indices and UIDs.

use std::fmt;

/// Index of a node in a network with vertex set `0..n`.
///
/// The paper's vertex set `V` is static; we index it densely so that all
/// per-node state can live in flat vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for usize {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

/// A unique identifier drawn from the namespace `U` of the paper.
///
/// The paper assumes the maximum UID is representable with `O(log n)` bits
/// and that algorithms are *comparison based*: UIDs are only ever compared
/// with `<`, `>` and `=`. A `u64` comfortably covers every experiment size
/// we run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Uid(pub u64);

impl Uid {
    /// Returns the raw value of the UID.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid({})", self.0)
    }
}

impl From<u64> for Uid {
    fn from(value: u64) -> Self {
        Uid(value)
    }
}

impl From<Uid> for u64 {
    fn from(value: Uid) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from(7usize);
        assert_eq!(id.index(), 7);
        assert_eq!(usize::from(id), 7);
        assert_eq!(id.to_string(), "v7");
    }

    #[test]
    fn uid_ordering_is_numeric() {
        assert!(Uid(3) < Uid(10));
        assert!(Uid(10) > Uid(3));
        assert_eq!(Uid(5), Uid(5));
        assert_eq!(Uid::from(9u64).value(), 9);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{:?}", NodeId(0)).is_empty());
        assert!(!format!("{}", Uid(0)).is_empty());
    }
}
