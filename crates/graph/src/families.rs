//! Named workload families used across experiments and benches.
//!
//! A [`GraphFamily`] names one of the initial-network families the paper's
//! theorems quantify over, bundled with the parameters needed to sample a
//! concrete instance. The analysis harness sweeps `(family, n, seed)`
//! triples and tags every run record with the family name, so the printed
//! tables can be grouped exactly like the paper groups its claims
//! ("any connected graph", "any connected graph with constant degree",
//! "spanning line", "increasing-order ring", …).

use crate::{generators, Graph};
use std::fmt;

/// A named family of initial networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFamily {
    /// Spanning line (path). Diameter `n - 1`; the hard case for the time
    /// lower bound (Lemma 6.1).
    Line,
    /// Ring (cycle). Used with the increasing-order UID assignment for the
    /// Ω(n log n) activation lower bound (Theorem 6.4).
    Ring,
    /// Spanning star. Already a Depth-1 tree; sanity-check workload.
    Star,
    /// Complete binary tree.
    CompleteBinaryTree,
    /// 2-D grid, as square as possible.
    Grid,
    /// Uniform random recursive tree (unbounded degree, Θ(log n) expected
    /// depth).
    RandomTree,
    /// Random tree with maximum degree 3 — the bounded-degree workload for
    /// `GraphToWreath`.
    BoundedDegreeTree,
    /// Ring plus random chords with maximum degree 4 — bounded-degree,
    /// non-tree workload.
    BoundedDegreeConnected,
    /// Connected Erdős–Rényi graph with edge probability ~ `4/n`.
    SparseRandom,
    /// Connected Erdős–Rényi graph with edge probability 0.5 (dense).
    DenseRandom,
    /// Two cliques joined by a path (high diameter with dense regions).
    Barbell,
    /// Caterpillar tree (spine plus legs).
    Caterpillar,
    /// Hypercube of dimension ⌈log2 n⌉ (node count rounded up to a power
    /// of two).
    Hypercube,
}

impl GraphFamily {
    /// All families, in a canonical order (used by sweeps).
    pub const ALL: [GraphFamily; 13] = [
        GraphFamily::Line,
        GraphFamily::Ring,
        GraphFamily::Star,
        GraphFamily::CompleteBinaryTree,
        GraphFamily::Grid,
        GraphFamily::RandomTree,
        GraphFamily::BoundedDegreeTree,
        GraphFamily::BoundedDegreeConnected,
        GraphFamily::SparseRandom,
        GraphFamily::DenseRandom,
        GraphFamily::Barbell,
        GraphFamily::Caterpillar,
        GraphFamily::Hypercube,
    ];

    /// The families with bounded maximum degree (the precondition of
    /// Theorem 4.2, `GraphToWreath`).
    pub const BOUNDED_DEGREE: [GraphFamily; 5] = [
        GraphFamily::Line,
        GraphFamily::Ring,
        GraphFamily::Grid,
        GraphFamily::BoundedDegreeTree,
        GraphFamily::BoundedDegreeConnected,
    ];

    /// A short, stable, machine-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            GraphFamily::Line => "line",
            GraphFamily::Ring => "ring",
            GraphFamily::Star => "star",
            GraphFamily::CompleteBinaryTree => "cbt",
            GraphFamily::Grid => "grid",
            GraphFamily::RandomTree => "random_tree",
            GraphFamily::BoundedDegreeTree => "bounded_degree_tree",
            GraphFamily::BoundedDegreeConnected => "bounded_degree_connected",
            GraphFamily::SparseRandom => "sparse_random",
            GraphFamily::DenseRandom => "dense_random",
            GraphFamily::Barbell => "barbell",
            GraphFamily::Caterpillar => "caterpillar",
            GraphFamily::Hypercube => "hypercube",
        }
    }

    /// Generates an instance with (approximately) `n` nodes.
    ///
    /// Some families round `n` to the nearest realisable size (grids round
    /// to `rows × cols`, hypercubes to a power of two); the caller should
    /// use [`Graph::node_count`] of the result rather than assuming `n`.
    pub fn generate(&self, n: usize, seed: u64) -> Graph {
        match self {
            GraphFamily::Line => generators::line(n),
            GraphFamily::Ring => generators::ring(n),
            GraphFamily::Star => generators::star(n),
            GraphFamily::CompleteBinaryTree => generators::complete_binary_tree(n),
            GraphFamily::Grid => {
                let rows = (n as f64).sqrt().round().max(1.0) as usize;
                let cols = n.div_ceil(rows).max(1);
                generators::grid(rows, cols)
            }
            GraphFamily::RandomTree => generators::random_tree(n, seed),
            GraphFamily::BoundedDegreeTree => generators::random_bounded_degree_tree(n, 3, seed),
            GraphFamily::BoundedDegreeConnected => {
                generators::random_bounded_degree_connected(n, 4, n / 4, seed)
            }
            GraphFamily::SparseRandom => {
                let p = (4.0 / n.max(2) as f64).min(1.0);
                generators::random_connected(n, p, seed)
            }
            GraphFamily::DenseRandom => generators::random_connected(n, 0.5, seed),
            GraphFamily::Barbell => {
                let k = (n / 3).max(1);
                generators::barbell(k, n.saturating_sub(2 * k))
            }
            GraphFamily::Caterpillar => {
                let spine = (n / 4).max(1);
                let legs = (n / spine).saturating_sub(1);
                generators::caterpillar(spine, legs)
            }
            GraphFamily::Hypercube => {
                let d = (usize::BITS - n.max(1).next_power_of_two().leading_zeros() - 1).max(1);
                generators::hypercube(d)
            }
        }
    }
}

impl fmt::Display for GraphFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn every_family_generates_a_connected_graph() {
        for family in GraphFamily::ALL {
            for &n in &[8usize, 33, 64] {
                let g = family.generate(n, 42);
                assert!(
                    is_connected(&g),
                    "family {family} with n={n} must be connected"
                );
                assert!(g.node_count() >= n / 2, "family {family} shrank too much");
            }
        }
    }

    #[test]
    fn bounded_degree_families_have_small_degree() {
        for family in GraphFamily::BOUNDED_DEGREE {
            let g = family.generate(100, 7);
            assert!(
                g.max_degree() <= 4,
                "family {family} should have degree <= 4, got {}",
                g.max_degree()
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = GraphFamily::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), GraphFamily::ALL.len());
    }

    #[test]
    fn generation_is_deterministic() {
        for family in GraphFamily::ALL {
            assert_eq!(family.generate(40, 1), family.generate(40, 1));
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(GraphFamily::Line.to_string(), "line");
        assert_eq!(GraphFamily::SparseRandom.to_string(), "sparse_random");
    }
}
