//! Error types for graph construction and manipulation.

use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced while building or mutating a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node index was outside the vertex set `0..n`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// A self-loop was requested; the model only allows simple graphs.
    SelfLoop {
        /// The node on which the self-loop was requested.
        node: NodeId,
    },
    /// An operation required an edge that is not present.
    MissingEdge {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// A generator was asked for an impossible size (for example a ring on
    /// fewer than three nodes).
    InvalidSize {
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A rooted tree could not be built because the underlying graph is not
    /// a tree, is disconnected, or the parent map is inconsistent.
    NotATree {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// The adjacency arena violated an internal invariant (an asymmetric
    /// edge, corrupted block bookkeeping). Always a bug — surfaced as a
    /// typed error instead of an abort so a seeded sweep can report the
    /// case that reached it.
    BrokenInvariant {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} is out of range for a graph on {n} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop requested on node {node}")
            }
            GraphError::MissingEdge { u, v } => {
                write!(f, "edge ({u}, {v}) is not present")
            }
            GraphError::InvalidSize { reason } => {
                write!(f, "invalid size: {reason}")
            }
            GraphError::BrokenInvariant { reason } => {
                write!(f, "graph invariant broken: {reason}")
            }
            GraphError::NotATree { reason } => {
                write!(f, "not a valid rooted tree: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: NodeId(9),
            n: 4,
        };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains('4'));

        let e = GraphError::SelfLoop { node: NodeId(2) };
        assert!(e.to_string().contains("self-loop"));

        let e = GraphError::MissingEdge {
            u: NodeId(1),
            v: NodeId(2),
        };
        assert!(e.to_string().contains("not present"));

        let e = GraphError::InvalidSize {
            reason: "ring needs at least 3 nodes".into(),
        };
        assert!(e.to_string().contains("ring"));

        let e = GraphError::NotATree {
            reason: "cycle detected".into(),
        };
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
