//! Small, dependency-free deterministic RNG.
//!
//! The reproduction only needs seeded, reproducible randomness (instance
//! generation and UID permutations), not cryptographic quality. This module
//! provides a [`DetRng`] based on the SplitMix64 / xorshift family so the
//! workspace builds without any external crates. All generators in this
//! crate are deterministic given a seed, so every experiment in the
//! repository is reproducible bit-for-bit.

/// A deterministic pseudo-random number generator (SplitMix64 core).
///
/// Streams are fully determined by the seed; the same seed always yields
/// the same sequence on every platform.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng {
            // Avoid the all-zeros fixed point without changing seeded
            // determinism: SplitMix64 handles zero fine, this is just a
            // conventional stream separation constant.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[low, high)` (Lemire-style rejection-free
    /// widening multiply; the tiny modulo bias is irrelevant for instance
    /// generation).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "empty range [{low}, {high})");
        let span = (high - low) as u64;
        let x = self.next_u64();
        low + ((x as u128 * span as u128) >> 64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against a uniform in [0, 1) with 53 bits of precision.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0, i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3, 17);
            assert!((3..17).contains(&x));
        }
        // Degenerate single-value range.
        assert_eq!(rng.gen_range(5, 6), 5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = DetRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Rough sanity on the mean.
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((700..1300).contains(&hits), "got {hits}/4000 at p=0.25");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = DetRng::seed_from_u64(0);
        let _ = rng.gen_range(4, 4);
    }
}
